"""F4-3: Figure 4-3 -- constant performance with a 32 KB L1; the slope
structure sits ~1.74x to the right of the 4 KB plane (paper's measurement)."""

from conftest import run_experiment
from repro.experiments.fig4 import fig4_3


def test_fig4_3(benchmark, traces, emit):
    report = run_experiment(benchmark, fig4_3(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
