"""A-GEN: stack-distance vs Zipf/IRM trace generators."""

from conftest import run_experiment
from repro.experiments.extensions import GeneratorAblation


def test_ablation_generators(benchmark, traces, emit):
    report = run_experiment(benchmark, GeneratorAblation(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
