"""F3-1: Figure 3-1 -- L2 local/global/solo miss ratios, 4 KB L1."""

from conftest import run_experiment
from repro.experiments.fig3 import fig3_1


def test_fig3_1(benchmark, traces, emit):
    report = run_experiment(benchmark, fig3_1(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
