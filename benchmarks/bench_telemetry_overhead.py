"""BENCH-TELEMETRY: what observability costs on a real sweep.

Times the same functional sweep (eight L2 sizes over the standard trace
suite, cold memoisation cache each pass) three ways:

* **stubbed**: every telemetry entry point replaced by a bare lambda --
  the closest measurable stand-in for "the instrumentation was never
  written", since the call sites cannot be compiled away;
* **disabled**: the real runtime with ``REPRO_TELEMETRY`` off -- every
  ``span()`` call takes the one-branch no-op fast path;
* **enabled**: ``REPRO_TELEMETRY=1`` with a JSONL sink, so every span
  is timed, buffered and written, and worker telemetry rides the
  result pipe back to the supervisor.

All three passes must produce identical counts (recording never touches
results), the disabled pass must cost at most 1% over stubbed and the
enabled pass at most 2% (acceptance bars at the full 250k-record
scale): spans are nanosecond reads around multi-millisecond kernels.
The 1% disabled bar is the measured run-to-run noise floor on a ~1 s
wall, not the cost of the no-op branch -- full-scale runs routinely
measure the *enabled* leg inside the disabled leg's jitter.

Measurement is paired: the three legs run back-to-back inside each
round (rotating order), the overhead of a round is the ratio against
*that round's* stubbed leg, and the reported overhead is the median
ratio across :data:`ROUNDS`.  Independent best-of-N per leg is not
robust here -- a load spike during one leg's quiet round books ambient
drift as overhead; a paired ratio sees both legs under the same load.
A ``BENCH`` summary line goes to stdout for CI job summaries.
"""

import statistics
import sys

import benchjson

from repro import telemetry
from repro.core import clock
from repro.core.sweep import sweep_functional
from repro.experiments.base import ExperimentReport
from repro.experiments.baseline import base_machine
from repro.sim import memo
from repro.telemetry import runtime as telemetry_runtime
from repro.units import KB

#: Eight functionally-distinct configurations (L2 size axis).
L2_SIZES = [16 * KB, 32 * KB, 64 * KB, 128 * KB,
            256 * KB, 512 * KB, 1024 * KB, 2048 * KB]

#: Overhead budgets versus the stubbed pass.
DISABLED_BUDGET = 0.01
ENABLED_BUDGET = 0.02

#: Interleaved repetitions per leg; overheads are medians of per-round
#: paired ratios, walls report each leg's best round.
ROUNDS = 7


def _counts(result):
    return tuple(
        (s.reads, s.read_misses, s.writes, s.write_misses, s.writebacks)
        for s in result.level_stats
    )


def _grid_counts(grid):
    return tuple(_counts(cell) for row in grid for cell in row)


def test_telemetry_overhead(traces, emit, tmp_path, monkeypatch):
    configs = [base_machine(l2_size=size) for size in L2_SIZES]
    records = sum(len(t) for t in traces)

    def stubbed_leg():
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        telemetry.reset()
        noop_span = telemetry_runtime._NOOP
        monkeypatch.setattr(
            telemetry_runtime, "span", lambda *a, **k: noop_span
        )
        monkeypatch.setattr(
            telemetry_runtime, "counter_add", lambda *a, **k: None
        )
        monkeypatch.setattr(
            telemetry_runtime, "gauge_set", lambda *a, **k: None
        )
        # The call sites go through the package facade.
        monkeypatch.setattr(telemetry, "span", telemetry_runtime.span)
        monkeypatch.setattr(
            telemetry, "counter_add", telemetry_runtime.counter_add
        )
        monkeypatch.setattr(
            telemetry, "gauge_set", telemetry_runtime.gauge_set
        )
        try:
            memo.clear_memo_cache()
            watch = clock.Stopwatch()
            grid = sweep_functional(traces, configs)
            return watch.elapsed_s(), grid
        finally:
            monkeypatch.undo()

    def disabled_leg():
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        telemetry.reset()
        memo.clear_memo_cache()
        watch = clock.Stopwatch()
        grid = sweep_functional(traces, configs)
        return watch.elapsed_s(), grid

    def enabled_leg(rnd):
        sink = tmp_path / f"bench-{rnd}.telemetry.jsonl"
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_PATH", str(sink))
        telemetry.reset()
        memo.clear_memo_cache()
        watch = clock.Stopwatch()
        grid = sweep_functional(traces, configs)
        elapsed = watch.elapsed_s()
        telemetry.close_sink()
        return elapsed, grid, sink

    # Rotate which leg goes first each round: on a shared machine later
    # legs systematically see a different load than earlier ones, and a
    # fixed order would book that bias as "overhead".
    stub_times, off_times, on_times = [], [], []
    for rnd in range(ROUNDS):
        legs = [
            ("stub", stubbed_leg),
            ("off", disabled_leg),
            ("on", lambda rnd=rnd: enabled_leg(rnd)),
        ]
        order = legs[rnd % 3:] + legs[:rnd % 3]
        for name, leg in order:
            if name == "stub":
                stub_s, stub_grid = leg()
                stub_times.append(stub_s)
            elif name == "off":
                off_s, off_grid = leg()
                off_times.append(off_s)
            else:
                on_s, on_grid, sink = leg()
                on_times.append(on_s)
    telemetry.reset()
    stub_best = min(stub_times)
    off_best = min(off_times)
    on_best = min(on_times)

    parity = (
        _grid_counts(stub_grid) == _grid_counts(off_grid)
        == _grid_counts(on_grid)
    )
    off_overhead = statistics.median(
        off / stub for off, stub in zip(off_times, stub_times)
    ) - 1.0
    on_overhead = statistics.median(
        on / stub for on, stub in zip(on_times, stub_times)
    ) - 1.0
    sink_lines = sum(
        1 for line in sink.read_text(encoding="utf-8").splitlines() if line
    )
    full_scale = records >= len(traces) * 200_000

    headers = ["pass", "wall (s)", "overhead"]
    rows = [
        ["stubbed (no instrumentation)", f"{stub_best:.2f}", "-"],
        ["disabled (no-op spans)", f"{off_best:.2f}",
         f"{off_overhead * 100:+.2f}% (budget "
         f"{DISABLED_BUDGET * 100:.1f}%)"],
        ["enabled (spans -> sink)", f"{on_best:.2f}",
         f"{on_overhead * 100:+.2f}% (budget "
         f"{ENABLED_BUDGET * 100:.0f}%)"],
    ]
    checks = {
        "recording never changes results": parity,
        "enabled run wrote span lines to the sink": sink_lines > 1,
    }
    if full_scale:
        checks["disabled overhead <= 1% at full scale"] = (
            off_overhead <= DISABLED_BUDGET
        )
        checks["enabled overhead <= 2% at full scale"] = (
            on_overhead <= ENABLED_BUDGET
        )

    bench_line = (
        f"BENCH telemetry-overhead: stubbed {stub_best:.2f}s disabled "
        f"{off_best:.2f}s ({off_overhead * 100:+.2f}%) enabled "
        f"{on_best:.2f}s ({on_overhead * 100:+.2f}%) "
        f"({len(configs)} configs x {len(traces)} traces x "
        f"{records // len(traces)} records/trace, {sink_lines} sink "
        f"lines, best of {ROUNDS})"
    )
    print(bench_line, file=sys.__stdout__, flush=True)
    benchjson.note(
        "telemetry-overhead", records, on_best,
        baseline_wall_s=round(stub_best, 4),
        disabled_wall_s=round(off_best, 4),
        disabled_overhead=round(off_overhead, 4),
        enabled_overhead=round(on_overhead, 4),
        sink_lines=sink_lines,
        configs=len(configs), traces=len(traces), parity=bool(parity),
    )

    report = ExperimentReport(
        experiment_id="BENCH-TELEMETRY",
        title="Telemetry span/counter overhead on a cold sweep",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[bench_line],
    )
    emit(report)
    assert report.all_checks_pass, report.render()
