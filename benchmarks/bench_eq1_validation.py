"""E-EQ1: Equation 1 versus the timing simulator."""

from conftest import run_experiment
from repro.experiments.equations import EquationOneValidation


def test_eq1_validation(benchmark, traces, emit):
    report = run_experiment(benchmark, EquationOneValidation(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
