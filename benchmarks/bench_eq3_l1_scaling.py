"""E-EQ3: break-even time scaling with L1 size (Equation 3's 1.45x)."""

from conftest import run_experiment
from repro.experiments.equations import BreakevenL1Scaling


def test_eq3_l1_scaling(benchmark, traces, emit):
    report = run_experiment(benchmark, BreakevenL1Scaling(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
