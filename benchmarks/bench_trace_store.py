"""BENCH-TRACE-STORE: the memmap trace store versus heap traces.

Three interleaved comparisons, each against what the repository did
before the store landed:

* **open latency** -- ``TraceStore.open().as_trace()`` (O(header), data
  pages untouched) versus ``Trace.load`` on the same trace saved as the
  old compressed ``.npz``;
* **worker handoff** -- pickling :class:`~repro.trace.store.TraceHandle`
  references and resolving them, versus pickling the trace arrays
  themselves once per worker (what shipping traces through ``Process``
  args costs under spawn, and what fork pays again in copy-on-write
  page touches);
* **end-to-end pooled sweep** -- disk-cached suite -> supervised pool ->
  functional counts, store path versus npz-plus-heap path, counts
  required identical.

A chunked-replay parity check rides along: ``REPRO_TRACE_CHUNK`` on a
store-backed trace must reproduce the whole-array counts exactly.  The
full-scale acceptance bars apply at >= 2M total records.
"""

import pickle
import sys

import numpy as np

import benchjson

from repro.core import clock
from repro.experiments.base import ExperimentReport
from repro.experiments.baseline import base_machine
from repro.resilience.executor import Cell, run_pooled
from repro.resilience.faults import cell_signature
from repro.resilience.policy import RetryPolicy
from repro.sim import memo
from repro.sim.fast import run_functional
from repro.trace.record import Trace
from repro.trace.store import TraceStore, export_traces, resolve_traces
from repro.units import KB

#: Workers for the handoff and sweep legs (matches a small CI runner).
WORKERS = 4

#: Interleaved timing rounds for the open-latency leg.
OPEN_ROUNDS = 3


def _compute_functional(traces, cell):
    return run_functional(traces[cell.trace_index], cell.config)


def _counts(result):
    return (
        result.cpu_reads, result.memory_reads, result.memory_writes,
        tuple(
            (s.reads, s.read_misses, s.writes, s.write_misses, s.writebacks)
            for s in result.level_stats
        ),
    )


def _make_cells(traces, config):
    key = memo.functional_projection(config)
    return [
        Cell(j, j, config, cell_signature("functional", j, key))
        for j in range(len(traces))
    ]


def _pooled_counts(loaded, config):
    outcome = run_pooled(
        "functional", _compute_functional, [_make_cells(loaded, config)],
        loaded, workers=WORKERS, policy=RetryPolicy(max_attempts=2),
    )
    if outcome is None:  # sandbox without process creation: run serially
        return [_counts(run_functional(t, config)) for t in loaded]
    assert not outcome.failures, outcome.failures
    return [_counts(outcome.results[j]) for j in range(len(loaded))]


def test_trace_store(traces, emit, tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_TRACE_CHUNK", raising=False)
    records = sum(len(t) for t in traces)
    config = base_machine(l2_size=64 * KB)
    # Materialise heap copies: the suite itself may already be store-backed.
    heap = [
        Trace(np.array(t.kinds), np.array(t.addresses), name=t.name,
              warmup=t.warmup)
        for t in traces
    ]
    for i, trace in enumerate(heap):
        trace.save(tmp_path / f"t{i}.npz")
        TraceStore.save(trace, tmp_path / f"t{i}.mlt")

    # -- leg 1: open latency (interleaved rounds) ---------------------------
    npz_open_s = store_open_s = 0.0
    for _ in range(OPEN_ROUNDS):
        for i in range(len(heap)):
            watch = clock.Stopwatch()
            Trace.load(tmp_path / f"t{i}.npz")
            npz_open_s += watch.elapsed_s()
            watch = clock.Stopwatch()
            TraceStore.open(tmp_path / f"t{i}.mlt").as_trace()
            store_open_s += watch.elapsed_s()
    open_speedup = npz_open_s / store_open_s if store_open_s else float("inf")

    # -- leg 2: per-worker handoff cost -------------------------------------
    # Baseline: every worker start (including each restart) re-ships the
    # arrays -- one pickle round per worker.  Store path: the export runs
    # once per pool; workers pickle only the handles and attach.
    watch = clock.Stopwatch()
    for _ in range(WORKERS):
        pickle.loads(pickle.dumps(heap))
    pickle_s = watch.elapsed_s()
    watch = clock.Stopwatch()
    handles, lease = export_traces(heap)
    export_s = watch.elapsed_s()
    watch = clock.Stopwatch()
    for _ in range(WORKERS):
        resolve_traces(pickle.loads(pickle.dumps(handles)))
    handle_s = watch.elapsed_s()
    lease.release()
    handoff_speedup = pickle_s / handle_s if handle_s else float("inf")

    # -- leg 3: end-to-end pooled sweep from the disk cache -----------------
    watch = clock.Stopwatch()
    heap_loaded = [Trace.load(tmp_path / f"t{i}.npz") for i in range(len(heap))]
    heap_counts = _pooled_counts(heap_loaded, config)
    heap_sweep_s = watch.elapsed_s()
    watch = clock.Stopwatch()
    store_loaded = [
        TraceStore.open(tmp_path / f"t{i}.mlt").as_trace()
        for i in range(len(heap))
    ]
    store_counts = _pooled_counts(store_loaded, config)
    store_sweep_s = watch.elapsed_s()
    sweep_speedup = heap_sweep_s / store_sweep_s if store_sweep_s else float("inf")
    sweep_parity = heap_counts == store_counts

    # -- chunked streaming replay parity ------------------------------------
    whole = _counts(run_functional(store_loaded[0], config))
    monkeypatch.setenv("REPRO_TRACE_CHUNK", str(1 << 18))
    chunked = _counts(run_functional(store_loaded[0], config))
    monkeypatch.delenv("REPRO_TRACE_CHUNK")
    chunk_parity = whole == chunked

    full_scale = records >= 2_000_000
    checks = {
        "store open faster than npz load": open_speedup > 1.0,
        "handle handoff cheaper than pickling traces": handoff_speedup > 1.0,
        "pooled counts identical across heap and store suites": sweep_parity,
        "chunked replay counts identical on a store trace": chunk_parity,
    }
    if full_scale:
        checks["end-to-end sweep faster from the store at >= 2M records"] = (
            sweep_speedup > 1.0
        )

    rows = [
        ["open suite", f"{npz_open_s / OPEN_ROUNDS:.4f}",
         f"{store_open_s / OPEN_ROUNDS:.4f}", f"{open_speedup:.1f}x"],
        [f"handoff x{WORKERS} workers", f"{pickle_s:.4f}", f"{handle_s:.4f}",
         f"{handoff_speedup:.1f}x"],
        ["shm export (once per pool)", "-", f"{export_s:.4f}", "-"],
        ["load + pooled sweep", f"{heap_sweep_s:.2f}", f"{store_sweep_s:.2f}",
         f"{sweep_speedup:.2f}x"],
    ]
    bench_line = (
        f"BENCH trace-store: open {open_speedup:.0f}x handoff "
        f"{handoff_speedup:.0f}x sweep {sweep_speedup:.2f}x "
        f"({len(heap)} traces x {records // len(heap)} records/trace)"
    )
    print(bench_line, file=sys.__stdout__, flush=True)
    benchjson.note(
        "trace-store-open", records, store_open_s / OPEN_ROUNDS,
        speedup=open_speedup, baseline_wall_s=round(npz_open_s / OPEN_ROUNDS, 4),
        traces=len(heap),
    )
    benchjson.note(
        "trace-store-handoff", records, handle_s, speedup=handoff_speedup,
        baseline_wall_s=round(pickle_s, 4), export_wall_s=round(export_s, 4),
        workers=WORKERS, traces=len(heap),
    )
    benchjson.note(
        "trace-store-sweep", records, store_sweep_s, speedup=sweep_speedup,
        baseline_wall_s=round(heap_sweep_s, 4), traces=len(heap),
        parity=bool(sweep_parity and chunk_parity),
    )

    report = ExperimentReport(
        experiment_id="BENCH-TRACE-STORE",
        title="Memmap trace store vs heap traces (open, handoff, sweep)",
        headers=["leg", "heap/npz (s)", "store (s)", "speedup"],
        rows=rows,
        checks=checks,
        notes=[bench_line],
    )
    emit(report)
    assert report.all_checks_pass, report.render()
