"""BENCH-STACKDIST: one trace pass per set count vs one per grid cell.

Times a Figure-5-shaped size x associativity grid (L2 sizes 16 KB-512 KB
x 1/2/4/8/16 ways over the standard trace suite) two ways:

* **fast path** (the PR-1 engine): one vectorised
  ``FastFunctionalSimulator`` run per grid cell, serially -- what every
  sweep paid before the stack-distance planner.
* **stackdist path**: :func:`repro.core.sweep.sweep_functional` with the
  grid planner on and a cold memo cache.  Cells sharing a deepest-level
  set count ride one stack-distance pass (Mattson's inclusion property);
  on this grid's diagonals that collapses 30 simulations per trace into
  8 multi-member passes, and the two extreme corners ride solo passes
  because their L1 front replay is shared with the rest of the grid.

Both paths must produce identical counts on every cell (the fast path is
itself count-identical to the reference ``FunctionalSimulator`` --
``tests/sim``), and a truncated-trace sub-grid is checked against the
reference simulator directly.  The acceptance bar is >= 5x at the full
250k-record scale.  A ``BENCH`` summary line goes to stdout for CI job
summaries, and the headline numbers land in ``results/BENCH.json`` via
:mod:`benchjson`.
"""

import sys

import benchjson

from repro.core import clock, sweep
from repro.core.sweep import sweep_functional
from repro.experiments.base import ExperimentReport
from repro.experiments.baseline import base_machine
from repro.experiments.render import format_size
from repro.sim import memo, stackdist
from repro.sim.fast import FastFunctionalSimulator
from repro.sim.functional import FunctionalSimulator
from repro.trace.record import Trace
from repro.units import KB

#: The Figure 5 axes: six sizes x five set sizes.  Diagonals of constant
#: size/ways share a set count, so the planner forms 8 multi-member
#: groups; the two extreme corners ride solo passes (shared L1 front).
L2_SIZES = [16 * KB, 32 * KB, 64 * KB, 128 * KB, 256 * KB, 512 * KB]
SET_SIZES = [1, 2, 4, 8, 16]

#: Records of the reference-simulator spot check (the event-driven
#: reference is ~3 orders slower, so it sees a truncated trace).
REFERENCE_RECORDS = 20_000

#: Interleaved best-of rounds.  This machine drifts +/-20% between
#: identical legs, so two fixed-order single-shot legs would book that
#: drift as speedup (or its absence); alternating which path goes first
#: each round and taking each leg's best cancels the bias.
ROUNDS = 3


def _grid_configs():
    return [
        (size, ways, base_machine(l2_size=size).with_level(1, associativity=ways))
        for size in L2_SIZES
        for ways in SET_SIZES
    ]


def _counts(result):
    return tuple(
        (s.reads, s.read_misses, s.writes, s.write_misses, s.writebacks,
         s.blocks_fetched)
        for s in result.level_stats
    ) + ((result.memory_reads, result.memory_writes),)


def _reference_spot_check(trace):
    """stackdist members vs the reference simulator on a truncated trace."""
    short = Trace(
        trace.kinds[:REFERENCE_RECORDS].copy(),
        trace.addresses[:REFERENCE_RECORDS].copy(),
        name=f"{trace.name}-spot",
        warmup=min(trace.warmup, REFERENCE_RECORDS // 4),
    )
    config = base_machine(l2_size=32 * KB)
    grid = stackdist.run_stackdist_grid(short, config)
    return all(
        _counts(grid.result_for(ways))
        == _counts(
            FunctionalSimulator(stackdist.member_config(config, ways)).run(short)
        )
        for ways in stackdist.STACK_ASSOCIATIVITIES
    )


def test_stackdist_grid_speedup(traces, emit, monkeypatch):
    monkeypatch.setenv(sweep.STACKDIST_ENV, "1")
    grid = _grid_configs()
    records = sum(len(t) for t in traces)

    fast_results = {}

    def fast_leg():
        watch = clock.Stopwatch()
        for size, ways, config in grid:
            fast_results[(size, ways)] = [
                FastFunctionalSimulator(config).run(trace) for trace in traces
            ]
        return watch.elapsed_s()

    def stack_leg():
        memo.clear_memo_cache()
        stackdist.clear_front_cache()
        watch = clock.Stopwatch()
        rows = sweep_functional(
            traces, [config for _, _, config in grid], workers=1
        )
        return watch.elapsed_s(), rows

    fast_times, stack_times = [], []
    stack_rows = None
    for rnd in range(ROUNDS):
        if rnd % 2:
            s, stack_rows = stack_leg()
            f = fast_leg()
        else:
            f = fast_leg()
            s, stack_rows = stack_leg()
        fast_times.append(f)
        stack_times.append(s)
    fast_total = min(fast_times)
    stack_total = min(stack_times)

    identical = all(
        _counts(new) == _counts(old)
        for (size, ways, _), row in zip(grid, stack_rows)
        for new, old in zip(row, fast_results[(size, ways)])
    )
    reference_ok = _reference_spot_check(traces[0])
    speedup = fast_total / stack_total if stack_total else float("inf")
    full_scale = records >= len(traces) * 200_000

    headers = ["path", "wall (s)", "trace passes / trace"]
    cells = len(grid)
    # 8 multi-member diagonals of the 6 x 5 grid plus the two extreme
    # corners, which ride solo passes on the shared L1 front replay.
    groups = 10
    rows = [
        ["fast path (per cell)", f"{fast_total:.2f}", str(cells)],
        [
            "stackdist (per set count)",
            f"{stack_total:.2f}",
            f"{groups} stack passes",
        ],
    ]

    checks = {
        "stackdist counts identical to the fast path on every cell": identical,
        "stackdist counts identical to the reference (truncated sub-grid)":
            reference_ok,
        "stackdist faster than per-cell fast path": speedup > 1.0,
    }
    if full_scale:
        checks["speedup >= 5x at full 250k-record scale"] = speedup >= 5.0

    bench_line = (
        f"BENCH stackdist-grid: fast {fast_total:.2f}s stackdist "
        f"{stack_total:.2f}s speedup {speedup:.1f}x "
        f"({cells} configs x {len(traces)} traces x "
        f"{records // len(traces)} records/trace, best of {ROUNDS})"
    )
    print(bench_line, file=sys.__stdout__, flush=True)
    benchjson.note(
        "stackdist-grid", records, stack_total, speedup=speedup,
        baseline_wall_s=round(fast_total, 4), configs=cells,
        traces=len(traces), parity=bool(identical and reference_ok),
    )

    report = ExperimentReport(
        experiment_id="BENCH-STACKDIST",
        title=(
            "Stack-distance grid engine vs per-cell fast path "
            "(Figure-5-shaped size x associativity grid)"
        ),
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[
            bench_line,
            f"{format_size(min(L2_SIZES))}-{format_size(max(L2_SIZES))} x "
            f"set sizes {SET_SIZES}: diagonals of constant size/ways share "
            f"a set count, so one LRU stack pass derives every member "
            f"associativity exactly (Mattson inclusion).",
        ],
    )
    emit(report)
    assert report.all_checks_pass, report.render()
