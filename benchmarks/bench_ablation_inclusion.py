"""A-INCL: the L1 cost of enforcing multi-level inclusion."""

from conftest import run_experiment
from repro.experiments.extensions import InclusionAblation


def test_ablation_inclusion(benchmark, traces, emit):
    report = run_experiment(benchmark, InclusionAblation(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
