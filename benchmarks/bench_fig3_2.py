"""F3-2: Figure 3-2 -- L2 miss ratio triad with a 32 KB L1."""

from conftest import run_experiment
from repro.experiments.fig3 import fig3_2


def test_fig3_2(benchmark, traces, emit):
    report = run_experiment(benchmark, fig3_2(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
