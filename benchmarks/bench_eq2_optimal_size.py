"""E-EQ2: optimal L2 size growth as the L1 improves (Equation 2)."""

from conftest import run_experiment
from repro.experiments.equations import OptimalSizeShift


def test_eq2_optimal_size(benchmark, traces, emit):
    report = run_experiment(benchmark, OptimalSizeShift(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
