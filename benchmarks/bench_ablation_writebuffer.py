"""A-WBUF: write-buffer depth sensitivity (paper footnote 2)."""

from conftest import run_experiment
from repro.experiments.extensions import WriteBufferAblation


def test_ablation_writebuffer(benchmark, traces, emit):
    report = run_experiment(benchmark, WriteBufferAblation(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
