"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one paper artefact (DESIGN.md section 5) on the
standard synthetic trace suite and prints the reproduced rows/series.
Scale knobs: REPRO_RECORDS (default 250000), REPRO_TRACES (default 4, max
8), REPRO_FULL=1 for the paper's full 4KB-4MB size axis.

Reports are written to ``results/`` and echoed to the real stdout so they
survive pytest's capture (the reproduced tables are the point of the run).
"""

import sys
from pathlib import Path

import pytest

from repro.experiments.workloads import paper_trace_suite

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def traces():
    """The standard trace suite, generated once per benchmark session."""
    return paper_trace_suite()


@pytest.fixture
def emit():
    """Print a report past pytest's capture and persist it to results/."""

    def _emit(report):
        text = report.render()
        print(f"\n{text}\n", file=sys.__stdout__, flush=True)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{report.experiment_id}.txt").write_text(text + "\n")

    return _emit


def run_experiment(benchmark, experiment, traces):
    """Run ``experiment`` exactly once under the benchmark clock."""
    return benchmark.pedantic(
        lambda: experiment.run(traces), rounds=1, iterations=1
    )
