"""E-R5: the solo miss ratio's 0.69-per-doubling power law."""

from conftest import run_experiment
from repro.experiments.equations import MissRatePowerLaw


def test_missrate_powerlaw(benchmark, traces, emit):
    report = run_experiment(benchmark, MissRatePowerLaw(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
