"""E-3L: three-level hierarchies (section 6's outlook)."""

from conftest import run_experiment
from repro.experiments.extensions import ThreeLevelHierarchy


def test_three_level(benchmark, traces, emit):
    report = run_experiment(benchmark, ThreeLevelHierarchy(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
