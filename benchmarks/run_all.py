"""Drive the performance benches and collect machine-readable results.

Runs the instrumented benchmarks in-process (one ``pytest.main`` per
bench so a crash in one cannot poison another's module state) and, with
``--json``, gathers every :func:`benchjson.note` into
``results/BENCH.json`` -- a diffable artefact of the performance
trajectory that CI uploads per run.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --json
    PYTHONPATH=src python benchmarks/run_all.py --json --only stackdist-grid

Scale knobs are the usual ones: ``REPRO_RECORDS`` / ``REPRO_TRACES``
shrink the trace suite for smoke runs (acceptance bars that only apply
at full 250k-record scale are skipped automatically by the benches).
Exits non-zero if any selected bench fails, so parity losses surface as
CI failures rather than quietly stale numbers.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import pytest

import benchjson

HERE = Path(__file__).resolve().parent
ROOT = HERE.parent

# Invoked as ``python benchmarks/run_all.py`` the script dir -- not the
# repo root -- leads sys.path; the benches import ``benchmarks.conftest``,
# which needs the root.
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))

#: name -> bench file.  Only the instrumented perf benches belong here;
#: the figure-reproduction benches live in their own files and have no
#: baseline to speed up against.
BENCHES = {
    "stackdist-grid": "bench_stackdist_grid.py",
    "sweep-engine": "bench_sweep_engine.py",
    "audit-overhead": "bench_audit_overhead.py",
    "resilience-overhead": "bench_resilience_overhead.py",
    "integrity-overhead": "bench_integrity_overhead.py",
    "telemetry-overhead": "bench_telemetry_overhead.py",
    "trace-store": "bench_trace_store.py",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        action="store_true",
        help="write collected bench notes to results/BENCH.json",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=sorted(BENCHES),
        metavar="NAME",
        help="run only this bench (repeatable); default: all of %(choices)s",
    )
    args = parser.parse_args(argv)

    selected = args.only or sorted(BENCHES)
    benchjson.reset()
    failures = []
    for name in selected:
        path = HERE / BENCHES[name]
        print(f"== bench {name} ({path.name}) ==", flush=True)
        code = pytest.main(["-q", "--no-header", str(path)])
        if code != 0:
            failures.append(name)

    if args.json:
        out = benchjson.write(HERE.parent / "results" / "BENCH.json")
        print(f"wrote {out} ({len(benchjson.collected())} benches)")

    if failures:
        print(f"FAILED benches: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
