"""F5-1: Figure 5-1 -- break-even times for 2-way L2 associativity."""

from conftest import run_experiment
from repro.experiments.fig5 import fig5_1


def test_fig5_1(benchmark, traces, emit):
    report = run_experiment(benchmark, fig5_1(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
