"""BENCH-INTEGRITY: what the durable artifact layer costs when nothing
is wrong.

Times the same cold functional sweep (eight L2 sizes over the standard
trace suite) two ways, with the suite served from an on-disk trace cache
each pass -- the configuration every journaled/resumable run uses:

* **bare**: ``REPRO_STORE_VERIFY=0`` -- stores are reopened on trust
  (header parse only), as before the integrity layer existed;
* **verified**: ``REPRO_STORE_VERIFY=1`` (the default) -- every store
  open re-hashes both data segments against the recorded per-segment
  digests, and every cache entry is opened under its advisory lock.

Both passes must produce identical counts, and the verified pass must
cost at most 5% more wall clock at the full 250k-record scale: one
chunked SHA-256 over ~9 MB of segments per trace open is milliseconds
against seconds of simulation, and the locks are uncontended flock
calls.  The legs run interleaved, best of :data:`ROUNDS`, alternating
order so machine drift cannot masquerade as overhead.  A ``BENCH``
summary line goes to stdout for CI job summaries.
"""

import sys

import numpy as np

import benchjson

from repro.core import clock
from repro.core.sweep import sweep_functional
from repro.experiments import workloads
from repro.experiments.base import ExperimentReport
from repro.experiments.baseline import base_machine
from repro.experiments.workloads import paper_trace_suite
from repro.sim import memo
from repro.units import KB

#: Eight functionally-distinct configurations (L2 size axis).
L2_SIZES = [16 * KB, 32 * KB, 64 * KB, 128 * KB,
            256 * KB, 512 * KB, 1024 * KB, 2048 * KB]

#: Overhead budget for the fully verified pass.
OVERHEAD_BUDGET = 0.05

#: Interleaved repetitions per leg; each leg reports its best round.
ROUNDS = 5


def _counts(result):
    return tuple(
        (s.reads, s.read_misses, s.writes, s.write_misses, s.writebacks)
        for s in result.level_stats
    )


def test_integrity_overhead(emit, tmp_path, monkeypatch):
    configs = [base_machine(l2_size=size) for size in L2_SIZES]
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_FAULTS", raising=False)

    # Populate the disk cache once, outside the clock: both legs then
    # measure reopen + sweep, the shape of every resumed or concurrent
    # run against a shared cache.
    workloads._memory_cache.clear()
    suite = paper_trace_suite()
    records = sum(len(t) for t in suite)
    trace_count = len(suite)
    del suite

    def leg(verify):
        monkeypatch.setenv("REPRO_STORE_VERIFY", "1" if verify else "0")
        workloads._memory_cache.clear()
        memo.clear_memo_cache()
        watch = clock.Stopwatch()
        traces = paper_trace_suite()
        grid = sweep_functional(traces, configs)
        elapsed = watch.elapsed_s()
        memmapped = all(isinstance(t.addresses, np.memmap) for t in traces)
        return elapsed, grid, memmapped

    # Alternate which leg goes first each round: on a shared machine the
    # second leg of a pair systematically sees a different load than the
    # first, and a fixed order would book that bias as "overhead".
    bare_times, verified_times = [], []
    for rnd in range(ROUNDS):
        if rnd % 2:
            verified_s, verified_grid, verified_memmap = leg(verify=True)
            bare_s, bare_grid, _ = leg(verify=False)
        else:
            bare_s, bare_grid, _ = leg(verify=False)
            verified_s, verified_grid, verified_memmap = leg(verify=True)
        bare_times.append(bare_s)
        verified_times.append(verified_s)
    bare_s, verified_s = min(bare_times), min(verified_times)

    identical = all(
        _counts(a) == _counts(b)
        for row_a, row_b in zip(bare_grid, verified_grid)
        for a, b in zip(row_a, row_b)
    )
    overhead = (verified_s - bare_s) / bare_s if bare_s else 0.0
    full_scale = records >= trace_count * 200_000

    headers = ["pass", "wall (s)", "per store open"]
    rows = [
        ["trusted open + sweep", f"{bare_s:.2f}", "header parse"],
        ["verified open + sweep", f"{verified_s:.2f}",
         "2 segment digests + lock"],
        ["overhead", f"{overhead * 100:+.1f}%",
         f"budget {OVERHEAD_BUDGET * 100:.0f}%"],
    ]
    checks = {
        "verified counts identical to bare": identical,
        "verified suite still memmap-backed": verified_memmap,
    }
    if full_scale:
        checks["overhead <= 5% at full 250k-record scale"] = (
            overhead <= OVERHEAD_BUDGET
        )

    bench_line = (
        f"BENCH integrity-overhead: bare {bare_s:.2f}s verified "
        f"{verified_s:.2f}s overhead {overhead * 100:+.1f}% "
        f"({len(configs)} configs x {trace_count} traces x "
        f"{records // trace_count} records/trace, segment digests + "
        f"advisory locks per open, best of {ROUNDS})"
    )
    print(bench_line, file=sys.__stdout__, flush=True)
    benchjson.note(
        "integrity-overhead", records, verified_s,
        baseline_wall_s=round(bare_s, 4), overhead=round(overhead, 4),
        configs=len(configs), traces=trace_count, parity=bool(identical),
    )

    report = ExperimentReport(
        experiment_id="BENCH-INTEGRITY",
        title="Store verification + advisory locking overhead on a cold sweep",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[bench_line],
    )
    emit(report)
    assert report.all_checks_pass, report.render()
