"""A-AFFINE: the counts-plus-affine sweep method vs full timing simulation."""

from conftest import run_experiment
from repro.experiments.extensions import AffineVersusTiming


def test_ablation_affine(benchmark, traces, emit):
    report = run_experiment(benchmark, AffineVersusTiming(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
