"""A-WPOL: write-back vs write-through first-level caches."""

from conftest import run_experiment
from repro.experiments.extensions import WritePolicyAblation


def test_ablation_writepolicy(benchmark, traces, emit):
    report = run_experiment(benchmark, WritePolicyAblation(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
