"""Machine-readable benchmark notes.

Benchmarks report their headline numbers here (one :func:`note` per
bench) in addition to their human-readable ``results/*.txt`` reports;
``benchmarks/run_all.py --json`` collects the notes into
``results/BENCH.json`` so the performance trajectory is a diffable
artefact across PRs instead of living only in prose.

The accumulator is module-global on purpose: the benches run inside one
pytest process (``run_all.py`` drives them in-process), and a global
list is the simplest channel that survives pytest's fixtures and
capture.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
from pathlib import Path
from typing import Any, Dict, List, Optional

_notes: List[Dict[str, Any]] = []


def provenance() -> Dict[str, Any]:
    """Where and on what these numbers were measured.

    A BENCH.json row without provenance is a number without a context:
    comparing wall times across PRs only means something when the host,
    core count and interpreter match (and the git sha says exactly what
    ran).  Merged into every row by :func:`write`.
    """
    info: Dict[str, Any] = {
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "host": socket.gethostname(),
    }
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        if proc.returncode == 0:
            info["git_sha"] = proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass  # not a git checkout (tarball run): row just omits the sha
    return info


def note(
    name: str,
    records: int,
    wall_s: float,
    speedup: Optional[float] = None,
    **extra: Any,
) -> None:
    """Record one bench's headline numbers.

    ``records`` is the total trace records processed, ``wall_s`` the
    measured wall time of the optimised path, ``speedup`` the ratio over
    the bench's baseline when it has one.  Additional keyword fields
    land in the JSON entry verbatim.
    """
    entry: Dict[str, Any] = {
        "name": name,
        "records": int(records),
        "wall_s": round(float(wall_s), 4),
    }
    if speedup is not None:
        entry["speedup"] = round(float(speedup), 2)
    entry.update(extra)
    _notes.append(entry)


def collected() -> List[Dict[str, Any]]:
    """A copy of every note recorded so far."""
    return [dict(entry) for entry in _notes]


def reset() -> None:
    """Drop accumulated notes (``run_all.py`` calls this per run)."""
    _notes.clear()


def write(path) -> Path:
    """Serialise the collected notes to ``path`` as JSON.

    Every row carries the same :func:`provenance` fields (git sha,
    python version, cpu count, hostname) so rows stay self-describing
    when BENCH.json files from different runs are concatenated or
    diffed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    prov = provenance()
    rows = [{**prov, **entry} for entry in collected()]
    path.write_text(
        json.dumps({"benchmarks": rows}, indent=2, sort_keys=True) + "\n"
    )
    return path
