"""A-PREF: sequential prefetching schemes in the L2."""

from conftest import run_experiment
from repro.experiments.extensions import PrefetchAblation


def test_ablation_prefetch(benchmark, traces, emit):
    report = run_experiment(benchmark, PrefetchAblation(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
