"""E-L1OPT: the optimal L1 size versus L2 speed (section 6)."""

from conftest import run_experiment
from repro.experiments.equations import OptimalL1VersusL2Speed


def test_l1_optimum(benchmark, traces, emit):
    report = run_experiment(benchmark, OptimalL1VersusL2Speed(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
