"""F5-3: Figure 5-3 -- break-even times for 8-way L2 associativity
(the paper's 10-20 ns budget over most of the plane)."""

from conftest import run_experiment
from repro.experiments.fig5 import fig5_3


def test_fig5_3(benchmark, traces, emit):
    report = run_experiment(benchmark, fig5_3(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
