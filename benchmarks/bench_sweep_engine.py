"""BENCH-SWEEP: the sweep engine versus the seed-level per-cell loop.

Times a Figure-5-shaped sweep -- L2 sizes x set sizes 1/2/4/8 over the
standard trace suite -- two ways:

* **seed path**: the engines the repository shipped with before the sweep
  engine landed, driven cell by cell: the vectorised simulator for
  direct-mapped configurations, the reference event-driven
  ``FunctionalSimulator`` for associative ones (the old fast path refused
  anything but direct-mapped), serially.
* **sweep path**: :func:`repro.core.sweep.sweep_functional` from a cold
  memoisation cache -- the set-associative vectorised kernel plus the
  shared executor.

Both paths must produce identical counts; the speedup is the headline
number (the acceptance bar is >= 5x at the full 250k-record scale).  A
``BENCH`` summary line goes to stdout for CI job summaries.
"""

import sys

import benchjson

from repro.core import clock
from repro.core.sweep import sweep_functional
from repro.experiments.base import ExperimentReport
from repro.experiments.baseline import base_machine
from repro.experiments.render import format_size
from repro.sim import memo
from repro.sim.fast import FastFunctionalSimulator
from repro.sim.functional import FunctionalSimulator
from repro.units import KB

#: The Figure 5 axes, trimmed to two sizes so the reference engine's half
#: of the comparison stays bounded.
L2_SIZES = [16 * KB, 64 * KB]
SET_SIZES = [1, 2, 4, 8]


def _grid_configs():
    return [
        (size, ways, base_machine(l2_size=size).with_level(1, associativity=ways))
        for size in L2_SIZES
        for ways in SET_SIZES
    ]


def _seed_engine(trace, config):
    """What the seed repository would have run for this cell."""
    if all(level.associativity == 1 for level in config.levels):
        return FastFunctionalSimulator(config).run(trace)
    return FunctionalSimulator(config).run(trace)


def _counts(result):
    return tuple(
        (s.reads, s.read_misses, s.writes, s.write_misses, s.writebacks,
         s.blocks_fetched)
        for s in result.level_stats
    )


def test_sweep_engine_speedup(traces, emit):
    grid = _grid_configs()
    records = sum(len(t) for t in traces)

    seed_results = {}
    seed_seconds = {}
    for size, ways, config in grid:
        watch = clock.Stopwatch()
        seed_results[(size, ways)] = [
            _seed_engine(trace, config) for trace in traces
        ]
        seed_seconds[(size, ways)] = watch.elapsed_s()
    seed_total = sum(seed_seconds.values())

    memo.clear_memo_cache()
    watch = clock.Stopwatch()
    sweep_rows = sweep_functional(traces, [config for _, _, config in grid])
    sweep_total = watch.elapsed_s()

    identical = all(
        _counts(new) == _counts(old)
        for (size, ways, _), row in zip(grid, sweep_rows)
        for new, old in zip(row, seed_results[(size, ways)])
    )
    speedup = seed_total / sweep_total if sweep_total else float("inf")
    full_scale = records >= len(traces) * 200_000

    headers = ["L2 config", "seed path (s)", "engine"]
    rows = [
        [
            f"{format_size(size)} {ways}-way",
            f"{seed_seconds[(size, ways)]:.2f}",
            "vectorised" if ways == 1 else "reference",
        ]
        for size, ways, _ in grid
    ]
    rows.append(["total (seed path)", f"{seed_total:.2f}", "serial"])
    rows.append(["total (sweep engine)", f"{sweep_total:.2f}", "vectorised"])

    checks = {
        "sweep engine counts identical to seed engines": identical,
        "sweep engine faster than the seed path": speedup > 1.0,
    }
    if full_scale:
        checks["speedup >= 5x at full 250k-record scale"] = speedup >= 5.0

    bench_line = (
        f"BENCH sweep-engine: seed {seed_total:.2f}s sweep {sweep_total:.2f}s "
        f"speedup {speedup:.1f}x "
        f"({len(grid)} configs x {len(traces)} traces x "
        f"{records // len(traces)} records/trace)"
    )
    print(bench_line, file=sys.__stdout__, flush=True)
    benchjson.note(
        "sweep-engine", records, sweep_total, speedup=speedup,
        baseline_wall_s=round(seed_total, 4), configs=len(grid),
        traces=len(traces), parity=bool(identical),
    )

    report = ExperimentReport(
        experiment_id="BENCH-SWEEP",
        title="Sweep engine vs seed per-cell loop (Figure-5-shaped grid)",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[bench_line],
    )
    emit(report)
    assert report.all_checks_pass, report.render()
