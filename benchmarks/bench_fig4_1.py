"""F4-1: Figure 4-1 -- relative execution time vs L2 size and cycle time."""

from conftest import run_experiment
from repro.experiments.fig4 import fig4_1


def test_fig4_1(benchmark, traces, emit):
    report = run_experiment(benchmark, fig4_1(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
