"""BENCH-RESILIENCE: what crash tolerance costs on a real sweep.

Times the same functional sweep (eight L2 sizes over the standard trace
suite, cold memoisation cache each pass) two ways:

* **bare**: the executor as every call site uses it by default -- no
  journal, no fault plan;
* **instrumented**: a checkpoint journal recording every completed cell
  (flushed per cell, fsynced by group commit), plus a parsed-but-zero-
  rate fault plan so every per-cell injection hook runs.

Both passes must produce identical counts, and the instrumented pass
must cost at most 5% more wall clock (the acceptance bar at the full
250k-record scale): resilience is bookkeeping around the simulation, a
few JSONL writes against seconds of kernel time.  The legs run
interleaved, best of :data:`ROUNDS`, so machine drift between two
single-shot measurements cannot masquerade as overhead.  A ``BENCH``
summary line goes to stdout for CI job summaries.
"""

import sys

import benchjson

from repro.core import clock
from repro.core.sweep import sweep_functional
from repro.experiments.base import ExperimentReport
from repro.experiments.baseline import base_machine
from repro.resilience.journal import journaling
from repro.sim import memo
from repro.units import KB

#: Eight functionally-distinct configurations (L2 size axis).
L2_SIZES = [16 * KB, 32 * KB, 64 * KB, 128 * KB,
            256 * KB, 512 * KB, 1024 * KB, 2048 * KB]

#: Overhead budget for the fully instrumented pass.
OVERHEAD_BUDGET = 0.05

#: Interleaved repetitions per leg; each leg reports its best round.
ROUNDS = 5


def _counts(result):
    return tuple(
        (s.reads, s.read_misses, s.writes, s.write_misses, s.writebacks)
        for s in result.level_stats
    )


def test_resilience_overhead(traces, emit, tmp_path, monkeypatch):
    configs = [base_machine(l2_size=size) for size in L2_SIZES]
    records = sum(len(t) for t in traces)
    cells = len(configs) * len(traces)

    # Pin the per-cell execution path: the 5% budget was defined against
    # it, and the stack-distance planner would halve the denominator
    # while the journal writes the same one record per requested cell.
    # The resume test below keeps the planner on, covering batched
    # group journaling.
    monkeypatch.setenv("REPRO_STACKDIST", "0")

    def bare_leg():
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        memo.clear_memo_cache()
        watch = clock.Stopwatch()
        grid = sweep_functional(traces, configs)
        return watch.elapsed_s(), grid

    def instrumented_leg(rnd):
        # Zero-rate plan: every injection decision point runs, nothing
        # fires.
        monkeypatch.setenv(
            "REPRO_FAULTS", "worker_raise:0.0,corrupt_result:0.0"
        )
        memo.clear_memo_cache()
        watch = clock.Stopwatch()
        with journaling(tmp_path / f"bench-{rnd}.journal.jsonl") as journal:
            grid = sweep_functional(traces, configs)
        return watch.elapsed_s(), grid, journal

    # Alternate which leg goes first each round: on a shared machine the
    # second leg of a pair systematically sees a different load than the
    # first, and a fixed order would book that bias as "overhead".
    bare_times, inst_times = [], []
    for rnd in range(ROUNDS):
        if rnd % 2:
            inst_s, instrumented_grid, journal = instrumented_leg(rnd)
            bare_t, bare_grid = bare_leg()
        else:
            bare_t, bare_grid = bare_leg()
            inst_s, instrumented_grid, journal = instrumented_leg(rnd)
        bare_times.append(bare_t)
        inst_times.append(inst_s)
    bare_s, instrumented_s = min(bare_times), min(inst_times)

    identical = all(
        _counts(a) == _counts(b)
        for row_a, row_b in zip(bare_grid, instrumented_grid)
        for a, b in zip(row_a, row_b)
    )
    overhead = (instrumented_s - bare_s) / bare_s if bare_s else 0.0
    full_scale = records >= len(traces) * 200_000

    headers = ["pass", "wall (s)", "journal cells"]
    rows = [
        ["bare sweep", f"{bare_s:.2f}", "-"],
        ["journal + fault hooks", f"{instrumented_s:.2f}",
         str(journal.recorded)],
        ["overhead", f"{overhead * 100:+.1f}%",
         f"budget {OVERHEAD_BUDGET * 100:.0f}%"],
    ]
    checks = {
        "instrumented counts identical to bare": identical,
        "every simulated cell journaled": journal.recorded == cells,
    }
    if full_scale:
        checks["overhead <= 5% at full 250k-record scale"] = (
            overhead <= OVERHEAD_BUDGET
        )

    bench_line = (
        f"BENCH resilience-overhead: bare {bare_s:.2f}s instrumented "
        f"{instrumented_s:.2f}s overhead {overhead * 100:+.1f}% "
        f"({len(configs)} configs x {len(traces)} traces x "
        f"{records // len(traces)} records/trace, "
        f"{journal.recorded} cells journaled+fsynced, best of {ROUNDS})"
    )
    print(bench_line, file=sys.__stdout__, flush=True)
    benchjson.note(
        "resilience-overhead", records, instrumented_s,
        baseline_wall_s=round(bare_s, 4), overhead=round(overhead, 4),
        configs=len(configs), traces=len(traces), parity=bool(identical),
    )

    report = ExperimentReport(
        experiment_id="BENCH-RESILIENCE",
        title="Checkpoint journal + fault hooks overhead on a cold sweep",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[bench_line],
    )
    emit(report)
    assert report.all_checks_pass, report.render()


def test_resume_is_cheaper_than_recompute(traces, emit, tmp_path, monkeypatch):
    """Resuming a fully journaled sweep must beat re-simulating it."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    configs = [base_machine(l2_size=size) for size in L2_SIZES[:4]]
    path = tmp_path / "resume.journal.jsonl"

    memo.clear_memo_cache()
    watch = clock.Stopwatch()
    with journaling(path):
        first = sweep_functional(traces, configs)
    cold_s = watch.elapsed_s()

    memo.clear_memo_cache()
    watch = clock.Stopwatch()
    with journaling(path, resume=True):
        resumed = sweep_functional(traces, configs)
    resume_s = watch.elapsed_s()

    identical = all(
        _counts(a) == _counts(b)
        for row_a, row_b in zip(first, resumed)
        for a, b in zip(row_a, row_b)
    )
    speedup = cold_s / resume_s if resume_s else float("inf")

    bench_line = (
        f"BENCH resilience-resume: cold {cold_s:.2f}s resumed {resume_s:.2f}s "
        f"({speedup:.0f}x, {len(configs)} configs x {len(traces)} traces)"
    )
    print(bench_line, file=sys.__stdout__, flush=True)

    report = ExperimentReport(
        experiment_id="BENCH-RESILIENCE-RESUME",
        title="Journal resume vs cold recompute",
        headers=["pass", "wall (s)"],
        rows=[
            ["cold (journaling)", f"{cold_s:.2f}"],
            ["resumed (restore only)", f"{resume_s:.2f}"],
        ],
        checks={
            "resumed counts identical to cold": identical,
            "resume faster than recompute": resume_s < cold_s,
        },
        notes=[bench_line],
    )
    emit(report)
    assert report.all_checks_pass, report.render()
