"""F5-2: Figure 5-2 -- break-even times for 4-way L2 associativity."""

from conftest import run_experiment
from repro.experiments.fig5 import fig5_2


def test_fig5_2(benchmark, traces, emit):
    report = run_experiment(benchmark, fig5_2(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
