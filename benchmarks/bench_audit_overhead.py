"""BENCH-AUDIT: cost of the conservation-law audits, and a sample manifest.

Times a Figure-5-shaped functional sweep -- L2 sizes x set sizes 1/2/4/8
over the standard trace suite -- with ``REPRO_AUDIT=0`` and again with
``REPRO_AUDIT=1`` from a cold memoisation cache, plus a small timing-
simulator leg.  The audited runs must produce identical counts and cost
no more than 10% extra (the audits are O(depth) numpy reductions per
run).  The audited sweep is recorded into a run manifest written to
``results/BENCH-AUDIT.manifest.json`` -- the committed example of what
the observability layer captures (docs/observability.md).
"""

import json
import sys

import benchjson

from repro.audit import manifest as run_manifest
from repro.audit.invariants import ENV_KNOB
from repro.core import clock
from repro.core.sweep import sweep_functional, sweep_workers
from repro.experiments.base import ExperimentReport
from repro.experiments.baseline import base_machine
from repro.sim import memo
from repro.sim.timing import TimingSimulator
from repro.units import KB

from benchmarks.conftest import RESULTS_DIR

L2_SIZES = [16 * KB, 64 * KB]
SET_SIZES = [1, 2, 4, 8]
ROUNDS = 5


def _grid_configs():
    return [
        base_machine(l2_size=size).with_level(1, associativity=ways)
        for size in L2_SIZES
        for ways in SET_SIZES
    ]


def _counts(result):
    return tuple(
        (s.reads, s.read_misses, s.writes, s.write_misses, s.writebacks,
         s.blocks_fetched)
        for s in result.level_stats
    )


def _functional_leg(traces, configs):
    """Best-of-N cold-cache sweep time plus the final grid's counts."""
    seconds = []
    grid = None
    for _ in range(ROUNDS):
        memo.clear_memo_cache()
        watch = clock.Stopwatch()
        grid = sweep_functional(traces, configs)
        seconds.append(watch.elapsed_s())
    return min(seconds), grid


def _timing_legs(trace, configs, monkeypatch):
    """Best-of-N plain and audited timing runs, interleaved.

    The timing runs are short (~0.2 s), so two fixed-order best-of-N
    blocks would book machine drift between the blocks as audit
    overhead; alternating which leg goes first each round cancels that
    bias.  Leaves the audit knob on.
    """

    def one(audit):
        monkeypatch.setenv(ENV_KNOB, "1" if audit else "0")
        watch = clock.Stopwatch()
        results = [TimingSimulator(config).run(trace) for config in configs]
        return watch.elapsed_s(), results

    plain_s, audited_s = [], []
    plain = audited = None
    for rnd in range(ROUNDS):
        if rnd % 2:
            a, audited = one(True)
            p, plain = one(False)
        else:
            p, plain = one(False)
            a, audited = one(True)
        plain_s.append(p)
        audited_s.append(a)
    monkeypatch.setenv(ENV_KNOB, "1")
    return min(plain_s), plain, min(audited_s), audited


def test_audit_overhead(traces, emit, monkeypatch):
    configs = _grid_configs()
    timing_trace = traces[0][:40_000]
    timing_configs = configs[:2]
    records = sum(len(t) for t in traces)

    monkeypatch.setenv(ENV_KNOB, "0")
    plain_seconds, plain_grid = _functional_leg(traces, configs)

    monkeypatch.setenv(ENV_KNOB, "1")
    with run_manifest.recording("BENCH-AUDIT") as recorder:
        recorder.add_traces(traces)
        with recorder.phase("functional-sweep"):
            audited_seconds, audited_grid = _functional_leg(traces, configs)
        with recorder.phase("timing"):
            (
                plain_timing_seconds,
                plain_timing,
                audited_timing_seconds,
                audited_timing,
            ) = _timing_legs(timing_trace, timing_configs, monkeypatch)
        # One warm re-sweep so the manifest shows the memoisation layer
        # absorbing a repeat grid (simulated=0, hit ratio > 0).
        with recorder.phase("memo-warm-resweep"):
            sweep_functional(traces, configs)

    identical = all(
        _counts(a) == _counts(b)
        for row_a, row_b in zip(plain_grid, audited_grid)
        for a, b in zip(row_a, row_b)
    ) and all(
        _counts(a) == _counts(b) and a.total_ns == b.total_ns
        for a, b in zip(plain_timing, audited_timing)
    )

    overhead = (audited_seconds - plain_seconds) / plain_seconds
    timing_overhead = (
        (audited_timing_seconds - plain_timing_seconds) / plain_timing_seconds
    )

    recorder.annotate(
        functional_overhead=round(overhead, 4),
        timing_overhead=round(timing_overhead, 4),
        rounds=ROUNDS,
    )
    manifest_path = recorder.write(RESULTS_DIR / "BENCH-AUDIT.manifest.json")
    manifest_data = json.loads(manifest_path.read_text())

    rows = [
        ["functional sweep, audit off", f"{plain_seconds:.2f}", "-"],
        ["functional sweep, audit on", f"{audited_seconds:.2f}",
         f"{overhead:+.1%}"],
        ["timing x2 configs, audit off", f"{plain_timing_seconds:.2f}", "-"],
        ["timing x2 configs, audit on", f"{audited_timing_seconds:.2f}",
         f"{timing_overhead:+.1%}"],
    ]
    checks = {
        "audited counts identical to unaudited": identical,
        "functional audit overhead <= 10%": overhead <= 0.10,
        "timing audit overhead <= 10%": timing_overhead <= 0.10,
        "manifest records memo hit ratio": (
            0.0 < manifest_data["memo"]["hit_ratio"] <= 1.0
        ),
        "manifest shows the warm re-sweep fully memoised": (
            manifest_data["sweeps"][-1]["simulated"] == 0
        ),
        "manifest records worker count": all(
            note["workers"] >= 1 for note in manifest_data["sweeps"]
        ),
    }

    bench_line = (
        f"BENCH audit-overhead: functional {overhead:+.1%} "
        f"timing {timing_overhead:+.1%} "
        f"({len(configs)} configs x {len(traces)} traces x "
        f"{records // len(traces)} records/trace, workers="
        f"{sweep_workers()}, best of {ROUNDS})"
    )
    print(bench_line, file=sys.__stdout__, flush=True)
    benchjson.note(
        "audit-overhead", records, audited_seconds,
        baseline_wall_s=round(plain_seconds, 4),
        functional_overhead=round(overhead, 4),
        timing_overhead=round(timing_overhead, 4),
        configs=len(configs), traces=len(traces), parity=bool(identical),
    )

    report = ExperimentReport(
        experiment_id="BENCH-AUDIT",
        title="Conservation-law audit overhead (Figure-5-shaped grid)",
        headers=["leg", "seconds", "overhead"],
        rows=rows,
        checks=checks,
        notes=[bench_line, f"manifest: {manifest_path.name}"],
    )
    emit(report)
    memo.clear_memo_cache()
    assert report.all_checks_pass, report.render()
