"""F4-4: Figure 4-4 -- 2x slower memory shifts the slope regions ~2x."""

from conftest import run_experiment
from repro.experiments.fig4 import fig4_4


def test_fig4_4(benchmark, traces, emit):
    report = run_experiment(benchmark, fig4_4(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
