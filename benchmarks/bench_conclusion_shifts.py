"""E-CONC: section 6's quantified shifts (seven binary orders; 0.24-0.33
powers of two per L1 doubling)."""

from conftest import run_experiment
from repro.experiments.equations import ConclusionShifts


def test_conclusion_shifts(benchmark, traces, emit):
    report = run_experiment(benchmark, ConclusionShifts(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
