"""A-BLOCK: the L2 block-size design choice."""

from conftest import run_experiment
from repro.experiments.extensions import BlockSizeAblation


def test_ablation_blocksize(benchmark, traces, emit):
    report = run_experiment(benchmark, BlockSizeAblation(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
