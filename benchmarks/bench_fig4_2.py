"""F4-2: Figure 4-2 -- lines of constant performance, 4 KB L1."""

from conftest import run_experiment
from repro.experiments.fig4 import fig4_2


def test_fig4_2(benchmark, traces, emit):
    report = run_experiment(benchmark, fig4_2(), traces)
    emit(report)
    assert report.all_checks_pass, report.render()
