"""Prefetching study: sequential prefetch schemes in a two-level hierarchy.

The paper's simulator models prefetching (section 2) although the published
figures keep it off.  This example turns it on: it compares demand fetching
with the classic sequential schemes (prefetch-on-miss, tagged, always) at
both cache levels, and shows why prefetch *placement* matters -- the L2 has
bandwidth to spare for speculation, while the tiny L1 gets polluted.

Run with:  python examples/prefetch_study.py
"""

from repro.experiments import base_machine, build_trace
from repro.sim import simulate_miss_ratios


def study(level_name: str, level_index: int, traces) -> None:
    print(f"\nsequential prefetching in the {level_name}:")
    print(f"  {'scheme':>8} {'L1 miss':>8} {'L2 miss':>8} "
          f"{'issued':>7} {'accuracy':>9} {'mem reads':>10}")
    for scheme in ("none", "on-miss", "tagged", "always"):
        config = base_machine(l2_size=64 * 1024).with_level(
            level_index, prefetch=scheme, prefetch_distance=1
        )
        l1_miss = l2_miss = reads = issued = useful = memory = 0
        for trace in traces:
            result = simulate_miss_ratios(trace, config)
            l1_miss += result.level_stats[0].read_misses
            l2_miss += result.level_stats[1].read_misses
            reads += result.cpu_reads
            stats = result.level_stats[level_index]
            issued += stats.prefetches_issued
            useful += stats.useful_prefetches
            memory += result.memory_reads
        accuracy = useful / issued if issued else 0.0
        print(
            f"  {scheme:>8} {l1_miss / reads:8.4f} {l2_miss / reads:8.4f} "
            f"{issued:7d} {accuracy:8.0%} {memory:10d}"
        )


def main() -> None:
    traces = [
        build_trace("pf", index=i, records=120_000, kernel=i == 0)
        for i in range(2)
    ]
    study("L2 (64KB, 32B blocks)", 1, traces)
    study("L1 (split 4KB, 16B blocks)", 0, traces)
    print(
        "\nReadings: tagged prefetch approaches always-prefetch\n"
        "effectiveness with noticeably less speculative traffic at either\n"
        "level.  L1 prefetching attacks the miss *count* directly (the\n"
        "sequential instruction stream rewards next-block fetch), while L2\n"
        "prefetching leaves the L1 miss ratio alone and instead converts\n"
        "L2 misses -- i.e. it shrinks the paper's L1 miss *penalty*.  Note\n"
        "the bandwidth bill in the memory-reads column: speculation is\n"
        "paid for in exactly the currency (memory operations) that the\n"
        "paper's miss penalty is made of."
    )


if __name__ == "__main__":
    main()
