"""Quickstart: simulate the paper's base machine on a synthetic workload.

Builds the ISCA'89 base two-level system (section 2), runs a small
multiprogramming trace through both the miss-ratio and the timing
simulators, and prints the quantities the paper's analysis revolves
around: the local/global/solo miss-ratio triad, CPI, and the Equation 1
decomposition.

Run with:  python examples/quickstart.py
"""

from repro.analytical import model_from_functional
from repro.core import measure_triad
from repro.experiments import base_machine, build_trace
from repro.sim import simulate_execution_time, simulate_miss_ratios


def main() -> None:
    # A 150k-record multiprogramming trace (three processes plus kernel
    # bursts, like the paper's ATUM captures).
    trace = build_trace("demo", index=0, records=150_000, kernel=True)
    print(f"workload: {trace}")

    config = base_machine()  # 4KB split L1 + 512KB L2, 10ns CPU
    print(f"machine: L1={config.levels[0].size_bytes // 1024}KB split, "
          f"L2={config.levels[1].size_bytes // 1024}KB @ "
          f"{config.levels[1].cycle_cpu_cycles:g} CPU cycles")

    # Functional simulation: miss ratios.
    result = simulate_miss_ratios(trace, config)
    print("\nmiss ratios (reads = loads + instruction fetches):")
    print(f"  L1 global: {result.global_read_miss_ratio(1):.4f}")
    print(f"  L2 local:  {result.local_read_miss_ratio(2):.4f}")
    print(f"  L2 global: {result.global_read_miss_ratio(2):.4f}")
    print(f"  reads reaching L2: {result.traffic_ratio(2) * 100:.1f}% of CPU reads")

    # The section 3 triad needs the solo (L1-removed) run as well.
    triad = measure_triad([trace], config, level=2)
    print(f"  L2 solo:   {triad.solo:.4f}  "
          f"(global deviates {triad.global_solo_gap * 100:.1f}%)")

    # Timing simulation: execution time and its decomposition.
    timing = simulate_execution_time(trace, config)
    print("\nexecution time:")
    print(f"  CPI: {timing.cycles_per_instruction:.3f}")
    print(f"  read stalls:  {timing.read_stall_ns / timing.total_ns * 100:.1f}%")
    print(f"  write stalls: {timing.write_stall_ns / timing.total_ns * 100:.1f}%")

    # Equation 1 from the measured counts.
    model = model_from_functional(result, config)
    print("\nEquation 1 decomposition (CPU cycles per read):")
    print(f"  n_L1 = {model.n_l1_cycles:.1f}")
    print(f"  M_L1 * n_L2 = {model.global_miss[0]:.4f} * "
          f"{model.miss_costs[0]:.0f} = "
          f"{model.global_miss[0] * model.miss_costs[0]:.3f}")
    print(f"  M_L2 * n_MM = {model.global_miss[1]:.4f} * "
          f"{model.miss_costs[1]:.0f} = "
          f"{model.global_miss[1] * model.miss_costs[1]:.3f}")
    print(f"  read CPI from Equation 1: {model.read_cpi:.3f}")


if __name__ == "__main__":
    main()
