"""Build a custom multiprogramming workload and study context-switch cost.

Demonstrates the trace substrate directly: per-process synthetic workloads
with different personalities, a multiprogramming scheduler with kernel
bursts, Dinero-format export for use with external simulators, and a small
study of how the context-switch interval disturbs the L1 miss ratio (the
effect behind the paper's global-vs-solo convergence behaviour).

Run with:  python examples/multiprogramming_workload.py
"""

import tempfile
from pathlib import Path

from repro.experiments import base_machine
from repro.sim import simulate_miss_ratios
from repro.trace import (
    InstructionStreamGenerator,
    MultiprogramScheduler,
    ProcessSpec,
    StackDistanceGenerator,
    SyntheticWorkload,
    TraceStatistics,
    read_dinero,
    write_dinero,
)


def make_process(index: int, personality: str) -> ProcessSpec:
    """Processes with different locality personalities."""
    base = (index + 1) << 44
    if personality == "loopy":
        instructions = InstructionStreamGenerator(
            function_count=128, function_words=64, zipf_alpha=2.0,
            mean_run_length=32.0, address_base=base, seed=index,
        )
        data = StackDistanceGenerator(address_base=base + (1 << 32), seed=index + 50)
    else:  # "streaming": large footprint, weak reuse
        instructions = InstructionStreamGenerator(
            function_count=8192, function_words=64, zipf_alpha=1.1,
            address_base=base, seed=index,
        )
        data = StackDistanceGenerator(
            address_base=base + (1 << 32), new_block_fraction=0.05,
            seed=index + 50,
        )
    return ProcessSpec(
        name=f"{personality}{index}",
        workload=SyntheticWorkload(data=data, instructions=instructions, seed=index),
    )


def main() -> None:
    processes = [
        make_process(0, "loopy"),
        make_process(1, "streaming"),
        make_process(2, "loopy"),
    ]

    print("context-switch interval vs L1 global miss ratio:")
    config = base_machine()
    for interval in (2_000, 10_000, 50_000):
        scheduler = MultiprogramScheduler(
            [make_process(i, "loopy") for i in range(3)],
            switch_interval=interval,
            seed=7,
        )
        trace = scheduler.trace(120_000, name=f"q{interval}", warmup=20_000)
        result = simulate_miss_ratios(trace, config)
        print(
            f"  quantum {interval:>6} refs: "
            f"L1 miss {result.global_read_miss_ratio(1):.4f}, "
            f"L2 global {result.global_read_miss_ratio(2):.4f}"
        )
    print("shorter quanta disturb the caches more -- the multiprogramming")
    print("effect that perturbs small L2s away from their solo miss ratio.\n")

    # Mixed-personality trace with statistics and Dinero round trip.
    scheduler = MultiprogramScheduler(processes, switch_interval=10_000, seed=1)
    trace = scheduler.trace(60_000, name="mixed")
    stats = TraceStatistics.measure(trace)
    print(f"mixed workload: {stats.records} records, "
          f"{stats.unique_blocks} distinct 16B blocks "
          f"({stats.footprint_bytes // 1024} KB footprint)")
    print(f"  data refs per ifetch: {stats.data_ref_per_ifetch:.2f}, "
          f"load fraction: {stats.data_read_fraction:.2f}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "mixed.din"
        write_dinero(trace, path)
        size_kb = path.stat().st_size // 1024
        loaded = read_dinero(path)
        print(f"  Dinero export: {size_kb} KB, {len(loaded)} records round-tripped")


if __name__ == "__main__":
    main()
