"""Three-level hierarchies: the paper's section 6 outlook, explored.

The simulators accept arbitrary depth, so we can ask the paper's questions
one level down: does an L3's global miss ratio track its solo ratio?  How
does a three-level system compare with spending the same silicon on a
bigger L2?  This is the "characteristics of future multi-level cache
hierarchies" the conclusions predict.

Run with:  python examples/three_level.py
"""

from repro.core import measure_triad
from repro.experiments import base_machine, build_trace
from repro.experiments.render import format_size
from repro.sim import TimingSimulator
from repro.sim.config import LevelConfig, SystemConfig
from repro.units import KB


def with_l3(base: SystemConfig, l3_size: int, l3_cycle: float) -> SystemConfig:
    levels = base.levels + (
        LevelConfig(size_bytes=l3_size, block_bytes=32,
                    cycle_cpu_cycles=l3_cycle, write_hit_cycles=2),
    )
    return SystemConfig(
        levels=levels, cpu=base.cpu, memory=base.memory,
        bus_width_words=base.bus_width_words,
        write_buffer_entries=base.write_buffer_entries,
        backplane_cycle_ns=base.backplane_cycle_ns,
    )


def main() -> None:
    traces = [
        build_trace("l3demo", index=i, records=120_000, kernel=i == 0)
        for i in range(2)
    ]

    two_level = base_machine(l2_size=16 * KB)
    print("reference: two-level machine with a 16KB L2")
    base_cycles = sum(
        TimingSimulator(two_level).run(t).total_cycles for t in traces
    )

    print(f"\n{'L3 size':>8} {'L3 cyc':>7} {'vs 2-level':>11} "
          f"{'L3 local':>9} {'L3 global':>10} {'L3 solo':>8}")
    for l3_size, l3_cycle in [
        (128 * KB, 5.0),
        (256 * KB, 6.0),
        (512 * KB, 7.0),
    ]:
        config = with_l3(two_level, l3_size, l3_cycle)
        cycles = sum(
            TimingSimulator(config).run(t).total_cycles for t in traces
        )
        triad = measure_triad(traces, config, level=3)
        print(
            f"{format_size(l3_size):>8} {l3_cycle:>7.0f} "
            f"{cycles / base_cycles:>10.3f}x "
            f"{triad.local:>9.4f} {triad.global_:>10.4f} {triad.solo:>8.4f}"
        )

    print("\nReadings:")
    print(" * the L3 global miss ratio sits close to its solo ratio once the")
    print("   L3 is much larger than L2 -- the paper's layer independence,")
    print("   one level further down;")
    print(" * the L3 local miss ratio is enormous (L1+L2 filter nearly all")
    print("   references), so per Equation 2 the optimal L3 trades cycle")
    print("   time for size and associativity even more aggressively than")
    print("   an L2 does.")


if __name__ == "__main__":
    main()
