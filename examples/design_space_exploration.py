"""Design-space exploration: pick the best L2 under a technology model.

This is the paper's design question made concrete: given how your SRAM's
cycle time grows with size and associativity, which second-level cache
maximises performance?  The script sweeps the (size x cycle time) plane,
prints lines of constant performance with their slopes, and runs the
hierarchy optimiser -- once for the base 4 KB L1 and once for a 16 KB L1 to
show the optimal point moving toward larger-and-slower as the upstream
cache improves.

Run with:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.core import execution_time_grid, lines_of_constant_performance, slope_field
from repro.core.optimizer import HierarchyOptimizer, TechnologyModel
from repro.experiments import base_machine, build_trace
from repro.experiments.render import format_size
from repro.units import KB


def main() -> None:
    traces = [
        build_trace("explore", index=i, records=120_000, kernel=i == 0)
        for i in range(2)
    ]
    sizes = [16 * KB * 2**i for i in range(6)]  # 16KB .. 512KB
    cycle_times = [1.0, 2.0, 3.0, 5.0, 8.0]

    config = base_machine()
    grid = execution_time_grid(traces, config, sizes, cycle_times, level=2)

    print("relative execution time over the (L2 size, cycle time) plane:")
    header = "         " + "".join(f"{format_size(s):>9}" for s in sizes)
    print(header)
    for j, cycle in enumerate(cycle_times):
        row = "".join(f"{grid.relative[i, j]:9.3f}" for i in range(len(sizes)))
        print(f"  c={int(cycle):2d}   {row}")

    lines = lines_of_constant_performance(grid, levels=[1.2, 1.5, 2.0])
    print("\nlines of constant performance (L2 cycle time in CPU cycles):")
    for level in lines.levels:
        cells = [
            "    -" if not np.isfinite(c) else f"{c:5.2f}" for c in lines.line(level)
        ]
        print(f"  {level:.1f}x: {'  '.join(cells)}")

    field = slope_field(grid)
    print("\niso-performance slopes at c=3 (CPU cycles per size doubling):")
    for i in range(len(sizes) - 1):
        print(
            f"  {format_size(sizes[i])} -> {format_size(sizes[i + 1])}: "
            f"{field[i, cycle_times.index(3.0)]:.2f}"
        )

    # The optimiser under an implementation technology: 25ns base SRAM,
    # +4ns per size doubling, +11ns per associativity doubling (the TTL
    # mux of the paper's section 5).
    technology = TechnologyModel(
        base_size=16 * KB, base_ns=25.0, ns_per_doubling=4.0,
        ns_per_way_doubling=11.0,
    )
    print("\nhierarchy optimisation under the technology model:")
    for l1_size in (4 * KB, 16 * KB):
        optimizer = HierarchyOptimizer(
            base_machine(l1_size=l1_size), technology, traces
        )
        best = optimizer.optimize(sizes, set_sizes=(1, 2, 4, 8)).best
        print(
            f"  L1 {format_size(l1_size):>5}: best L2 = "
            f"{format_size(best.l2_size)} {best.l2_associativity}-way @ "
            f"{best.l2_cycle_cpu_cycles:.0f} CPU cycles "
            f"({best.total_cycles:.0f} total cycles)"
        )
    print("\nA better L1 moves the optimum toward larger (and slower) L2 --")
    print("the paper's headline result.")


if __name__ == "__main__":
    main()
