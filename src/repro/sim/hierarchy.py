"""Cache hierarchy wiring and functional access propagation.

:class:`CacheHierarchy` instantiates the caches described by a
:class:`~repro.sim.config.SystemConfig` and routes accesses between levels:

* level 1 may be a split instruction/data pair (the paper's base machine);
  deeper levels are unified;
* a miss at level *i* fetches level-*i* blocks from level *i+1*, so a
  32-byte L2 block fill is a single L2-level event even though L1 blocks
  are 16 bytes;
* dirty victims propagate downstream as writes;
* accesses that reach below the deepest cache are counted against main
  memory.

Fetches triggered by stores (write-allocate) are tagged so they never
pollute the read miss ratios (see :meth:`repro.cache.cache.Cache.read`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.cache import Cache
from repro.sim.config import SystemConfig
from repro.trace.record import IFETCH, WRITE


@dataclass
class MemoryTraffic:
    """Block-level traffic reaching main memory."""

    reads: int = 0
    writes: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0


@dataclass
class InclusionStats:
    """Back-invalidation activity under enforced inclusion."""

    #: Upstream blocks invalidated because a lower level evicted.
    invalidations: int = 0
    #: Of those, blocks that were dirty and had to bypass the evictor.
    dirty_invalidations: int = 0

    def reset(self) -> None:
        self.invalidations = 0
        self.dirty_invalidations = 0


class CacheHierarchy:
    """The functional cache stack of one simulated machine."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        first = config.levels[0]
        if first.split:
            self.icache: Optional[Cache] = self._build(first, "L1I")
            self.dcache = self._build(first, "L1D")
        else:
            self.icache = None
            self.dcache = self._build(first, "L1")
        #: Unified caches below the first level, nearest first.
        self.lower: List[Cache] = [
            self._build(level, f"L{i + 2}")
            for i, level in enumerate(config.levels[1:])
        ]
        self.memory_traffic = MemoryTraffic()
        self.inclusion = InclusionStats()

    @staticmethod
    def _build(level, name: str) -> Cache:
        return Cache(
            geometry=level.geometry(),
            replacement=level.replacement,
            write_policy=level.write_policy,
            fetch=level.fetch_policy(),
            prefetch=level.prefetch_policy(),
            name=name,
        )

    # -- cache enumeration ---------------------------------------------------

    @property
    def level_caches(self) -> List[List[Cache]]:
        """Caches grouped by level (level 1 first)."""
        first = [self.icache, self.dcache] if self.icache else [self.dcache]
        return [first] + [[cache] for cache in self.lower]

    def all_caches(self) -> List[Cache]:
        return [cache for group in self.level_caches for cache in group]

    def set_counting(self, enabled: bool) -> None:
        """Enable/disable statistics in every cache (cold-start handling)."""
        for cache in self.all_caches():
            cache.counting = enabled

    def reset_stats(self) -> None:
        for cache in self.all_caches():
            cache.stats.reset()
        self.memory_traffic.reset()
        self.inclusion.reset()

    # -- access propagation ----------------------------------------------------

    def access(self, kind: int, address: int) -> None:
        """Present one CPU reference to the hierarchy (functional)."""
        if kind == WRITE:
            self._write_at(0, address, first_level=True)
        elif kind == IFETCH and self.icache is not None:
            self._read_into(self.icache, 0, address, bucket="read")
        else:
            self._read_into(self.dcache, 0, address, bucket="read")

    def _cache_at(self, level_index: int) -> Optional[Cache]:
        """The unified cache serving ``level_index`` (0-based), if any."""
        position = level_index - 1
        if 0 <= position < len(self.lower):
            return self.lower[position]
        return None

    def _read_into(
        self, cache: Cache, level_index: int, address: int, bucket: str
    ) -> None:
        outcome = cache.read(address, bucket=bucket)
        self._propagate(level_index, outcome, bucket)

    def _write_at(self, level_index: int, address: int, first_level: bool) -> None:
        if first_level:
            cache = self.dcache
        else:
            cache = self._cache_at(level_index)
            if cache is None:
                if cache_counts(self):
                    self.memory_traffic.writes += 1
                return
        outcome = cache.write(address)
        self._propagate(level_index, outcome, bucket="write")
        if outcome.forwarded_write is not None:
            self._write_at(level_index + 1, outcome.forwarded_write, first_level=False)

    def _propagate(self, level_index: int, outcome, bucket: str) -> None:
        """Send an outcome's downstream traffic to the next level."""
        below = self._cache_at(level_index + 1)
        for victim in outcome.writebacks:
            if below is None:
                if cache_counts(self):
                    self.memory_traffic.writes += 1
            else:
                self._write_at(level_index + 1, victim, first_level=False)
        for fetched in outcome.fetched:
            if below is None:
                if cache_counts(self):
                    self.memory_traffic.reads += 1
            else:
                self._read_into(below, level_index + 1, fetched, bucket)
        # Speculative fills fetch from below too, but always in the
        # prefetch bucket so demand miss ratios stay untouched.
        for speculative in outcome.prefetched:
            if below is None:
                if cache_counts(self):
                    self.memory_traffic.reads += 1
            else:
                self._read_into(below, level_index + 1, speculative, "prefetch")
        if self.config.enforce_inclusion and level_index >= 1:
            for victim in outcome.evicted:
                self.back_invalidate(level_index, victim)

    def back_invalidate(self, level_index: int, victim_address: int) -> None:
        """Drop upstream copies of a block evicted at ``level_index``.

        Dirty upstream data is the only remaining copy, so it is written
        *around* the evicting level, directly to the level below it.
        """
        victim_bytes = self.config.levels[level_index].block_bytes
        groups = self.level_caches
        for upper in range(level_index):
            for cache in groups[upper]:
                step = cache.geometry.block_bytes
                for address in range(
                    victim_address, victim_address + victim_bytes, step
                ):
                    state = cache.invalidate(address)
                    if state == "absent":
                        continue
                    if cache_counts(self):
                        self.inclusion.invalidations += 1
                    if state == "dirty":
                        if cache_counts(self):
                            self.inclusion.dirty_invalidations += 1
                        self._write_at(level_index + 1, address, first_level=False)


def cache_counts(hierarchy: CacheHierarchy) -> bool:
    """Whether statistics collection is currently enabled."""
    return hierarchy.dcache.counting
