"""Hierarchy simulators.

* :mod:`repro.sim.config` -- declarative machine description
  (:class:`~repro.sim.config.SystemConfig`) and a text config parser like
  the paper's simulator input file.
* :mod:`repro.sim.hierarchy` -- builds the cache objects and propagates
  accesses between levels (functional behaviour).
* :mod:`repro.sim.functional` -- miss-ratio simulation (no timing):
  fast sweeps and the local/global/solo metrics of section 3.
* :mod:`repro.sim.timing` -- nanosecond-resolution execution-time
  simulation with write buffers, bus transfers and DRAM recovery: the
  measurement engine behind sections 4 and 5.
"""

from repro.sim.config import (
    CpuConfig,
    LevelConfig,
    SystemConfig,
    format_config,
    parse_config,
)
from repro.sim.fast import FastFunctionalSimulator, fast_eligible, run_functional
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.functional import FunctionalResult, FunctionalSimulator, simulate_miss_ratios
from repro.sim.timing import TimingResult, TimingSimulator, simulate_execution_time

__all__ = [
    "CpuConfig",
    "LevelConfig",
    "SystemConfig",
    "parse_config",
    "format_config",
    "CacheHierarchy",
    "FastFunctionalSimulator",
    "fast_eligible",
    "run_functional",
    "FunctionalSimulator",
    "FunctionalResult",
    "simulate_miss_ratios",
    "TimingSimulator",
    "TimingResult",
    "simulate_execution_time",
]
