"""Functional-result memoisation.

Event counts depend only on a trace and on the *functional* half of a
configuration -- geometry, policies and hierarchy shape.  Timing fields
(cycle times, write-hit latency, memory/bus/backplane speeds, buffer
depth) never change a :class:`~repro.sim.functional.FunctionalResult`.
Timing-only sweeps -- the Figure 4 lines of constant performance, the
Equation 1/2 validations, the optimizer's cycle-time axis -- therefore
need each distinct functional configuration simulated exactly **once**
per trace; this module provides that cache.

Keys are ``(trace fingerprint, functional projection)``:

* :func:`trace_fingerprint` hashes the trace's records, name and warmup
  boundary (cached on ``trace.metadata`` so repeated lookups are free);
* :func:`functional_projection` extracts the count-relevant fields of a
  :class:`~repro.sim.config.SystemConfig` and nothing else.

Cached results are shared, not copied: treat a returned
``FunctionalResult``'s ``level_stats`` as read-only (every consumer in
this repository does).  The cache is per-process; the sweep executor
(:mod:`repro.core.sweep`) consults it before fanning work out and seeds
it with results coming back from worker processes.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro import telemetry
from repro.cache.policy import PrefetchKind
from repro.sim.config import LevelConfig, SystemConfig
from repro.sim.fast import run_functional
from repro.sim.functional import FunctionalResult
from repro.trace.record import Trace
from repro.trace.store import trace_content_digest

#: Metadata slot holding a trace's cached fingerprint.
_FINGERPRINT_SLOT = "_functional_fingerprint"

#: Bound on cached results; a FunctionalResult is a few hundred bytes, so
#: this comfortably covers every sweep in the repository while staying
#: irrelevant memory-wise.
MAX_ENTRIES = 65536


@dataclass
class MemoStats:
    """Observability counters for the memoisation cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


_cache: "OrderedDict[Tuple, FunctionalResult]" = OrderedDict()
_stats = MemoStats()

#: Cumulative counters folded in from worker processes (a subset of
#: ``_stats``): the sweep executor ships each worker's per-chunk memo
#: delta back to the parent so pooled hit ratios stop under-reporting.
_worker_fold = MemoStats()


def trace_fingerprint(trace: Trace) -> str:
    """A stable content hash of a trace's functional identity.

    Computed once and cached in ``trace.metadata``; traces are treated as
    immutable once built (every generator in :mod:`repro.trace` returns a
    finished trace).  The record-content part of the hash is the trace's
    content digest (:func:`repro.trace.store.trace_content_digest`):
    computed in fixed-size chunks -- a memmap-backed store trace is never
    materialised in full -- and *trusted* when the store recorded it at
    save time, making fingerprinting a store-opened trace O(1).
    """
    cached = trace.metadata.get(_FINGERPRINT_SLOT)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    hasher.update(trace.name.encode())
    hasher.update(str(trace.warmup).encode())
    hasher.update(str(len(trace)).encode())
    hasher.update(trace_content_digest(trace).encode())
    fingerprint = hasher.hexdigest()
    trace.metadata[_FINGERPRINT_SLOT] = fingerprint
    return fingerprint


def level_projection(level: LevelConfig) -> Tuple:
    """The count-relevant slice of one cache level, canonicalised.

    Functionally inert field combinations collapse to one canonical
    point: a direct-mapped level's stated replacement policy is dead
    configuration (one way leaves nothing to choose), and so is the
    prefetch distance of a level that never prefetches.  Collapsing
    them here means the memo cache, the sweep executor's grid
    deduplication and the stack-distance grouping
    (:mod:`repro.sim.stackdist`) all treat such configurations as the
    single functional configuration they are -- simulated once, shared
    everywhere.
    """
    return (
        level.size_bytes,
        level.block_bytes,
        level.associativity,
        level.split,
        "lru" if level.associativity == 1 else level.replacement,
        level.write_policy,
        level.fetch_blocks,
        level.write_allocate,
        level.prefetch,
        1 if level.prefetch is PrefetchKind.NONE else level.prefetch_distance,
    )


def functional_projection(config: SystemConfig) -> Tuple:
    """The count-relevant slice of a configuration.

    Two configurations with equal projections produce identical
    functional results on every trace; cycle times, write-hit latencies
    and the memory/bus/buffer model are deliberately excluded, and each
    level is canonicalised through :func:`level_projection`.
    """
    return (
        config.enforce_inclusion,
        tuple(level_projection(level) for level in config.levels),
    )


def timing_projection(config: SystemConfig) -> Tuple:
    """Every field a :class:`~repro.sim.timing.TimingResult` depends on.

    Timing results are a function of the *whole* configuration, so this is
    the functional projection plus all the timing fields.  Used by the
    resilience journal (:mod:`repro.resilience.journal`) to key
    checkpointed timing cells; there is no timing memo cache.
    """
    return (
        functional_projection(config),
        config.cpu.cycle_ns,
        tuple(
            (level.cycle_cpu_cycles, level.write_hit_cycles)
            for level in config.levels
        ),
        (
            config.memory.read_ns,
            config.memory.write_ns,
            config.memory.recovery_ns,
        ),
        config.bus_width_words,
        config.write_buffer_entries,
        config.backplane_cycle_ns,
    )


def memo_key(trace: Trace, config: SystemConfig) -> Tuple:
    """The cache key for one (trace, config) cell."""
    return (trace_fingerprint(trace), functional_projection(config))


def timing_key(trace: Trace, config: SystemConfig) -> Tuple:
    """The journal key for one timing (trace, config) cell."""
    return (trace_fingerprint(trace), timing_projection(config))


def lookup(key: Tuple) -> Optional[FunctionalResult]:
    """Fetch a cached result (counts a hit/miss); ``None`` when absent."""
    result = _cache.get(key)
    if result is None:
        _stats.misses += 1
        telemetry.counter_add("memo.misses")
        return None
    _cache.move_to_end(key)
    _stats.hits += 1
    telemetry.counter_add("memo.hits")
    return result


def peek(key: Tuple) -> Optional[FunctionalResult]:
    """Like :func:`lookup` but without touching the hit/miss counters.

    The sweep executor uses this while *planning* (deduplicating cells
    against the cache); the authoritative lookup accounting happens when
    cells are actually evaluated, wherever that evaluation runs.
    """
    result = _cache.get(key)
    if result is not None:
        _cache.move_to_end(key)
    return result


def stats_snapshot() -> Tuple[int, int, int]:
    """``(hits, misses, evictions)`` right now (cheap, copy-safe)."""
    return (_stats.hits, _stats.misses, _stats.evictions)


def fold_worker_stats(hits: int, misses: int, evictions: int) -> None:
    """Fold a worker process's memo counter delta into this process.

    Worker processes run their own copy of this cache (inherited across
    ``fork``); without folding, manifests recorded under a pooled sweep
    under-report lookups that happened inside workers.

    Deliberately *not* mirrored into telemetry counters: workers ship
    their own ``memo.*`` totals over the telemetry channel
    (:func:`repro.telemetry.drain_worker`), so folding here as well
    would double-count every worker lookup.
    """
    _stats.hits += hits
    _stats.misses += misses
    _stats.evictions += evictions
    _worker_fold.hits += hits
    _worker_fold.misses += misses
    _worker_fold.evictions += evictions


def worker_fold_snapshot() -> Tuple[int, int, int]:
    """Cumulative ``(hits, misses, evictions)`` folded in from workers."""
    return (_worker_fold.hits, _worker_fold.misses, _worker_fold.evictions)


def store(key: Tuple, result: FunctionalResult) -> None:
    """Insert a result, evicting least-recently-used entries past the cap."""
    _cache[key] = result
    _cache.move_to_end(key)
    while len(_cache) > MAX_ENTRIES:
        _cache.popitem(last=False)
        _stats.evictions += 1
        telemetry.counter_add("memo.evictions")
    telemetry.gauge_set("memo.entries", len(_cache))


def run_functional_memo(trace: Trace, config: SystemConfig) -> FunctionalResult:
    """Memoised :func:`~repro.sim.fast.run_functional`.

    The returned result carries the *caller's* ``config`` (the cached one
    may differ in timing-only fields); the count payload is shared with
    the cache and must be treated as read-only.
    """
    key = memo_key(trace, config)
    cached = lookup(key)
    if cached is None:
        cached = run_functional(trace, config)
        store(key, cached)
    if cached.config is config:
        return cached
    return replace(cached, config=config)


def memo_stats() -> MemoStats:
    """The live hit/miss/eviction counters (shared object)."""
    return _stats


def cache_size() -> int:
    """Number of cached functional results."""
    return len(_cache)


def clear_memo_cache(reset_stats: bool = True) -> None:
    """Drop every cached result (and, by default, the counters)."""
    _cache.clear()
    if reset_stats:
        _stats.reset()
        _worker_fold.reset()
