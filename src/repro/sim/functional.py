"""Functional (miss-ratio) simulation.

Runs a trace through a :class:`~repro.sim.hierarchy.CacheHierarchy` counting
hits, misses and traffic, with no notion of time.  This is the engine behind
the section 3 miss-ratio results and behind every sweep that only needs
event counts (execution time is affine in the cycle times given the counts
-- the paper's Equation 1 -- so most of the design-space exploration never
needs the slower timing simulator).

Cold start follows the paper's method: the caches are warmed on the trace's
warmup prefix with statistics collection disabled, so measured ratios
reflect steady-state behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.audit import maybe_audit_functional
from repro.cache.stats import CacheStats
from repro.sim.config import SystemConfig
from repro.sim.hierarchy import CacheHierarchy
from repro.trace.record import IFETCH, WRITE, Trace


@dataclass
class FunctionalResult:
    """Event counts from one functional simulation.

    All counts are post-warmup.  ``level_stats[i]`` aggregates the caches of
    level ``i+1`` (split halves merged).
    """

    trace_name: str
    config: SystemConfig
    #: CPU-issued reads (loads + instruction fetches) measured.
    cpu_reads: int
    #: CPU-issued writes (stores) measured.
    cpu_writes: int
    #: Instruction fetches measured (the base cycle count).
    cpu_ifetches: int
    level_stats: List[CacheStats]
    memory_reads: int
    memory_writes: int

    @property
    def depth(self) -> int:
        return len(self.level_stats)

    def _check_level(self, level: int) -> None:
        # Python's negative indexing would otherwise make level=0 silently
        # report the deepest level's statistics.
        if not 1 <= level <= len(self.level_stats):
            raise ValueError(
                f"level must be in 1..{len(self.level_stats)}, got {level}"
            )

    def local_read_miss_ratio(self, level: int) -> float:
        """Misses over reads *arriving at* ``level`` (1-based)."""
        self._check_level(level)
        return self.level_stats[level - 1].read_miss_ratio

    def global_read_miss_ratio(self, level: int) -> float:
        """Misses at ``level`` (1-based) over CPU reads (paper, section 2)."""
        self._check_level(level)
        if self.cpu_reads == 0:
            return 0.0
        return self.level_stats[level - 1].read_misses / self.cpu_reads

    def traffic_ratio(self, level: int) -> float:
        """Reads reaching ``level`` as a fraction of CPU reads: how strongly
        the upstream caches filter the reference stream."""
        self._check_level(level)
        if self.cpu_reads == 0:
            return 0.0
        return self.level_stats[level - 1].reads / self.cpu_reads


class FunctionalSimulator:
    """Runs traces against a machine configuration, counting events."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config

    def run(self, trace: Trace) -> FunctionalResult:
        """Simulate ``trace`` and return post-warmup counts."""
        hierarchy = CacheHierarchy(self.config)
        access = hierarchy.access
        warmup = trace.warmup
        records = trace.records()
        if warmup:
            hierarchy.set_counting(False)
            for _ in range(warmup):
                kind, address = next(records)
                access(kind, address)
            hierarchy.set_counting(True)
        for kind, address in records:
            access(kind, address)

        measured_kinds = trace.kinds[warmup:]
        cpu_writes = int(np.count_nonzero(measured_kinds == WRITE))
        cpu_reads = int(measured_kinds.size) - cpu_writes
        cpu_ifetches = int(np.count_nonzero(measured_kinds == IFETCH))
        level_stats = []
        for group in hierarchy.level_caches:
            merged = CacheStats()
            for cache in group:
                merged = merged.merge(cache.stats)
            level_stats.append(merged)
        result = FunctionalResult(
            trace_name=trace.name,
            config=self.config,
            cpu_reads=cpu_reads,
            cpu_writes=cpu_writes,
            cpu_ifetches=cpu_ifetches,
            level_stats=level_stats,
            memory_reads=hierarchy.memory_traffic.reads,
            memory_writes=hierarchy.memory_traffic.writes,
        )
        # Audit gates on an env flag but only validates-and-raises; it
        # never alters the result, so memo keys need not include it.
        return maybe_audit_functional(trace, result, source="reference")  # repro: noqa RPR008


def simulate_miss_ratios(trace: Trace, config: SystemConfig) -> FunctionalResult:
    """One-shot convenience wrapper around :class:`FunctionalSimulator`."""
    return FunctionalSimulator(config).run(trace)
