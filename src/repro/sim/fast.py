"""Vectorised functional simulation for write-back LRU hierarchies.

Two NumPy kernels cover the paper's sweep axes:

* **Direct-mapped** (:func:`_simulate_dm_level`): a direct-mapped cache
  has a delightfully vectorisable property -- an access hits exactly when
  the *previous access to the same set* carried the same tag.  Sorting the
  reference stream stably by set index turns hit detection, dirty tracking
  and eviction detection into array operations.

* **Set-associative LRU** (:func:`_simulate_lru_level`): a Mattson-style
  per-set stack kernel.  Accesses are bucketed by set and replayed in
  per-set time order; every set's *t*-th access is processed in one
  vectorised step over a ``(sets_touched, associativity)`` LRU state, so
  the Python-level loop length is the deepest per-set access count rather
  than the trace length.  This puts the Figure 5 / Equation 3 associativity
  sweeps on the fast path.

Together they make this simulator one to two orders of magnitude faster
than the reference per-record loop -- fast enough for the paper's full
4 KB - 4 MB axis at million-reference trace lengths.

Scope: write-back LRU levels of associativity 1-16 with write-allocate,
single-block fetch, no prefetching, no enforced inclusion -- the base
machine and every Figure 3/4/5 variation of it.  Anything else falls
outside :func:`fast_eligible` and uses the reference
:class:`~repro.sim.functional.FunctionalSimulator`; the two are validated
to produce *identical* counts on eligible configurations
(``tests/sim/test_fast.py``).  The eligibility matrix is documented in
``docs/performance.md``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.audit import maybe_audit_functional
from repro.cache.policy import PrefetchKind, WritePolicy
from repro.cache.stats import CacheStats
from repro.sim.config import SystemConfig
from repro.sim.functional import FunctionalResult
from repro.trace.record import IFETCH, WRITE, Trace
from repro.trace.store import replay_chunk_records
from repro.units import log2_int

#: Event-bucket codes inside the vectorised pipeline.
_BUCKET_READ = 0
_BUCKET_WRITE = 1

#: Largest set size the vectorised LRU kernel accepts.  The kernel is
#: exact for any associativity, but beyond this the per-step state
#: matrices stop paying for themselves against the reference loop.
MAX_FAST_ASSOCIATIVITY = 16


def fast_eligible(config: SystemConfig) -> bool:
    """True when the vectorised path reproduces the reference simulator."""
    if config.enforce_inclusion:
        return False
    for level in config.levels:
        if not 1 <= level.associativity <= MAX_FAST_ASSOCIATIVITY:
            return False
        if level.associativity > 1 and level.replacement != "lru":
            return False
        if level.write_policy is not WritePolicy.WRITE_BACK:
            return False
        if not level.write_allocate or level.fetch_blocks != 1:
            return False
        if level.prefetch is not PrefetchKind.NONE:
            return False
    return True


def _simulate_dm_level(
    blocks: np.ndarray,
    is_write: np.ndarray,
    order_keys: np.ndarray,
    sets: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One direct-mapped write-back level, fully vectorised.

    ``blocks`` are block identifiers (byte address >> offset bits);
    ``is_write`` marks accesses that dirty the block; ``order_keys`` is a
    strictly increasing key per access (original record index scaled to
    make room for same-record ordering).

    Returns ``(miss_mask, victim_blocks, victim_keys)`` where the victims
    are dirty evictions, each stamped with the order key of the evicting
    miss (so downstream streams interleave correctly).
    """
    n = len(blocks)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return np.zeros(0, dtype=bool), empty, empty
    set_index = blocks & (sets - 1)
    # Stable sort by set: within a set, accesses stay in time order.
    order = np.argsort(set_index, kind="stable")
    sorted_sets = set_index[order]
    sorted_blocks = blocks[order]
    same_set = np.empty(n, dtype=bool)
    same_set[0] = False
    np.equal(sorted_sets[1:], sorted_sets[:-1], out=same_set[1:])
    same_block = np.empty(n, dtype=bool)
    same_block[0] = False
    np.equal(sorted_blocks[1:], sorted_blocks[:-1], out=same_block[1:])
    hit_sorted = same_set & same_block
    miss_sorted = ~hit_sorted

    # Residency episodes: one per miss; an episode covers the accesses from
    # its miss up to (not including) the next miss in the same set.
    episode = np.cumsum(miss_sorted) - 1
    n_episodes = int(episode[-1]) + 1
    dirty = np.zeros(n_episodes, dtype=bool)
    writes_sorted = is_write[order]
    np.logical_or.at(dirty, episode, writes_sorted)

    miss_positions = np.flatnonzero(miss_sorted)
    # Episode e is evicted by the next miss iff that miss lands in the same
    # set (episodes are contiguous per set: a set change always misses).
    evicted = np.zeros(n_episodes, dtype=bool)
    if n_episodes > 1:
        evicted[:-1] = (
            sorted_sets[miss_positions[1:]] == sorted_sets[miss_positions[:-1]]
        )
    victims = dirty & evicted
    victim_blocks = sorted_blocks[miss_positions[np.flatnonzero(victims)]]
    # The writeback happens when the *next* episode's miss occurs.
    evictor_positions = miss_positions[np.flatnonzero(victims) + 1]
    victim_keys = order_keys[order][evictor_positions]

    miss_mask = np.zeros(n, dtype=bool)
    miss_mask[order] = miss_sorted
    return miss_mask, victim_blocks.astype(np.int64), victim_keys


def _simulate_lru_level(
    blocks: np.ndarray,
    is_write: np.ndarray,
    order_keys: np.ndarray,
    sets: int,
    associativity: int,
    state: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One set-associative write-back LRU level, vectorised across sets.

    A Mattson-style per-set stack kernel: accesses are bucketed by set and
    replayed in per-set time order.  Step ``t`` processes the ``t``-th
    access of *every* touched set in one vectorised operation over a
    ``(sets_touched, associativity)`` LRU state (way 0 = most recently
    used, ``-1`` = invalid), so the Python loop runs for the deepest
    per-set access count, not the stream length.

    ``state`` supports chunked streaming replay: pass a persistent
    ``(tags, dirty)`` pair of shape ``(sets, associativity)`` (see
    :func:`_new_level_state`) and the kernel starts from it and updates
    it in place, so feeding a stream in pieces produces the same counts
    as feeding it whole.  Without ``state`` the level starts cold on a
    compact touched-sets-only matrix.

    Same contract as :func:`_simulate_dm_level`: returns
    ``(miss_mask, victim_blocks, victim_keys)`` with dirty victims stamped
    with the order key of the evicting miss.
    """
    n = len(blocks)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return np.zeros(0, dtype=bool), empty, empty
    set_index = blocks & (sets - 1)
    # Stable sort by set: within a set, accesses stay in time order.
    set_order = np.argsort(set_index, kind="stable")
    sorted_sets = set_index[set_order]
    # Compact set ranks and each access's per-set sequence number.
    new_set = np.empty(n, dtype=bool)
    new_set[0] = True
    np.not_equal(sorted_sets[1:], sorted_sets[:-1], out=new_set[1:])
    set_rank = np.cumsum(new_set) - 1
    starts = np.flatnonzero(new_set)
    seq = np.arange(n, dtype=np.int64)
    seq -= np.repeat(starts, np.diff(np.append(starts, n)))
    # Re-sort by (sequence number, set rank): step t's accesses form one
    # contiguous slice, one access per set, ordered by set rank.
    step_order = np.argsort(seq, kind="stable")
    blocks_s = blocks[set_order][step_order]
    write_s = is_write[set_order][step_order]
    keys_s = order_keys[set_order][step_order]
    step_starts = np.append(0, np.cumsum(np.bincount(seq)))

    ways = np.arange(associativity)
    if state is None:
        # Compact state: rows are touched-set ranks.
        touched = int(set_rank[-1]) + 1
        tags = np.full((touched, associativity), -1, dtype=np.int64)
        dirty = np.zeros((touched, associativity), dtype=bool)
        rank_s = set_rank[step_order]
    else:
        # Persistent state: rows are actual set indices, carried between
        # calls.
        tags, dirty = state
        rank_s = sorted_sets[step_order]
    miss_s = np.empty(n, dtype=bool)
    victim_parts: List[np.ndarray] = []
    victim_key_parts: List[np.ndarray] = []
    for t in range(len(step_starts) - 1):
        lo, hi = int(step_starts[t]), int(step_starts[t + 1])
        rows = rank_s[lo:hi]
        block = blocks_s[lo:hi]
        write = write_s[lo:hi]
        row_tags = tags[rows]
        row_dirty = dirty[rows]
        match = row_tags == block[:, None]
        hit = match.any(axis=1)
        hit_way = np.argmax(match, axis=1)
        miss_s[lo:hi] = ~hit
        # A miss evicts the LRU way; a dirty valid victim is written back,
        # stamped with the evicting access's key.
        victim_tag = row_tags[:, -1]
        writeback = ~hit & (victim_tag >= 0) & row_dirty[:, -1]
        if writeback.any():
            victim_parts.append(victim_tag[writeback])
            victim_key_parts.append(keys_s[lo:hi][writeback])
        # Promote the block to way 0, shifting ways [0, pos) right by one
        # (pos = hit way, or the LRU way on a miss).  Fetches enter clean
        # and are dirtied in place by a store (write-allocate).
        pos = np.where(hit, hit_way, associativity - 1)
        head_dirty = write | (hit & row_dirty[np.arange(len(rows)), hit_way])
        rolled_tags = np.concatenate([block[:, None], row_tags[:, :-1]], axis=1)
        rolled_dirty = np.concatenate(
            [head_dirty[:, None], row_dirty[:, :-1]], axis=1
        )
        shifted = ways[None, :] <= pos[:, None]
        tags[rows] = np.where(shifted, rolled_tags, row_tags)
        dirty[rows] = np.where(shifted, rolled_dirty, row_dirty)

    miss_mask = np.empty(n, dtype=bool)
    miss_mask[set_order[step_order]] = miss_s
    if victim_parts:
        victim_blocks = np.concatenate(victim_parts)
        victim_keys = np.concatenate(victim_key_parts)
    else:
        victim_blocks = np.empty(0, dtype=np.int64)
        victim_keys = np.empty(0, dtype=np.int64)
    return miss_mask, victim_blocks.astype(np.int64), victim_keys


def _simulate_level(
    blocks: np.ndarray,
    is_write: np.ndarray,
    order_keys: np.ndarray,
    sets: int,
    associativity: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dispatch one level to the cheapest exact kernel."""
    if associativity == 1:
        return _simulate_dm_level(blocks, is_write, order_keys, sets)
    return _simulate_lru_level(blocks, is_write, order_keys, sets, associativity)


def _merge_parts(parts) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate event fragments and sort them into time order."""
    blocks = np.concatenate([p[0] for p in parts])
    writes = np.concatenate([p[1] for p in parts])
    buckets = np.concatenate([p[2] for p in parts])
    keys = np.concatenate([p[3] for p in parts])
    order = np.argsort(keys, kind="stable")
    return blocks[order], writes[order], buckets[order], keys[order]


def _accumulate_level(
    stats: CacheStats,
    is_write: np.ndarray,
    bucket: np.ndarray,
    miss: np.ndarray,
    keys: np.ndarray,
    victim_keys: np.ndarray,
    warmup_key: int,
) -> None:
    """Fold one level's kernel outputs into its post-warmup counters."""
    counted = keys >= warmup_key
    read_bucket = bucket == _BUCKET_READ
    stats.reads += int(np.count_nonzero(counted & read_bucket))
    stats.read_misses += int(np.count_nonzero(counted & read_bucket & miss))
    stats.writes += int(np.count_nonzero(counted & ~read_bucket))
    stats.write_misses += int(np.count_nonzero(counted & ~read_bucket & miss))
    stats.blocks_fetched += int(np.count_nonzero(counted & miss))
    stats.writebacks += int(np.count_nonzero(victim_keys >= warmup_key))


def _level_zero_streams(
    trace: Trace, config: SystemConfig, key_offset: int = 0
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Bucket the CPU reference stream into the first level's inputs.

    Each stream is ``(blocks, is_write, bucket, keys)`` with blocks at
    the first level's granularity; a split level gets its I-side and
    D-side streams separately.  Order keys: level-0 events carry the
    record index; each level's outputs use ``key*4 + {1: victim
    writeback, 2: demand fetch}``, so a stream entering level ``i`` has
    keys scaled by ``4**i`` and the original record index is
    ``key // 4**i``.  ``key_offset`` shifts the record indices -- chunked
    replay passes each chunk's start so keys stay global (and strictly
    increasing across chunks).
    """
    kinds = trace.kinds
    keys = np.arange(key_offset, key_offset + len(trace), dtype=np.int64)
    addresses = trace.addresses.astype(np.int64)
    is_write = kinds == WRITE
    bucket = np.where(is_write, _BUCKET_WRITE, _BUCKET_READ).astype(np.int8)
    first = config.levels[0]
    blocks = addresses >> log2_int(first.block_bytes)
    if first.split:
        is_ifetch = kinds == IFETCH
        return [
            (blocks[is_ifetch], is_write[is_ifetch], bucket[is_ifetch],
             keys[is_ifetch]),
            (blocks[~is_ifetch], is_write[~is_ifetch], bucket[~is_ifetch],
             keys[~is_ifetch]),
        ]
    return [(blocks, is_write, bucket, keys)]


def _simulate_front(
    trace: Trace, config: SystemConfig, levels: int
) -> Tuple[List[CacheStats], Tuple, int]:
    """Simulate the first ``levels`` cache levels (``1 <= levels <= depth``).

    Returns ``(level_stats, stream, offset_bits)``: the per-level
    post-warmup counters, the merged event stream leaving level
    ``levels - 1`` (blocks at that level's granularity, keys scaled by
    ``4**levels``) and that level's block-offset bit count.  The stream
    is what enters level ``levels`` -- or memory, when ``levels`` is the
    full depth.
    """
    warmup = trace.warmup
    first = config.levels[0]
    first_geometry = first.geometry()
    level_stats: List[CacheStats] = []
    stats = CacheStats()
    parts = []
    for s_blocks, s_write, s_bucket, s_keys in _level_zero_streams(trace, config):
        miss, victims, victim_keys = _simulate_level(
            s_blocks, s_write, s_keys,
            first_geometry.sets, first.associativity,
        )
        _accumulate_level(
            stats, s_write, s_bucket, miss, s_keys, victim_keys, warmup
        )
        parts.append(
            (
                victims,
                np.ones(len(victims), dtype=bool),
                np.full(len(victims), _BUCKET_WRITE, dtype=np.int8),
                victim_keys * 4 + 1,
            )
        )
        parts.append(
            (
                s_blocks[miss],
                np.zeros(int(miss.sum()), dtype=bool),
                s_bucket[miss],
                s_keys[miss] * 4 + 2,
            )
        )
    level_stats.append(stats)
    stream = _merge_parts(parts)

    prev_offset = log2_int(first.block_bytes)
    for depth_index in range(1, levels):
        level = config.levels[depth_index]
        offset_bits = log2_int(level.block_bytes)
        if offset_bits < prev_offset:
            raise ValueError(
                "deeper levels must have blocks at least as large as "
                "their predecessor's"
            )
        stream_blocks, stream_write, stream_bucket, stream_keys = stream
        blocks_here = stream_blocks >> (offset_bits - prev_offset)
        warmup_key = warmup * 4**depth_index
        miss, victims, victim_keys = _simulate_level(
            blocks_here, stream_write, stream_keys,
            level.geometry().sets, level.associativity,
        )
        stats = CacheStats()
        _accumulate_level(
            stats, stream_write, stream_bucket, miss, stream_keys,
            victim_keys, warmup_key,
        )
        level_stats.append(stats)
        # Demand fetches always enter the next level as *reads*: the
        # fetched block arrives clean (write-allocate dirties it in the
        # receiving cache, not downstream), so the fetch never carries
        # the missing access's write flag.  The statistics bucket still
        # tracks the originating access so store-induced traffic stays
        # out of the read miss ratios.
        clean_fetch = np.zeros(int(miss.sum()), dtype=bool)
        parts = [
            (
                victims,
                np.ones(len(victims), dtype=bool),
                np.full(len(victims), _BUCKET_WRITE, dtype=np.int8),
                victim_keys * 4 + 1,
            ),
            (
                blocks_here[miss],
                clean_fetch,
                stream_bucket[miss],
                stream_keys[miss] * 4 + 2,
            ),
        ]
        stream = _merge_parts(parts)
        prev_offset = offset_bits
    return level_stats, stream, prev_offset


def _new_level_state(
    sets: int, associativity: int
) -> Tuple[np.ndarray, np.ndarray]:
    """A cold persistent ``(tags, dirty)`` state for one cache level."""
    return (
        np.full((sets, associativity), -1, dtype=np.int64),
        np.zeros((sets, associativity), dtype=bool),
    )


class _ChunkedFront:
    """Stream a trace through the first ``levels`` cache levels in chunks.

    The chunked counterpart of :func:`_simulate_front`: each level keeps a
    persistent ``(sets, associativity)`` state between chunks (a
    direct-mapped level runs as 1-way LRU, which is the same cache), so
    counts are identical to whole-array replay while peak residency is
    bounded by one chunk's event arrays plus the level states.  Iterating
    :meth:`streams` drives the replay; per-level counters accumulate into
    ``level_stats`` and each iteration yields the merged event stream
    leaving the deepest simulated level for that chunk (keys global,
    scaled by ``4**levels``).
    """

    def __init__(
        self,
        trace: Trace,
        config: SystemConfig,
        levels: int,
        chunk_records: int,
    ) -> None:
        if chunk_records <= 0:
            raise ValueError(
                f"chunk size must be positive, got {chunk_records}"
            )
        self.trace = trace
        self.config = config
        self.levels = levels
        self.chunk_records = chunk_records
        first = config.levels[0]
        first_geometry = first.geometry()
        self._zero_states = [
            _new_level_state(first_geometry.sets, first.associativity)
            for _ in range(2 if first.split else 1)
        ]
        self._deep_states = [
            _new_level_state(
                config.levels[i].geometry().sets,
                config.levels[i].associativity,
            )
            for i in range(1, levels)
        ]
        self.level_stats = [CacheStats() for _ in range(levels)]

    def streams(self) -> Iterator[Tuple]:
        config = self.config
        warmup = self.trace.warmup
        first = config.levels[0]
        first_geometry = first.geometry()
        for index, chunk in enumerate(self.trace.chunks(self.chunk_records)):
            # The span closes before the yield: it times this chunk's
            # level simulation, not whatever the consumer does with the
            # stream (the deepest-level pass times itself).
            with telemetry.span("fast.chunk", index=index, records=len(chunk)):
                base = index * self.chunk_records
                parts = []
                zero_streams = _level_zero_streams(
                    chunk, config, key_offset=base
                )
                for side, (s_blocks, s_write, s_bucket, s_keys) in enumerate(
                    zero_streams
                ):
                    miss, victims, victim_keys = _simulate_lru_level(
                        s_blocks, s_write, s_keys,
                        first_geometry.sets, first.associativity,
                        state=self._zero_states[side],
                    )
                    _accumulate_level(
                        self.level_stats[0], s_write, s_bucket, miss, s_keys,
                        victim_keys, warmup,
                    )
                    parts.append(
                        (
                            victims,
                            np.ones(len(victims), dtype=bool),
                            np.full(len(victims), _BUCKET_WRITE, dtype=np.int8),
                            victim_keys * 4 + 1,
                        )
                    )
                    parts.append(
                        (
                            s_blocks[miss],
                            np.zeros(int(miss.sum()), dtype=bool),
                            s_bucket[miss],
                            s_keys[miss] * 4 + 2,
                        )
                    )
                stream = _merge_parts(parts)

                prev_offset = log2_int(first.block_bytes)
                for depth_index in range(1, self.levels):
                    level = config.levels[depth_index]
                    offset_bits = log2_int(level.block_bytes)
                    if offset_bits < prev_offset:
                        raise ValueError(
                            "deeper levels must have blocks at least as large "
                            "as their predecessor's"
                        )
                    stream_blocks, stream_write, stream_bucket, stream_keys = (
                        stream
                    )
                    blocks_here = stream_blocks >> (offset_bits - prev_offset)
                    warmup_key = warmup * 4**depth_index
                    miss, victims, victim_keys = _simulate_lru_level(
                        blocks_here, stream_write, stream_keys,
                        level.geometry().sets, level.associativity,
                        state=self._deep_states[depth_index - 1],
                    )
                    _accumulate_level(
                        self.level_stats[depth_index], stream_write,
                        stream_bucket, miss, stream_keys, victim_keys,
                        warmup_key,
                    )
                    # Demand fetches enter the next level as clean reads
                    # (see _simulate_front).
                    parts = [
                        (
                            victims,
                            np.ones(len(victims), dtype=bool),
                            np.full(len(victims), _BUCKET_WRITE, dtype=np.int8),
                            victim_keys * 4 + 1,
                        ),
                        (
                            blocks_here[miss],
                            np.zeros(int(miss.sum()), dtype=bool),
                            stream_bucket[miss],
                            stream_keys[miss] * 4 + 2,
                        ),
                    ]
                    stream = _merge_parts(parts)
                    prev_offset = offset_bits
            yield stream


def run_functional_chunked(
    trace: Trace, config: SystemConfig, chunk_records: int
) -> FunctionalResult:
    """Chunked streaming counterpart of :class:`FastFunctionalSimulator`.

    Replays the trace ``chunk_records`` records at a time through
    persistent per-level cache state.  Counts are identical to
    whole-array replay (``tests/sim/test_chunked_replay.py`` holds the
    differential contract); peak residency is bounded per chunk, which
    is what lets memmap-backed store traces run without ever
    materialising in full.
    """
    if not fast_eligible(config):
        raise ValueError(
            "configuration outside the vectorised path; chunked replay "
            "requires fast eligibility"
        )
    if not trace_eligible(trace):
        raise ValueError("trace outside the vectorised path (addresses >= 2**63)")
    front = _ChunkedFront(trace, config, config.depth, chunk_records)
    threshold = trace.warmup * 4**config.depth
    memory_reads = 0
    memory_writes = 0
    with telemetry.span("fast.run", records=len(trace), chunked=True):
        for stream in front.streams():
            _, stream_write, _, stream_keys = stream
            counted = stream_keys >= threshold
            memory_writes += int(np.count_nonzero(counted & stream_write))
            memory_reads += int(np.count_nonzero(counted & ~stream_write))

    measured_kinds = trace.kinds[trace.warmup:]
    cpu_writes = int(np.count_nonzero(measured_kinds == WRITE))
    cpu_reads = int(measured_kinds.size) - cpu_writes
    cpu_ifetches = int(np.count_nonzero(measured_kinds == IFETCH))
    result = FunctionalResult(
        trace_name=trace.name,
        config=config,
        cpu_reads=cpu_reads,
        cpu_writes=cpu_writes,
        cpu_ifetches=cpu_ifetches,
        level_stats=front.level_stats,
        memory_reads=memory_reads,
        memory_writes=memory_writes,
    )
    # Audit gates on an env flag but only validates-and-raises; it never
    # alters the result, so memo keys need not include it.
    return maybe_audit_functional(trace, result, source="fast-chunked")  # repro: noqa RPR008


class FastFunctionalSimulator:
    """Drop-in counterpart of the reference functional simulator.

    Produces a :class:`~repro.sim.functional.FunctionalResult` with counts
    identical to the reference implementation on eligible configurations.
    """

    def __init__(self, config: SystemConfig) -> None:
        if not fast_eligible(config):
            raise ValueError(
                "configuration outside the vectorised path "
                "(write-back LRU, associativity <= "
                f"{MAX_FAST_ASSOCIATIVITY}, no prefetch/inclusion); use "
                "FunctionalSimulator"
            )
        self.config = config

    def run(self, trace: Trace) -> FunctionalResult:
        config = self.config
        warmup = trace.warmup
        kinds = trace.kinds
        with telemetry.span("fast.run", records=len(trace)):
            level_stats, stream, _ = _simulate_front(trace, config, config.depth)

        # Memory traffic: whatever leaves the deepest level, post-warmup.
        # Writes are the deepest victims; reads are the demand fetches.
        stream_blocks, stream_write, stream_bucket, stream_keys = stream
        counted = stream_keys >= warmup * 4**config.depth
        memory_writes = int(np.count_nonzero(counted & stream_write))
        memory_reads = int(np.count_nonzero(counted & ~stream_write))

        measured_kinds = kinds[warmup:]
        cpu_writes = int(np.count_nonzero(measured_kinds == WRITE))
        cpu_reads = int(measured_kinds.size) - cpu_writes
        cpu_ifetches = int(np.count_nonzero(measured_kinds == IFETCH))
        result = FunctionalResult(
            trace_name=trace.name,
            config=config,
            cpu_reads=cpu_reads,
            cpu_writes=cpu_writes,
            cpu_ifetches=cpu_ifetches,
            level_stats=level_stats,
            memory_reads=memory_reads,
            memory_writes=memory_writes,
        )
        # Validate-and-raise only; results are unchanged (see above).
        return maybe_audit_functional(trace, result, source="fast-path")  # repro: noqa RPR008


def trace_eligible(trace: Trace) -> bool:
    """The vectorised path works in signed 64-bit block arithmetic, so
    addresses must stay below 2**63 (every realistic trace does)."""
    return len(trace) == 0 or int(trace.addresses.max()) < 2**63


def run_functional(trace: Trace, config: SystemConfig) -> FunctionalResult:
    """Run a functional simulation on the fastest correct engine.

    Dispatches to the vectorised simulator when the configuration and the
    trace are eligible, otherwise to the reference implementation.  With
    ``REPRO_TRACE_CHUNK`` set (and smaller than the trace), the eligible
    path streams the trace in chunks instead -- same counts, bounded
    residency.
    """
    if fast_eligible(config) and trace_eligible(trace):
        # Chunked replay is count-identical to the one-shot run (parity
        # tests); REPRO_TRACE_CHUNK tunes residency, never the results.
        chunk = replay_chunk_records()  # repro: noqa RPR008
        if chunk is not None and chunk < len(trace):
            return run_functional_chunked(trace, config, chunk)
        return FastFunctionalSimulator(config).run(trace)
    from repro.sim.functional import FunctionalSimulator

    return FunctionalSimulator(config).run(trace)
