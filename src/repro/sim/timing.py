"""Nanosecond-resolution execution-time simulation.

This is the measurement engine behind the paper's sections 4 and 5: it
tracks time through the whole hierarchy -- cache cycle times, write-buffer
drains, bus transfers and DRAM recovery -- and reports total execution time
and its decomposition.

Machine model (paper, section 2)
--------------------------------

* The CPU executes one instruction fetch and at most one data access per
  non-stall cycle; total time = cycles * cycle time, where the cycle count
  is the number of instruction fetches plus stall cycles.
* A read that hits in L1 costs nothing beyond the base cycle.  A read that
  misses stalls the CPU until the whole L1 block arrives; if it hits in L2
  that takes one L2 cycle (the 4-word bus returns the block within it), the
  nominal 3-CPU-cycle penalty of the base machine.
* An L2 miss stalls the CPU until the entire L2 block arrives from memory:
  one backplane cycle for the address, the DRAM read, and two backplane
  data cycles -- 270 ns nominally, more when the DRAM recovery window or
  pending write traffic intervenes.
* Write hits occupy the data cache for ``write_hit_cycles``; the CPU does
  not stall unless the next data access arrives while the cache is busy.
* Dirty victims are pushed into the 4-entry inter-level write buffers and
  drain while the downstream level is idle.  A full buffer stalls the miss
  that caused the eviction; a read matching a buffered entry drains the
  buffer up to the match first.

Modelling approximations (documented in DESIGN.md section 6): buffered
writes are applied to the downstream cache *functionally* at push time
(their timing cost is paid at drain time); the drain service time of the
memory-side buffer folds in the DRAM write and recovery windows rather than
re-entering the DRAM state machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.audit import maybe_audit_timing
from repro.cache.cache import Cache
from repro.cache.stats import CacheStats
from repro.cache.write_buffer import WriteBuffer
from repro.memory.bus import Bus
from repro.memory.main_memory import MainMemory
from repro.sim.config import SystemConfig
from repro.sim.hierarchy import CacheHierarchy
from repro.trace.record import IFETCH, WRITE, Trace


@dataclass
class TimingResult:
    """Execution-time measurement for one trace on one machine."""

    trace_name: str
    config: SystemConfig
    #: Post-warmup counts.
    instructions: int
    cpu_reads: int
    cpu_writes: int
    #: Total simulated time (ns) for the measured region, including the
    #: end-of-trace drain of the inter-level write buffers.
    total_ns: float
    #: Stall decomposition in nanoseconds.  ``total_ns`` is exactly
    #: ``base_ns + read_stall_ns + write_stall_ns`` (audited in
    #: :mod:`repro.audit.invariants`); the end-of-trace buffer drain is
    #: folded into ``write_stall_ns``.
    read_stall_ns: float
    write_stall_ns: float
    level_stats: List[CacheStats]
    memory_reads: int
    memory_writes: int
    #: Write-buffer statistics per boundary (L1->L2 first).
    buffer_full_stalls: List[int]
    buffer_read_matches: List[int]
    #: Non-stall time (ns): instruction-fetch base cycles plus data-read
    #: hit costs.  Kept last with a default so older call sites that build
    #: results positionally keep working.
    base_ns: float = 0.0

    @property
    def total_cycles(self) -> float:
        """Total CPU cycles (time over the CPU cycle time)."""
        return self.total_ns / self.config.cpu.cycle_ns

    @property
    def cycles_per_instruction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.total_cycles / self.instructions

    def global_read_miss_ratio(self, level: int) -> float:
        """Misses at ``level`` (1-based) over CPU reads (paper, section 2)."""
        if not 1 <= level <= len(self.level_stats):
            raise ValueError(
                f"level must be in 1..{len(self.level_stats)}, got {level}"
            )
        if self.cpu_reads == 0:
            return 0.0
        return self.level_stats[level - 1].read_misses / self.cpu_reads

    def relative_to(self, reference: "TimingResult") -> float:
        """Execution time relative to ``reference`` (same trace)."""
        if reference.total_ns == 0:
            raise ValueError("reference execution time is zero")
        return self.total_ns / reference.total_ns


class TimingSimulator:
    """Trace-driven timing simulation of a configured machine."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config

    def run(self, trace: Trace) -> TimingResult:
        engine = _TimingEngine(self.config)
        return engine.run(trace)


def simulate_execution_time(trace: Trace, config: SystemConfig) -> TimingResult:
    """One-shot convenience wrapper around :class:`TimingSimulator`."""
    return TimingSimulator(config).run(trace)


class _TimingEngine:
    """Mutable state of one timing run (one engine per run)."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.hierarchy = CacheHierarchy(config)
        self.cpu_cycle = config.cpu.cycle_ns
        self.lower: List[Cache] = self.hierarchy.lower
        depth = config.depth
        #: Cycle time (ns) per configured level.
        self.level_cycle = [config.level_cycle_ns(i) for i in range(depth)]
        #: Block size per configured level.
        self.level_block = [config.levels[i].block_bytes for i in range(depth)]
        #: Busy-until time for each lower level (demand service occupancy).
        self.level_busy = [0.0] * len(self.lower)
        # The backplane runs at the deepest cache's cycle time unless the
        # configuration pins it (the paper's sweeps hold the memory access
        # portion of the miss penalty constant).
        self.memory_bus = Bus(
            width_words=config.bus_width_words,
            cycle_ns=config.effective_backplane_ns,
        )
        self.memory = MainMemory(config.memory)
        # buffers[i] sits between level i and level i+1 (0-based); the last
        # buffer feeds main memory.
        self.buffers: List[WriteBuffer] = []
        for i in range(depth):
            if i + 1 < depth:
                service = (
                    config.levels[i + 1].write_hit_cycles * self.level_cycle[i + 1]
                )
                downstream_block = self.level_block[i + 1]
            else:
                service = config.memory.write_ns + config.memory.recovery_ns + (
                    self.memory_bus.data_time(self.level_block[i])
                )
                downstream_block = self.level_block[i]
            self.buffers.append(
                WriteBuffer(
                    capacity=config.write_buffer_entries,
                    service_time=service,
                    downstream_block=downstream_block,
                )
            )
        # Per-reference hit costs.  The base machine's split L1 cycles at
        # the CPU rate, so an instruction fetch costs one CPU cycle and a
        # data read hit is free (it shares the cycle).  For a single-level
        # system whose only cache is slower than the CPU -- the paper's
        # "equivalent single-level cache" comparisons -- every fetch costs
        # a full cache cycle, and on a unified cache a data access occupies
        # the single port for another cache cycle.
        l1_cycle = self.level_cycle[0]
        self.ifetch_cost = max(self.cpu_cycle, l1_cycle)
        if config.levels[0].split or l1_cycle <= self.cpu_cycle:
            self.data_hit_cost = max(0.0, l1_cycle - self.cpu_cycle)
        else:
            self.data_hit_cost = l1_cycle
        # Time the D-cache finishes a multi-cycle write hit and can accept
        # the next data access.
        self.dcache_free_at = float("-inf")
        self.now = 0.0
        #: Non-stall time: ifetch base cycles plus data-read hit costs.
        self.base = 0.0
        self.read_stall = 0.0
        self.write_stall = 0.0

    # -- top level -----------------------------------------------------------

    def run(self, trace: Trace) -> TimingResult:
        hierarchy = self.hierarchy
        warmup = trace.warmup
        records = trace.records()
        if warmup:
            hierarchy.set_counting(False)
            access = hierarchy.access
            for _ in range(warmup):
                kind, address = next(records)
                access(kind, address)
            hierarchy.set_counting(True)

        icache = hierarchy.icache
        dcache = hierarchy.dcache
        instructions = 0
        for kind, address in records:
            if kind == IFETCH:
                instructions += 1
                self.now += self.ifetch_cost
                self.base += self.ifetch_cost
                cache = icache if icache is not None else dcache
                outcome = cache.read(address)
                if not outcome.hit:
                    done = self._service_miss(outcome, self.now, for_write=False)
                    self.read_stall += done - self.now
                    self.now = done
                elif outcome.prefetched:
                    self._apply_prefetches(0, outcome)
            elif kind == WRITE:
                self._do_write(address)
            else:
                self._do_read(address)

        # Drain the write buffers: writes already pushed are committed
        # work, and the trace's execution is not complete until they have
        # retired downstream.  The buffers drain concurrently (each feeds
        # a different level), so the cost is the latest completion, folded
        # into the write-stall component.
        drained = self.now
        for buffer in self.buffers:
            drained = max(drained, buffer.flush(self.now))
        if drained > self.now:
            self.write_stall += drained - self.now
            self.now = drained

        measured_kinds = trace.kinds[warmup:]
        cpu_writes = int(np.count_nonzero(measured_kinds == WRITE))
        cpu_reads = int(measured_kinds.size) - cpu_writes
        level_stats = []
        for group in hierarchy.level_caches:
            merged = CacheStats()
            for cache in group:
                merged = merged.merge(cache.stats)
            level_stats.append(merged)
        result = TimingResult(
            trace_name=trace.name,
            config=self.config,
            instructions=instructions,
            cpu_reads=cpu_reads,
            cpu_writes=cpu_writes,
            total_ns=self.now,
            read_stall_ns=self.read_stall,
            write_stall_ns=self.write_stall,
            level_stats=level_stats,
            memory_reads=hierarchy.memory_traffic.reads,
            memory_writes=hierarchy.memory_traffic.writes,
            buffer_full_stalls=[b.full_stalls for b in self.buffers],
            buffer_read_matches=[b.read_matches for b in self.buffers],
            base_ns=self.base,
        )
        return maybe_audit_timing(trace, result)

    # -- CPU-side data accesses ------------------------------------------------

    def _wait_for_dcache(self) -> None:
        """Stall if a multi-cycle write still occupies the D-cache.

        A data access belongs to the cycle that started one CPU cycle before
        ``now`` (``now`` marks cycle ends), so the comparison is against the
        cycle start.
        """
        cycle_start = self.now - self.cpu_cycle
        if self.dcache_free_at > cycle_start:
            wait = self.dcache_free_at - cycle_start
            self.write_stall += wait
            self.now += wait

    def _do_read(self, address: int) -> None:
        self._wait_for_dcache()
        outcome = self.hierarchy.dcache.read(address)
        if outcome.hit:
            self.now += self.data_hit_cost
            self.base += self.data_hit_cost
            if outcome.prefetched:
                self._apply_prefetches(0, outcome)
        else:
            done = self._service_miss(outcome, self.now, for_write=False)
            self.read_stall += done - self.now
            self.now = done

    def _do_write(self, address: int) -> None:
        self._wait_for_dcache()
        dcache = self.hierarchy.dcache
        outcome = dcache.write(address)
        if not outcome.hit and outcome.fetched:
            # Fetch-on-write: the CPU stalls for the allocation.
            done = self._service_miss(outcome, self.now, for_write=True)
            self.write_stall += done - self.now
            self.now = done
        elif outcome.writebacks or outcome.forwarded_write is not None:
            done = self._service_miss(outcome, self.now, for_write=True)
            if done > self.now:
                self.write_stall += done - self.now
                self.now = done
        if dcache.write_policy.value == "write-back":
            # The write occupies the D-cache for write_hit_cycles starting
            # at its own cycle's start.
            cycle_start = self.now - self.cpu_cycle
            occupancy = self.config.levels[0].write_hit_cycles * self.cpu_cycle
            self.dcache_free_at = cycle_start + occupancy

    # -- miss service ------------------------------------------------------------

    def _service_miss(self, outcome, now: float, for_write: bool) -> float:
        """Charge the downstream consequences of a level-1 outcome.

        Returns the completion time of the demand transfer.
        """
        done = now
        done = max(done, self._push_writebacks(0, outcome.writebacks, now))
        for fetched in outcome.fetched:
            done = max(done, self._read_block(1, fetched, now, for_write))
        if outcome.forwarded_write is not None:
            done = max(done, self._write_block(1, outcome.forwarded_write, now))
        self._apply_prefetches(0, outcome)
        return done

    def _push_writebacks(self, boundary: int, victims, now: float) -> float:
        """Push victim blocks into the buffer at ``boundary``.

        Functionally applies the writes downstream immediately; the buffer
        carries the timing.  Returns when the processor-side push completes
        (later than ``now`` only when the buffer is full).
        """
        done = now
        buffer = self.buffers[boundary]
        align = buffer.downstream_block - 1
        for victim in victims:
            done = max(done, buffer.push(victim & ~align, now))
            self._apply_write_functionally(boundary + 1, victim)
        return done

    def _apply_write_functionally(self, level_index: int, address: int) -> None:
        """Apply a drained write's state change without timing."""
        position = level_index - 1
        if position >= len(self.lower):
            if self.hierarchy.dcache.counting:
                self.hierarchy.memory_traffic.writes += 1
            return
        cache = self.lower[position]
        outcome = cache.write(address)
        self._enforce_inclusion(level_index, outcome)
        # Downstream consequences of the write (allocation fills, deeper
        # victims) are functional too; their timing is folded into the
        # buffer service-time approximation.
        for victim in outcome.writebacks:
            self._apply_write_functionally(level_index + 1, victim)
        for fetched in outcome.fetched:
            self._apply_read_functionally(level_index + 1, fetched)
        if outcome.forwarded_write is not None:
            self._apply_write_functionally(level_index + 1, outcome.forwarded_write)

    def _apply_read_functionally(
        self, level_index: int, address: int, bucket: str = "write"
    ) -> None:
        position = level_index - 1
        if position >= len(self.lower):
            if self.hierarchy.dcache.counting:
                self.hierarchy.memory_traffic.reads += 1
            return
        cache = self.lower[position]
        outcome = cache.read(address, bucket=bucket)
        self._enforce_inclusion(level_index, outcome)
        for victim in outcome.writebacks:
            self._apply_write_functionally(level_index + 1, victim)
        for fetched in outcome.fetched:
            self._apply_read_functionally(level_index + 1, fetched, bucket)

    def _enforce_inclusion(self, level_index: int, outcome) -> None:
        """Back-invalidate upstream copies of blocks evicted below.

        State-only, like buffered writes: the (rare) back-invalidation
        traffic is outside the timing envelope.
        """
        if self.config.enforce_inclusion and outcome.evicted:
            for victim in outcome.evicted:
                self.hierarchy.back_invalidate(level_index, victim)

    def _apply_prefetches(self, level_index: int, outcome) -> None:
        """Fill an outcome's speculative fetches from below, functionally.

        Prefetch traffic never stalls the processor in this model; its
        bandwidth cost is outside the timing envelope (the paper's
        simulator overlaps prefetches with demand activity too).
        """
        for speculative in outcome.prefetched:
            self._apply_read_functionally(level_index + 1, speculative, "prefetch")

    def _read_block(
        self, level_index: int, address: int, now: float, for_write: bool
    ) -> float:
        """Fetch one upstream block through level ``level_index`` (0-based
        into ``config.levels``); returns the completion time."""
        position = level_index - 1
        boundary = level_index - 1  # buffer feeding this level
        buffer = self.buffers[boundary]
        if position >= len(self.lower):
            # Straight to main memory.
            if self.hierarchy.dcache.counting:
                self.hierarchy.memory_traffic.reads += 1
            fence = buffer.read_fence(
                address & ~(buffer.downstream_block - 1), now
            )
            return self._memory_read(fence, self.level_block[level_index - 1])
        cache = self.lower[position]
        fence = buffer.read_fence(address & ~(buffer.downstream_block - 1), now)
        start = max(fence, self.level_busy[position])
        outcome = cache.read(address, bucket="write" if for_write else "read")
        self._enforce_inclusion(level_index, outcome)
        self._apply_prefetches(level_index, outcome)
        if outcome.hit:
            done = start + self.level_cycle[level_index]
        else:
            done = max(
                start, self._push_writebacks(boundary + 1, outcome.writebacks, start)
            )
            for fetched in outcome.fetched:
                done = max(
                    done, self._read_block(level_index + 1, fetched, start, for_write)
                )
        self.level_busy[position] = done
        buffer.block_until(done)
        return done

    def _write_block(self, level_index: int, address: int, now: float) -> float:
        """A forwarded (write-through) word write heading downstream: goes
        through the write buffer at the upstream boundary.  Returns the push
        completion time (> ``now`` only when the buffer is full)."""
        boundary = level_index - 1
        buffer = self.buffers[boundary]
        done = buffer.push(address & ~(buffer.downstream_block - 1), now)
        self._apply_write_functionally(level_index, address)
        return done

    def _memory_read(self, now: float, block_bytes: int) -> float:
        """Address cycle, DRAM read, data transfer back."""
        address_done = self.memory_bus.acquire(now, self.memory_bus.address_time())
        data_at_pins = self.memory.read(address_done)
        done = data_at_pins + self.memory_bus.data_time(block_bytes)
        self.memory_bus.busy_until = done
        return done
