"""Declarative machine description.

A :class:`SystemConfig` captures everything the paper's simulator reads from
its configuration file (section 2): the depth of the hierarchy, each cache's
organisation (total size, set size, block size, fetch size, write strategy,
write buffering) and the latency of cache operations, plus the CPU cycle
time and the main-memory model.

:func:`parse_config` accepts a small keyword text format so experiments can
be described in files, mirroring the paper's workflow::

    cpu cycle_ns=10
    l1 size=4KB block=16 assoc=1 split=true cycle=1 write_hit_cycles=2
    l2 size=512KB block=32 assoc=1 cycle=3 write_hit_cycles=2
    memory read_ns=180 write_ns=100 recovery_ns=120
    bus width_words=4
    write_buffer entries=4
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.policy import FetchPolicy, PrefetchKind, PrefetchPolicy, WritePolicy
from repro.memory.main_memory import MemoryTiming
from repro.units import KB, MB, check_power_of_two


@dataclass(frozen=True)
class CpuConfig:
    """The RISC-like CPU of section 2."""

    #: CPU cycle time in nanoseconds (10 ns in the base machine).
    cycle_ns: float = 10.0

    def __post_init__(self) -> None:
        if self.cycle_ns <= 0:
            raise ValueError("cycle_ns must be positive")


@dataclass(frozen=True)
class LevelConfig:
    """One level of caching.

    ``cycle_cpu_cycles`` is the level's basic cycle time in CPU cycles: a
    read that tag-hits completes in one such cycle; write hits take
    ``write_hit_cycles`` of them (2 throughout the paper).

    A *split* level is an instruction/data pair, each of half the stated
    total size (the base machine's 4 KB L1 is split 2 KB I + 2 KB D).
    """

    size_bytes: int
    block_bytes: int
    associativity: int = 1
    cycle_cpu_cycles: float = 1.0
    write_hit_cycles: int = 2
    split: bool = False
    replacement: str = "lru"
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    fetch_blocks: int = 1
    write_allocate: bool = True
    prefetch: PrefetchKind = PrefetchKind.NONE
    prefetch_distance: int = 1

    def __post_init__(self) -> None:
        check_power_of_two(self.size_bytes, "size_bytes")
        check_power_of_two(self.block_bytes, "block_bytes")
        if self.cycle_cpu_cycles <= 0:
            raise ValueError("cycle_cpu_cycles must be positive")
        if self.write_hit_cycles < 1:
            raise ValueError("write_hit_cycles must be at least 1")
        if self.split and self.size_bytes < 2 * self.block_bytes:
            raise ValueError("split level too small to halve")

    def geometry(self) -> CacheGeometry:
        """Geometry of the (unified) cache, or of each half if split."""
        size = self.size_bytes // 2 if self.split else self.size_bytes
        return CacheGeometry(
            size_bytes=size,
            block_bytes=self.block_bytes,
            associativity=self.associativity,
        )

    def fetch_policy(self) -> FetchPolicy:
        return FetchPolicy(
            fetch_blocks=self.fetch_blocks, write_allocate=self.write_allocate
        )

    def prefetch_policy(self) -> PrefetchPolicy:
        return PrefetchPolicy(kind=self.prefetch, distance=self.prefetch_distance)

    def with_(self, **changes) -> "LevelConfig":
        """Copy with fields replaced (sweep helper)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class SystemConfig:
    """A complete machine: CPU, cache levels (nearest first), memory."""

    levels: Tuple[LevelConfig, ...]
    cpu: CpuConfig = CpuConfig()
    memory: MemoryTiming = MemoryTiming()
    #: Words per bus data cycle (both busses in the base machine).
    bus_width_words: int = 4
    #: Entries in each inter-level write buffer.
    write_buffer_entries: int = 4
    #: Enforce multi-level inclusion: when a lower cache evicts a block,
    #: upstream copies are back-invalidated (dirty upstream data is written
    #: around the evicting level).  The paper's machine, like most of its
    #: era, does NOT enforce inclusion; the option exists for the
    #: inclusion-cost ablation (Baer & Wang, the paper's reference [3]).
    enforce_inclusion: bool = False
    #: Backplane (memory bus) cycle time in nanoseconds.  ``None`` tracks
    #: the deepest cache's cycle time (the base machine's wiring); a fixed
    #: value decouples it, which is how the paper sweeps the L2 SRAM time
    #: while keeping "the main memory access portion of the second-level
    #: cache miss penalty ... constant" (section 4).
    backplane_cycle_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a system needs at least one cache level")
        if any(level.split for level in self.levels[1:]):
            raise ValueError("only the first level may be split")
        if self.bus_width_words < 1:
            raise ValueError("bus_width_words must be at least 1")
        if self.write_buffer_entries < 1:
            raise ValueError("write_buffer_entries must be at least 1")
        if self.backplane_cycle_ns is not None and self.backplane_cycle_ns <= 0:
            raise ValueError("backplane_cycle_ns must be positive")
        object.__setattr__(self, "levels", tuple(self.levels))

    @property
    def depth(self) -> int:
        return len(self.levels)

    def level_cycle_ns(self, index: int) -> float:
        """Cycle time of level ``index`` in nanoseconds."""
        return self.levels[index].cycle_cpu_cycles * self.cpu.cycle_ns

    @property
    def effective_backplane_ns(self) -> float:
        """The memory-bus cycle time actually in force."""
        if self.backplane_cycle_ns is not None:
            return self.backplane_cycle_ns
        return self.level_cycle_ns(self.depth - 1)

    def with_level(self, index: int, **changes) -> "SystemConfig":
        """Copy with one level's fields replaced (sweep helper)."""
        levels = list(self.levels)
        levels[index] = levels[index].with_(**changes)
        return replace(self, levels=tuple(levels))

    def without_level(self, index: int) -> "SystemConfig":
        """Copy with level ``index`` removed (e.g. solo-L2 measurements)."""
        levels = list(self.levels)
        del levels[index]
        return replace(self, levels=tuple(levels))

    def with_memory(self, memory: MemoryTiming) -> "SystemConfig":
        return replace(self, memory=memory)


# -- text format -------------------------------------------------------------

_SIZE_RE = re.compile(r"^(\d+)([KM]B?|B)?$", re.IGNORECASE)


def format_size(size_bytes: int) -> str:
    """Render a byte count in the config format's units."""
    if size_bytes >= MB and size_bytes % MB == 0:
        return f"{size_bytes // MB}MB"
    if size_bytes >= KB and size_bytes % KB == 0:
        return f"{size_bytes // KB}KB"
    return f"{size_bytes}B"


def format_config(config: SystemConfig) -> str:
    """Serialise a :class:`SystemConfig` to the text format.

    The output round-trips through :func:`parse_config` (up to the pinned
    backplane and inclusion options, which the simple format omits and the
    experiments set programmatically).
    """
    lines = [f"cpu cycle_ns={config.cpu.cycle_ns:g}"]
    for i, level in enumerate(config.levels, start=1):
        parts = [
            f"l{i}",
            f"size={format_size(level.size_bytes)}",
            f"block={level.block_bytes}",
            f"assoc={level.associativity}",
            f"cycle={level.cycle_cpu_cycles:g}",
            f"write_hit_cycles={level.write_hit_cycles}",
        ]
        if level.split:
            parts.append("split=true")
        if level.replacement != "lru":
            parts.append(f"replacement={level.replacement}")
        if level.write_policy is not WritePolicy.WRITE_BACK:
            parts.append("write=through")
        if level.fetch_blocks != 1:
            parts.append(f"fetch_blocks={level.fetch_blocks}")
        if not level.write_allocate:
            parts.append("write_allocate=false")
        if level.prefetch is not PrefetchKind.NONE:
            parts.append(f"prefetch={level.prefetch.value}")
            parts.append(f"prefetch_distance={level.prefetch_distance}")
        lines.append(" ".join(parts))
    lines.append(
        f"memory read_ns={config.memory.read_ns:g} "
        f"write_ns={config.memory.write_ns:g} "
        f"recovery_ns={config.memory.recovery_ns:g}"
    )
    lines.append(f"bus width_words={config.bus_width_words}")
    lines.append(f"write_buffer entries={config.write_buffer_entries}")
    return "\n".join(lines) + "\n"


def parse_size(text: str) -> int:
    """Parse "4KB", "512kb", "1MB", "64" (bytes) into bytes."""
    match = _SIZE_RE.match(text.strip())
    if not match:
        raise ValueError(f"unparseable size {text!r}")
    value = int(match.group(1))
    unit = (match.group(2) or "B").upper()
    if unit.startswith("K"):
        return value * KB
    if unit.startswith("M"):
        return value * MB
    return value


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("true", "yes", "1", "on"):
        return True
    if lowered in ("false", "no", "0", "off"):
        return False
    raise ValueError(f"unparseable boolean {text!r}")


def _parse_pairs(rest: List[str], lineno: int) -> dict:
    pairs = {}
    for token in rest:
        if "=" not in token:
            raise ValueError(f"line {lineno}: expected key=value, got {token!r}")
        key, value = token.split("=", 1)
        pairs[key.strip().lower()] = value.strip()
    return pairs


def parse_config(text: str) -> SystemConfig:
    """Parse the keyword text format described in the module docstring.

    Levels may be named ``l1``/``l2``/``l3``... and are ordered by their
    number regardless of file order.
    """
    cpu = CpuConfig()
    memory = MemoryTiming()
    bus_width = 4
    buffer_entries = 4
    levels = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        keyword, *rest = line.split()
        keyword = keyword.lower()
        pairs = _parse_pairs(rest, lineno)
        if keyword == "cpu":
            cpu = CpuConfig(cycle_ns=float(pairs.pop("cycle_ns", 10.0)))
        elif keyword == "memory":
            memory = MemoryTiming(
                read_ns=float(pairs.pop("read_ns", 180.0)),
                write_ns=float(pairs.pop("write_ns", 100.0)),
                recovery_ns=float(pairs.pop("recovery_ns", 120.0)),
            )
        elif keyword == "bus":
            bus_width = int(pairs.pop("width_words", 4))
        elif keyword == "write_buffer":
            buffer_entries = int(pairs.pop("entries", 4))
        elif re.fullmatch(r"l\d+", keyword):
            index = int(keyword[1:])
            levels[index] = LevelConfig(
                size_bytes=parse_size(pairs.pop("size")),
                block_bytes=parse_size(pairs.pop("block", "16")),
                associativity=int(pairs.pop("assoc", 1)),
                cycle_cpu_cycles=float(pairs.pop("cycle", 1.0)),
                write_hit_cycles=int(pairs.pop("write_hit_cycles", 2)),
                split=_parse_bool(pairs.pop("split", "false")),
                replacement=pairs.pop("replacement", "lru"),
                write_policy=WritePolicy.parse(
                    "write-" + pairs.pop("write", "back")
                ),
                fetch_blocks=int(pairs.pop("fetch_blocks", 1)),
                write_allocate=_parse_bool(pairs.pop("write_allocate", "true")),
                prefetch=PrefetchKind.parse(pairs.pop("prefetch", "none")),
                prefetch_distance=int(pairs.pop("prefetch_distance", 1)),
            )
        else:
            raise ValueError(f"line {lineno}: unknown keyword {keyword!r}")
        if pairs:
            raise ValueError(
                f"line {lineno}: unknown options {sorted(pairs)} for {keyword!r}"
            )
    if not levels:
        raise ValueError("config defines no cache levels")
    expected = list(range(1, len(levels) + 1))
    if sorted(levels) != expected:
        raise ValueError(
            f"cache levels must be numbered consecutively from l1, got "
            f"{['l%d' % i for i in sorted(levels)]}"
        )
    ordered = tuple(levels[i] for i in expected)
    return SystemConfig(
        levels=ordered,
        cpu=cpu,
        memory=memory,
        bus_width_words=bus_width,
        write_buffer_entries=buffer_entries,
    )
