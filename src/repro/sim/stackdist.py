"""Single-pass stack-distance simulation of the associativity axis.

The paper's dense grids (Figures 3-5, Equations 1-3) sweep cache size and
set size together, and even the vectorised fast path pays one full trace
replay per grid cell.  Mattson's inclusion property makes most of that
redundant for LRU: at a fixed (set count, block size), the content of an
A-way set-associative cache is exactly the top ``A`` entries of the
per-set LRU stack, for *every* ``A`` at once.  One replay that records
each access's **stack distance** -- the depth at which its block sits --
therefore yields exact hit and miss counts for every associativity
simultaneously: an A-way cache hits precisely the accesses with distance
``<= A``, so per-associativity miss counts are suffix sums of one
histogram.

Writebacks need one more invariant.  Per resident block the kernel
tracks ``reach``: the deepest stack position the block has occupied
since it was last written (:data:`_CLEAN` when it has not been written
since it entered the stack).  The A-way cache's copy is dirty iff
``reach <= A`` -- a deeper excursion means that cache already evicted
(and wrote back) the block after that write and re-fetched it clean.
When an access pushes an entry from depth ``A`` to ``A + 1``, the A-way
cache evicts it at exactly that access; a dirty crossing is therefore
one writeback at associativity ``A``, stamped with the pushing access's
order key (the fast path's victim-key rule, which decides whether the
writeback lands before or after the warmup boundary).

Scope: the deepest level of a :func:`repro.sim.fast.fast_eligible`
configuration whose replacement is genuinely LRU (a direct-mapped
deepest level qualifies under any stated policy -- one way leaves
nothing to choose).  Upstream levels are replayed by the fast path's
kernels and are identical across the derived grid; their input streams
are cached so a sweep's groups replay them once, not once per group.
Count-identity with :class:`~repro.sim.fast.FastFunctionalSimulator`
and the reference simulator is enforced by ``tests/sim/test_stackdist.py``;
the sweep planner that fans grid groups out over the worker pool lives
in :mod:`repro.core.sweep`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.audit import maybe_audit_functional
from repro.cache.stats import CacheStats
from repro.sim import memo
from repro.sim.config import SystemConfig
from repro.sim.fast import (
    MAX_FAST_ASSOCIATIVITY,
    _BUCKET_WRITE,
    _ChunkedFront,
    _level_zero_streams,
    _simulate_front,
    fast_eligible,
)
from repro.sim.functional import FunctionalResult
from repro.trace.record import IFETCH, WRITE, Trace
from repro.trace.store import replay_chunk_records
from repro.units import log2_int

#: The associativities one stack pass derives: every power of two the
#: fast path accepts (:class:`~repro.sim.config.LevelConfig` rejects
#: non-powers-of-two, so this is the whole eligible axis).
STACK_ASSOCIATIVITIES = (1, 2, 4, 8, 16)

#: Stack width -- one column per way of the widest derived cache.
_WIDTH = MAX_FAST_ASSOCIATIVITY

#: ``reach`` sentinel for a block with no write since it entered the
#: stack: no cache of any width holds a dirty copy of it.
_CLEAN = _WIDTH + 1

#: Bound on cached deepest-level input streams (a few streams of the
#: active trace suite; entries are a modest multiple of the post-L1
#: miss stream, far smaller than the traces themselves).
_FRONT_CACHE_ENTRIES = 8

#: Cache of ``(upstream stats, deepest-level input stream)`` keyed by
#: (trace fingerprint, upstream projection).  Every group of a size x
#: associativity sweep shares its upstream levels, and replaying them
#: once per *group* -- rather than once per trace -- would forfeit most
#: of the single-pass win.  Entries are pure functions of their key, so
#: reuse can never change a result.
_front_cache: "OrderedDict[Tuple, Tuple]" = OrderedDict()


def stackdist_eligible(config: SystemConfig) -> bool:
    """True when one stack pass reproduces the fast path for every
    member associativity.

    Requires a fast-eligible configuration whose deepest level really
    replaces LRU; a direct-mapped deepest level is eligible under any
    stated replacement policy, replacement being irrelevant at one way.
    """
    if not fast_eligible(config):
        return False
    deepest = config.levels[-1]
    return deepest.replacement == "lru" or deepest.associativity == 1


def grid_projection(config: SystemConfig) -> Tuple:
    """The identity of a configuration's single-pass group.

    Two eligible configurations with equal grid projections differ at
    most in the deepest level's associativity (and the total size that
    scales with it), so one stack-distance pass serves both.
    """
    deepest = config.levels[-1]
    return (
        config.enforce_inclusion,
        tuple(memo.level_projection(level) for level in config.levels[:-1]),
        (
            deepest.geometry().sets,
            deepest.block_bytes,
            deepest.split,
            deepest.write_policy,
            deepest.fetch_blocks,
            deepest.write_allocate,
            deepest.prefetch,
        ),
    )


def member_config(config: SystemConfig, associativity: int) -> SystemConfig:
    """The group member with ``associativity`` ways at the deepest level.

    Holds the set count fixed, so the size scales with the way count;
    the replacement policy is pinned to LRU where it matters (the stack
    pass *is* LRU).
    """
    index = len(config.levels) - 1
    deepest = config.levels[index]
    size = deepest.geometry().sets * deepest.block_bytes * associativity
    if deepest.split:
        size *= 2
    changes = {"associativity": associativity, "size_bytes": size}
    if associativity > 1:
        changes["replacement"] = "lru"
    return config.with_level(index, **changes)


@dataclass(frozen=True)
class StackdistGridResult:
    """Every member result of one single-pass grid group.

    ``results`` pairs each derived associativity (in
    :data:`STACK_ASSOCIATIVITIES` order) with a full
    :class:`~repro.sim.functional.FunctionalResult` whose configuration
    differs from the group's only in the deepest level's way count and
    size.
    """

    results: Tuple[Tuple[int, FunctionalResult], ...]

    def result_for(self, associativity: int) -> FunctionalResult:
        for ways, result in self.results:
            if ways == associativity:
                return result
        raise KeyError(
            f"associativity {associativity} is not derived by the stack "
            f"pass (members: {STACK_ASSOCIATIVITIES})"
        )


def _new_stack_state(sets: int) -> Tuple[np.ndarray, np.ndarray]:
    """A cold persistent ``(tags, reach)`` stack state for chunked replay."""
    return (
        np.full((sets, _WIDTH), -1, dtype=np.int64),
        np.full((sets, _WIDTH), _CLEAN, dtype=np.int64),
    )


def _stack_pass(
    blocks: np.ndarray,
    is_write: np.ndarray,
    bucket: np.ndarray,
    order_keys: np.ndarray,
    sets: int,
    warmup_key: int,
    state: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One width-16 LRU stack replay of a single reference stream.

    Structured like :func:`repro.sim.fast._simulate_lru_level` -- bucket
    by set, replay in per-set time order, one vectorised step across all
    touched sets -- but over a fixed width-:data:`_WIDTH` stack whose
    positions double as every member cache's LRU order.

    ``state`` supports chunked streaming replay: pass a persistent
    ``(tags, reach)`` pair of shape ``(sets, _WIDTH)`` (see
    :func:`_new_stack_state`); the touched rows are gathered into the
    pass's rank-ordered working arrays and scattered back afterwards, so
    replaying a stream piecewise yields the same histograms as one call.

    Returns ``(read_hist, write_hist, writebacks)``:

    * ``read_hist[d-1]`` / ``write_hist[d-1]`` count post-warmup
      accesses of each statistics bucket with stack distance ``d``
      (1..16); index 16 counts distances beyond the stack, a miss at
      every member associativity.
    * ``writebacks[A-1]`` counts post-warmup dirty evictions from the
      A-way member cache (see the module docstring for the ``reach``
      invariant that makes all sixteen exact in one pass).
    """
    n = len(blocks)
    read_hist = np.zeros(_WIDTH + 1, dtype=np.int64)
    write_hist = np.zeros(_WIDTH + 1, dtype=np.int64)
    writebacks = np.zeros(_WIDTH, dtype=np.int64)
    if n == 0:
        return read_hist, write_hist, writebacks
    set_index = (blocks & (sets - 1)).astype(np.int64)
    # Rank sets by descending access count (stable, so equal-count sets
    # keep a deterministic order).  Step t touches exactly the sets with
    # more than t accesses -- ranks [0, k) -- so the per-step state is a
    # contiguous *prefix* of the rank-ordered arrays: plain views,
    # updated in place, instead of per-step gather/scatter copies.
    counts = np.bincount(set_index, minlength=sets)
    ids_by_rank = np.argsort(-counts, kind="stable")
    rank_of_set = np.empty(sets, dtype=np.int64)
    rank_of_set[ids_by_rank] = np.arange(sets)
    rank = rank_of_set[set_index]
    # Stable sort by rank: within a set, accesses stay in time order.
    set_order = np.argsort(rank, kind="stable")
    sorted_ranks = rank[set_order]
    new_set = np.empty(n, dtype=bool)
    new_set[0] = True
    np.not_equal(sorted_ranks[1:], sorted_ranks[:-1], out=new_set[1:])
    starts = np.flatnonzero(new_set)
    seq = np.arange(n, dtype=np.int64)
    seq -= np.repeat(starts, np.diff(np.append(starts, n)))
    # Re-sort by (sequence number, rank): step t's accesses form one
    # contiguous slice, one access per set, rank order == row order.
    step_order = np.argsort(seq, kind="stable")
    blocks_s = blocks[set_order][step_order].astype(np.int64)
    write_s = is_write[set_order][step_order]
    keys_s = order_keys[set_order][step_order]
    step_starts = np.append(0, np.cumsum(np.bincount(seq)))

    touched = int(sorted_ranks[-1]) + 1
    ways = np.arange(_WIDTH)
    depths = ways[None, :] + 1  # way w holds stack depth w + 1
    if state is None:
        tags = np.full((touched, _WIDTH), -1, dtype=np.int64)
        reach = np.full((touched, _WIDTH), _CLEAN, dtype=np.int64)
        touched_ids = None
    else:
        # Ranks order sets by descending count, so the touched sets are
        # exactly the first ``touched`` ranks: gather their persistent
        # rows into rank order, scatter the final state back at the end.
        touched_ids = ids_by_rank[:touched]
        tags = state[0][touched_ids]
        reach = state[1][touched_ids]
    dist_s = np.empty(n, dtype=np.int64)
    counted_s = keys_s >= warmup_key
    all_counted = bool(counted_s.all())
    # Preallocated per-step scratch (the loop body runs tens of
    # thousands of times; allocation is pure dispatch overhead at this
    # size).  ``match``'s extra always-true column turns argmax into a
    # combined hit test + hit way + evict position: first True index is
    # the hit way, or _WIDTH on a miss.
    row_idx = np.arange(touched)
    match = np.empty((touched, _WIDTH + 1), dtype=bool)
    match[:, _WIDTH] = True
    cross_buf = np.empty((touched, _WIDTH), dtype=bool)
    dirty_buf = np.empty((touched, _WIDTH), dtype=bool)
    shift_buf = np.empty((touched, _WIDTH - 1), dtype=bool)
    tmp_tags = np.empty((touched, _WIDTH - 1), dtype=np.int64)
    tmp_reach = np.empty((touched, _WIDTH - 1), dtype=np.int64)
    # Writebacks accumulate per row; one reduction at the end replaces a
    # per-step axis-0 sum.
    wb_rows = np.zeros((touched, _WIDTH), dtype=np.int64)
    for t in range(len(step_starts) - 1):
        lo, hi = int(step_starts[t]), int(step_starts[t + 1])
        k = hi - lo
        block = blocks_s[lo:hi, None]
        row_tags = tags[:k]
        row_reach = reach[:k]
        m = match[:k]
        np.equal(row_tags, block, out=m[:, :_WIDTH])
        # A hit evicts nothing below its own way; a miss (evict_pos ==
        # _WIDTH) pushes every entry down, the deepest off the stack.
        evict_pos = m.argmax(axis=1)
        # ``evict_pos`` is already the 0-based histogram bucket: stack
        # distance d lands at index d - 1, off-stack at index _WIDTH.
        dist_s[lo:hi] = evict_pos
        # Entries at ways [0, evict_pos) get pushed one position deeper;
        # each crossing from depth w+1 to w+2 evicts the block from the
        # (w+1)-way member cache, writing it back if dirty there.  An
        # entry with ``reach <= w + 1`` is necessarily valid and dirty
        # there (an empty or clean slot's reach is :data:`_CLEAN`).
        cross = np.less(ways, evict_pos[:, None], out=cross_buf[:k])
        cross &= np.less_equal(row_reach, depths, out=dirty_buf[:k])
        if not all_counted:
            cross &= counted_s[lo:hi, None]
        wb_rows[:k] += cross
        # Promote the accessed block to way 0.  A write resets its reach
        # to depth 1 (dirty in every member); a read hit preserves it; a
        # fetch enters with no dirty copy anywhere.  Shifted entries'
        # reach grows to their new depth.  The shifted columns are
        # staged through scratch copies, so reading ``[:, :-1]`` while
        # writing ``[:, 1:]`` is safe.
        hit = evict_pos != _WIDTH
        pos = np.minimum(evict_pos, _WIDTH - 1)
        head_reach = np.where(
            write_s[lo:hi], 1, np.where(hit, row_reach[row_idx[:k], pos], _CLEAN)
        )
        shifted = np.less_equal(ways[1:], pos[:, None], out=shift_buf[:k])
        np.copyto(tmp_tags[:k], row_tags[:, :-1])
        np.maximum(row_reach[:, :-1], depths[:, 1:], out=tmp_reach[:k])
        np.copyto(row_tags[:, 1:], tmp_tags[:k], where=shifted)
        np.copyto(row_reach[:, 1:], tmp_reach[:k], where=shifted)
        row_tags[:, 0] = blocks_s[lo:hi]
        row_reach[:, 0] = head_reach

    if touched_ids is not None and state is not None:
        state[0][touched_ids] = tags
        state[1][touched_ids] = reach
    writebacks += wb_rows.sum(axis=0)
    counted_dist = dist_s[counted_s]
    counted_write = (bucket[set_order][step_order])[counted_s] == _BUCKET_WRITE
    read_hist += np.bincount(
        counted_dist[~counted_write], minlength=_WIDTH + 1
    ).astype(np.int64)
    write_hist += np.bincount(
        counted_dist[counted_write], minlength=_WIDTH + 1
    ).astype(np.int64)
    return read_hist, write_hist, writebacks


def _front_key(trace: Trace, config: SystemConfig) -> Tuple:
    return (
        memo.trace_fingerprint(trace),
        config.enforce_inclusion,
        tuple(memo.level_projection(level) for level in config.levels[:-1]),
    )


def _front(trace: Trace, config: SystemConfig) -> Tuple[List[CacheStats], Tuple, int]:
    """Upstream statistics and the deepest level's input stream, cached.

    The returned statistics are fresh copies (callers own them); the
    stream arrays are shared and treated as read-only by the kernel.
    """
    key = _front_key(trace, config)
    hit = _front_cache.get(key)
    if hit is None:
        with telemetry.span(
            "stackdist.front", records=len(trace), depth=config.depth - 1
        ):
            upstream, stream, prev_offset = _simulate_front(
                trace, config, config.depth - 1
            )
        hit = (tuple(upstream), stream, prev_offset)
        _front_cache[key] = hit
        while len(_front_cache) > _FRONT_CACHE_ENTRIES:
            _front_cache.popitem(last=False)
    else:
        _front_cache.move_to_end(key)
    upstream, stream, prev_offset = hit
    return [replace(stats) for stats in upstream], stream, prev_offset


def clear_front_cache() -> None:
    """Drop the cached upstream streams (tests and benchmarks)."""
    _front_cache.clear()


def _grid_histograms(
    trace: Trace, config: SystemConfig
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[CacheStats]]:
    """Whole-array stack replay: histograms plus upstream statistics."""
    warmup = trace.warmup
    depth = config.depth
    deepest = config.levels[-1]
    sets = deepest.geometry().sets
    if depth == 1:
        upstream: List[CacheStats] = []
        streams = _level_zero_streams(trace, config)
        warmup_key = warmup
    else:
        upstream, stream, prev_offset = _front(trace, config)
        offset_bits = log2_int(deepest.block_bytes)
        if offset_bits < prev_offset:
            raise ValueError(
                "deeper levels must have blocks at least as large as "
                "their predecessor's"
            )
        s_blocks, s_write, s_bucket, s_keys = stream
        streams = [
            (s_blocks >> (offset_bits - prev_offset), s_write, s_bucket, s_keys)
        ]
        warmup_key = warmup * 4 ** (depth - 1)

    read_hist = np.zeros(_WIDTH + 1, dtype=np.int64)
    write_hist = np.zeros(_WIDTH + 1, dtype=np.int64)
    writebacks = np.zeros(_WIDTH, dtype=np.int64)
    for s_blocks, s_write, s_bucket, s_keys in streams:
        part_read, part_write, part_wb = _stack_pass(
            s_blocks, s_write, s_bucket, s_keys, sets, warmup_key
        )
        read_hist += part_read
        write_hist += part_write
        writebacks += part_wb
    return read_hist, write_hist, writebacks, upstream


def _grid_histograms_chunked(
    trace: Trace, config: SystemConfig, chunk_records: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[CacheStats]]:
    """Chunked stack replay; count-identical to :func:`_grid_histograms`.

    Each chunk runs through persistent per-level front state
    (:class:`repro.sim.fast._ChunkedFront`) and a persistent stack state
    at the deepest level, so peak residency is bounded per chunk.  The
    upstream front cache is bypassed -- its entries hold whole-trace
    streams, exactly what chunked replay exists to avoid.
    """
    warmup = trace.warmup
    depth = config.depth
    deepest = config.levels[-1]
    sets = deepest.geometry().sets
    read_hist = np.zeros(_WIDTH + 1, dtype=np.int64)
    write_hist = np.zeros(_WIDTH + 1, dtype=np.int64)
    writebacks = np.zeros(_WIDTH, dtype=np.int64)
    if depth == 1:
        # A split first level is two member caches: one stack per side.
        states = [
            _new_stack_state(sets)
            for _ in range(2 if deepest.split else 1)
        ]
        for index, chunk in enumerate(trace.chunks(chunk_records)):
            with telemetry.span(
                "stackdist.chunk", index=index, records=len(chunk)
            ):
                base = index * chunk_records
                zero_streams = _level_zero_streams(
                    chunk, config, key_offset=base
                )
                for side, (s_blocks, s_write, s_bucket, s_keys) in enumerate(
                    zero_streams
                ):
                    part_read, part_write, part_wb = _stack_pass(
                        s_blocks, s_write, s_bucket, s_keys, sets, warmup,
                        state=states[side],
                    )
                    read_hist += part_read
                    write_hist += part_write
                    writebacks += part_wb
        return read_hist, write_hist, writebacks, []

    front = _ChunkedFront(trace, config, depth - 1, chunk_records)
    prev_offset = log2_int(config.levels[depth - 2].block_bytes)
    offset_bits = log2_int(deepest.block_bytes)
    if offset_bits < prev_offset:
        raise ValueError(
            "deeper levels must have blocks at least as large as "
            "their predecessor's"
        )
    warmup_key = warmup * 4 ** (depth - 1)
    state = _new_stack_state(sets)
    for index, stream in enumerate(front.streams()):
        with telemetry.span("stackdist.chunk", index=index):
            s_blocks, s_write, s_bucket, s_keys = stream
            part_read, part_write, part_wb = _stack_pass(
                s_blocks >> (offset_bits - prev_offset), s_write, s_bucket,
                s_keys, sets, warmup_key, state=state,
            )
            read_hist += part_read
            write_hist += part_write
            writebacks += part_wb
    return read_hist, write_hist, writebacks, front.level_stats


def run_stackdist_grid(trace: Trace, config: SystemConfig) -> StackdistGridResult:
    """Replay ``trace`` once against ``config``'s grid group.

    Returns the exact functional result of every member associativity
    (counts identical to :func:`repro.sim.fast.run_functional` on each
    member configuration).  With ``REPRO_TRACE_CHUNK`` set (and smaller
    than the trace), the replay streams in chunks through persistent
    stack state -- same histograms, bounded residency.
    """
    if not stackdist_eligible(config):
        raise ValueError(
            "configuration outside the stack-distance path (the deepest "
            "level must be fast-eligible LRU); use run_functional"
        )
    warmup = trace.warmup
    # Chunked histogram accumulation is count-identical to the one-shot
    # pass (parity tests); REPRO_TRACE_CHUNK tunes residency only.
    chunk = replay_chunk_records()  # repro: noqa RPR008
    chunked = chunk is not None and chunk < len(trace)
    with telemetry.span(
        "stackdist.pass",
        sets=config.levels[-1].geometry().sets,
        records=len(trace),
        chunked=chunked,
    ):
        if chunked:
            read_hist, write_hist, writebacks, upstream = (
                _grid_histograms_chunked(trace, config, chunk)
            )
        else:
            read_hist, write_hist, writebacks, upstream = _grid_histograms(
                trace, config
            )

    measured_kinds = trace.kinds[warmup:]
    cpu_writes = int(np.count_nonzero(measured_kinds == WRITE))
    cpu_reads = int(measured_kinds.size) - cpu_writes
    cpu_ifetches = int(np.count_nonzero(measured_kinds == IFETCH))
    reads = int(read_hist.sum())
    writes = int(write_hist.sum())

    members = []
    for ways in STACK_ASSOCIATIVITIES:
        read_misses = int(read_hist[ways:].sum())
        write_misses = int(write_hist[ways:].sum())
        stats = CacheStats(
            reads=reads,
            read_misses=read_misses,
            writes=writes,
            write_misses=write_misses,
            writebacks=int(writebacks[ways - 1]),
            blocks_fetched=read_misses + write_misses,
        )
        # Memory traffic is whatever leaves the deepest level: the
        # demand fetches and the dirty victims.  The key-threshold
        # algebra makes the post-warmup cuts coincide (an event with
        # level key k is counted iff k >= warmup_key, and its memory
        # key 4k+1 or 4k+2 is counted iff it exceeds 4*warmup_key).
        result = FunctionalResult(
            trace_name=trace.name,
            config=member_config(config, ways),
            cpu_reads=cpu_reads,
            cpu_writes=cpu_writes,
            cpu_ifetches=cpu_ifetches,
            level_stats=[replace(stats) for stats in upstream] + [stats],
            memory_reads=stats.blocks_fetched,
            memory_writes=stats.writebacks,
        )
        members.append(
            # Validate-and-raise only; the result itself is untouched.
            (ways, maybe_audit_functional(trace, result, source="stackdist"))  # repro: noqa RPR008
        )
    return StackdistGridResult(results=tuple(members))
