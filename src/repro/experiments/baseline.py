"""The paper's base machine (section 2) and shared experiment constants."""

from __future__ import annotations

from repro.memory.main_memory import MemoryTiming
from repro.sim.config import CpuConfig, LevelConfig, SystemConfig
from repro.units import KB, MB

#: CPU cycle time of the hypothetical single-chip processor.
CPU_CYCLE_NS = 10.0

#: Select-to-data-out time of a 2:1 Advanced-Schottky multiplexor -- the
#: minimum implementation cycle-time overhead for set associativity in a
#: discrete-TTL second-level cache (paper, section 5).
TTL_MUX_NS = 11.0

#: L2 sizes swept by the paper's figures (4 KB to 4 MB).
L2_SIZES = [4 * KB * 2**i for i in range(11)]


def l2_sweep_sizes(minimum: int = 4 * KB) -> list:
    """The L2 size axis for sweeps, from ``minimum`` upward.

    The default benchmark scale stops at 512 KB (the synthetic traces'
    power-law region at the default record count); set ``REPRO_FULL=1`` to
    sweep the paper's full 4 KB - 4 MB axis (pair it with a larger
    ``REPRO_RECORDS`` so the biggest caches still see misses).
    """
    from repro.core import envcfg

    top = 4 * MB if envcfg.get("REPRO_FULL") else 512 * KB
    return [size for size in L2_SIZES if minimum <= size <= top]

#: L2 cycle times swept by Figure 4-1 (in CPU cycles).
L2_CYCLE_TIMES = [float(c) for c in range(1, 11)]

#: Relative-execution-time contour levels of Figures 4-2 .. 4-4.
PERFORMANCE_LEVELS = [round(1.1 + 0.1 * i, 1) for i in range(16)]

#: Slope-region boundaries (CPU cycles per size doubling) shading the
#: Figure 4 design planes.
SLOPE_THRESHOLDS = [0.75, 1.5, 3.0]

#: Break-even contour levels (ns) shading Figures 5-1 .. 5-3.
BREAKEVEN_CONTOURS_NS = [10.0, 20.0, 30.0, 40.0]


def base_machine(
    l1_size: int = 4 * KB,
    l2_size: int = 512 * KB,
    l2_cycle_cpu_cycles: float = 3.0,
    l2_associativity: int = 1,
    memory_scale: float = 1.0,
) -> SystemConfig:
    """The base two-level system of section 2.

    10 ns CPU; split 4 KB direct-mapped write-back L1 with 4-word blocks
    cycling at the CPU rate (write hits 2 cycles); 512 KB direct-mapped
    write-back L2 with 8-word blocks at 3 CPU cycles (write hits 2 L2
    cycles); 4-word busses clocked at the L2 rate; DRAM reads 180 ns,
    writes 100 ns, >=120 ns recovery; 4-entry write buffers between levels.
    """
    memory = MemoryTiming()
    if memory_scale != 1.0:
        memory = memory.scaled(memory_scale)
    return SystemConfig(
        levels=(
            LevelConfig(
                size_bytes=l1_size,
                block_bytes=16,
                associativity=1,
                cycle_cpu_cycles=1.0,
                write_hit_cycles=2,
                split=True,
            ),
            LevelConfig(
                size_bytes=l2_size,
                block_bytes=32,
                associativity=l2_associativity,
                cycle_cpu_cycles=l2_cycle_cpu_cycles,
                write_hit_cycles=2,
            ),
        ),
        cpu=CpuConfig(cycle_ns=CPU_CYCLE_NS),
        memory=memory,
        bus_width_words=4,
        write_buffer_entries=4,
        # The base machine wires the backplane to the default 3-CPU-cycle
        # L2; pinning it here keeps the memory access portion of the miss
        # penalty constant when experiments sweep the L2 SRAM time
        # (paper, section 4).
        backplane_cycle_ns=3.0 * CPU_CYCLE_NS,
    )


def solo_l2_machine(
    l2_size: int = 512 * KB,
    l2_cycle_cpu_cycles: float = 3.0,
    l2_associativity: int = 1,
) -> SystemConfig:
    """The base machine with the L1 removed (solo miss-ratio runs)."""
    return base_machine(
        l2_size=l2_size,
        l2_cycle_cpu_cycles=l2_cycle_cpu_cycles,
        l2_associativity=l2_associativity,
    ).without_level(0)
