"""Experiment registry: every reproducible artefact by id."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments.base import Experiment
from repro.experiments.equations import (
    BreakevenL1Scaling,
    ConclusionShifts,
    EquationOneValidation,
    MissRatePowerLaw,
    OptimalL1VersusL2Speed,
    OptimalSizeShift,
)
from repro.experiments.extensions import (
    AffineVersusTiming,
    BlockSizeAblation,
    GeneratorAblation,
    InclusionAblation,
    PrefetchAblation,
    ThreeLevelHierarchy,
    WriteBufferAblation,
    WritePolicyAblation,
)
from repro.experiments.fig3 import fig3_1, fig3_2
from repro.experiments.fig4 import fig4_1, fig4_2, fig4_3, fig4_4
from repro.experiments.fig5 import fig5_1, fig5_2, fig5_3

_FACTORIES: Dict[str, Callable[[], Experiment]] = {
    "F3-1": fig3_1,
    "F3-2": fig3_2,
    "F4-1": fig4_1,
    "F4-2": fig4_2,
    "F4-3": fig4_3,
    "F4-4": fig4_4,
    "F5-1": fig5_1,
    "F5-2": fig5_2,
    "F5-3": fig5_3,
    "E-EQ1": EquationOneValidation,
    "E-EQ2": OptimalSizeShift,
    "E-EQ3": BreakevenL1Scaling,
    "E-R5": MissRatePowerLaw,
    "E-CONC": ConclusionShifts,
    "E-L1OPT": OptimalL1VersusL2Speed,
    "E-3L": ThreeLevelHierarchy,
    "A-AFFINE": AffineVersusTiming,
    "A-WBUF": WriteBufferAblation,
    "A-GEN": GeneratorAblation,
    "A-PREF": PrefetchAblation,
    "A-INCL": InclusionAblation,
    "A-BLOCK": BlockSizeAblation,
    "A-WPOL": WritePolicyAblation,
}


def experiment_ids() -> List[str]:
    """All registered experiment ids, figures first."""
    return list(_FACTORIES)


def make_experiment(experiment_id: str) -> Experiment:
    """Instantiate an experiment by id (case-insensitive)."""
    key = experiment_id.upper()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {', '.join(_FACTORIES)}"
        )
    return _FACTORIES[key]()
