"""The paper's quantitative expectations, experiment by experiment.

``mlcache report`` joins this table with the measured reports in
``results/`` to produce EXPERIMENTS.md -- the paper-versus-measured record
the reproduction is judged by.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class PaperExpectation:
    """What the paper reports for one artefact."""

    artefact: str
    paper_says: str
    how_compared: str


EXPECTATIONS: Dict[str, PaperExpectation] = {
    "F3-1": PaperExpectation(
        artefact="Figure 3-1 (L2 miss ratios, 4KB L1)",
        paper_says=(
            "Local miss ratio far above global at every size; global "
            "converges to solo once L2 is ~8x the L1; solo halves by ~0.69 "
            "per doubling until the very-large-cache plateau."
        ),
        how_compared="same three curves over the same size axis; shape checks",
    ),
    "F3-2": PaperExpectation(
        artefact="Figure 3-2 (L2 miss ratios, 32KB L1)",
        paper_says=(
            "With a large L1 the upstream disturbance perturbs the global "
            "miss ratio from the solo ratio 'even for very large caches'; "
            "independence needs a size increment of ~8x."
        ),
        how_compared="global/solo gap by size ratio",
    ),
    "F4-1": PaperExpectation(
        artefact="Figure 4-1 (relative execution time vs L2 size/cycle)",
        paper_says=(
            "Curves flatten with size (diminishing returns); the cycle-time "
            "effect is nearly independent of size; small caches trade size "
            "for cycle time, large caches the reverse."
        ),
        how_compared="same curve family; monotonicity and curvature checks",
    ),
    "F4-2": PaperExpectation(
        artefact="Figure 4-2 (lines of constant performance, 4KB L1)",
        paper_says=(
            "Lines rise to the right; slope regions at 0.75/1.5/3 CPU "
            "cycles per doubling, steepest (>=3) at the smallest caches; a "
            "strong pull toward caches beyond 128KB."
        ),
        how_compared="exact iso-lines from the affine models; slope contours",
    ),
    "F4-3": PaperExpectation(
        artefact="Figure 4-3 (constant performance, 32KB L1)",
        paper_says=(
            "Same shape; lines spread apart; maximum slope limited; the "
            "slope structure sits 1.74x to the right of Figure 4-2 "
            "(model predicts 2.04x for 8x L1)."
        ),
        how_compared="slope-boundary shift on a common grid",
    ),
    "F4-4": PaperExpectation(
        artefact="Figure 4-4 (2x slower main memory)",
        paper_says=(
            "Looks like the base plane rescaled: slope regions shift right "
            "by about a factor of two in cache size."
        ),
        how_compared="slope-boundary shift vs the Figure 4-2 plane",
    ),
    "F5-1": PaperExpectation(
        artefact="Figure 5-1 (2-way break-even times)",
        paper_says=(
            "Positive budgets over the plane, largest for small L2; "
            "contours at 10-40 ns."
        ),
        how_compared="same (size x cycle) map in ns",
    ),
    "F5-2": PaperExpectation(
        artefact="Figure 5-2 (4-way break-even times)",
        paper_says="Cumulative budgets grow with set size.",
        how_compared="same map; dominance over the 2-way map",
    ),
    "F5-3": PaperExpectation(
        artefact="Figure 5-3 (8-way break-even times)",
        paper_says=(
            "10-20 ns available for eight-way associativity over most of "
            "the design space with a 4KB L1 -- one to two CPU cycles; a "
            "large region clears the 11 ns TTL mux."
        ),
        how_compared="same map; fraction of plane above 10/11 ns",
    ),
    "E-EQ1": PaperExpectation(
        artefact="Equation 1 (execution-time model)",
        paper_says=(
            "Total cycles decompose into read traffic weighted by global "
            "miss ratios plus a store term; write effects second-order."
        ),
        how_compared="Equation 1 from measured counts vs timing simulation",
    ),
    "E-EQ2": PaperExpectation(
        artefact="Equation 2 (speed-size balance)",
        paper_says=(
            "The optimal L2 grows as the L1 improves (~1/3 power of two "
            "per L1 doubling under constant marginal cycle cost)."
        ),
        how_compared="optimiser sweep of L1 sizes under a technology model",
    ),
    "E-EQ3": PaperExpectation(
        artefact="Equation 3 scaling",
        paper_says=(
            "Each L1 doubling multiplies L2 break-even times by ~1.45 (the "
            "inverse of the 0.69 miss factor)."
        ),
        how_compared="mean 8-way budget vs L1 size",
    ),
    "E-R5": PaperExpectation(
        artefact="Miss-rate power law (section 4 text)",
        paper_says=(
            "Doubling the cache size decreases the solo miss rate by a "
            "constant factor, about 0.69 -- miss roughly 1/sqrt(size)."
        ),
        how_compared="log-log fit over the pre-plateau region",
    ),
    "E-CONC": PaperExpectation(
        artefact="Section 6 quantified shifts",
        paper_says=(
            "A 4KB L1 with a 10% miss rate shifts the lines of constant "
            "performance right by about seven binary orders of magnitude; "
            "a doubling of L1 shifts the curves ~0.24 powers of two."
        ),
        how_compared="analytic shift from the measured miss curve and M_L1",
    ),
    "E-L1OPT": PaperExpectation(
        artefact="Section 6 (optimal L1 vs L2 speed)",
        paper_says=(
            "As the L2 cycle time gets much above 4 CPU cycles, the "
            "optimal L1 size is significantly increased above its minimum."
        ),
        how_compared="joint L1-size/CPU-clock sweep per L2 speed",
    ),
    "E-3L": PaperExpectation(
        artefact="Section 6 outlook (deeper hierarchies)",
        paper_says=(
            "The multi-level conclusions are expected to generalise to "
            "future, deeper hierarchies."
        ),
        how_compared="L3 triad and execution time vs the 2-level machine",
    ),
    "A-AFFINE": PaperExpectation(
        artefact="Methodology ablation",
        paper_says="(ours) counts+affine sweep engine vs full timing",
        how_compared="absolute error at probe points",
    ),
    "A-WBUF": PaperExpectation(
        artefact="Footnote 2 (write effects)",
        paper_says=(
            "Writes are mostly hidden between reads thanks to write-back "
            "caches and deep write buffering."
        ),
        how_compared="execution time vs buffer depth",
    ),
    "A-GEN": PaperExpectation(
        artefact="Trace-substitution ablation",
        paper_says="(ours) stack-distance vs Zipf/IRM generator calibration",
        how_compared="survival curves per doubling",
    ),
    "A-PREF": PaperExpectation(
        artefact="Section 2 simulator feature (prefetching)",
        paper_says=(
            "The simulator models prefetching; classic sequential schemes "
            "should cut the L2 demand miss ratio at a bandwidth cost."
        ),
        how_compared="L2 miss ratio and memory traffic per scheme",
    ),
    "A-INCL": PaperExpectation(
        artefact="Reference [3] (Baer & Wang inclusion)",
        paper_says=(
            "(ours) enforced inclusion costs L1 hits, most when L2 is "
            "close to L1 in size; the paper's machine does not enforce it."
        ),
        how_compared="L1 miss ratio with/without back-invalidation",
    ),
    "A-BLOCK": PaperExpectation(
        artefact="Section 2 design choice (8-word L2 blocks)",
        paper_says=(
            "(ours) larger blocks trade miss ratio against transfer "
            "cycles on the fixed 4-word bus."
        ),
        how_compared="miss ratio and affine execution time per block size",
    ),
    "A-WPOL": PaperExpectation(
        artefact="Section 2 design choice (write-back L1)",
        paper_says=(
            "(ours) write-through multiplies downstream write traffic; "
            "write-back with buffering is at least as fast."
        ),
        how_compared="timing simulation and downstream write counts",
    ),
}
