"""Figures 3-1 and 3-2: L2 local/global/solo miss ratios versus L2 size.

The figures demonstrate the independence-of-layers result: the L2 *global*
miss ratio tracks the *solo* miss ratio once L2 is much larger than L1,
while the *local* miss ratio stays far above both because the L1 filters
the reference stream without removing L2 misses.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.metrics import MissRatioTriad, sweep_triads
from repro.experiments.base import Experiment, ExperimentReport
from repro.experiments.baseline import base_machine, l2_sweep_sizes
from repro.experiments.render import format_ratio, format_size
from repro.trace.record import Trace
from repro.units import KB


class MissRatioFigure(Experiment):
    """Shared engine for the two section 3 figures."""

    def __init__(self, experiment_id: str, l1_size: int) -> None:
        self.experiment_id = experiment_id
        self.l1_size = l1_size
        self.title = (
            f"L2 miss ratios vs L2 size, {format_size(l1_size)} L1 "
            "(local / global / solo)"
        )

    def sizes(self) -> List[int]:
        # The paper sweeps from (at least) the L1 size upward.
        return l2_sweep_sizes(minimum=self.l1_size)

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        config = base_machine(l1_size=self.l1_size)
        sizes = self.sizes()
        triads = sweep_triads(traces, config, sizes, level=2)
        rows = [
            [
                format_size(size),
                format_ratio(t.local),
                format_ratio(t.global_),
                format_ratio(t.solo),
                f"{t.global_solo_gap * 100:.1f}%",
            ]
            for size, t in zip(sizes, triads)
        ]
        checks = self.shape_checks(sizes, triads)
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=["L2 size", "local", "global", "solo", "|global-solo|/solo"],
            rows=rows,
            checks=checks,
            notes=[
                "local ratio uses references arriving at L2; global and solo "
                "use CPU reads (paper, section 2)",
            ],
        )

    def shape_checks(
        self, sizes: List[int], triads: List[MissRatioTriad]
    ) -> dict:
        """The paper's section 3 claims, evaluated on the measured data."""
        large = [
            t for size, t in zip(sizes, triads) if size >= 8 * self.l1_size
        ]
        small = [
            t for size, t in zip(sizes, triads) if size < 8 * self.l1_size
        ]
        checks = {
            "local miss ratio exceeds global at every size (L1 filters "
            "references, not misses)": all(
                t.local > t.global_ for t in triads
            ),
            "global ~ solo once L2 >= 8x L1 (layer independence)": bool(large)
            and all(t.global_solo_gap < 0.30 for t in large),
            "miss ratios fall monotonically with L2 size": all(
                triads[i].global_ >= triads[i + 1].global_ - 1e-6
                for i in range(len(triads) - 1)
            ),
        }
        if self.l1_size <= 4 * KB:
            if small and large:
                checks[
                    "global/solo agreement improves as the size ratio grows"
                ] = min(t.global_solo_gap for t in large) <= max(
                    t.global_solo_gap for t in small
                )
        else:
            # Figure 3-2's observation: with a large L1, the upstream cache
            # "disturbs the characteristics of the reference stream ...
            # sufficiently to noticeably perturb the L2 global miss ratio
            # from the solo miss ratio even for very large caches".
            checks[
                "upstream perturbation noticeable even at the largest sizes"
            ] = triads[-1].global_solo_gap > 0.02
        return checks


def fig3_1() -> MissRatioFigure:
    """Figure 3-1: 4 KB L1."""
    return MissRatioFigure("F3-1", l1_size=4 * KB)


def fig3_2() -> MissRatioFigure:
    """Figure 3-2: 32 KB L1 (independence needs a bigger size increment)."""
    return MissRatioFigure("F3-2", l1_size=32 * KB)
