"""Figures 5-1 through 5-3: cumulative break-even implementation times for
2-, 4- and 8-way set associativity over the L2 design plane.

Each cell reports, in nanoseconds, how much the set-associative
implementation may lengthen the L2 cycle time before it loses to the
direct-mapped cache of the same size -- the paper's shaded contour maps.
The TTL reference point (11 ns for a discrete 2:1 mux) divides the plane
into "associativity wins" and "associativity loses" regions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.breakeven import BreakevenMap, breakeven_map
from repro.experiments.base import Experiment, ExperimentReport
from repro.experiments.baseline import (
    BREAKEVEN_CONTOURS_NS,
    TTL_MUX_NS,
    base_machine,
    l2_sweep_sizes,
)
from repro.experiments.render import format_size, render_shaded_plane
from repro.trace.record import Trace
from repro.units import KB

#: Base (direct-mapped) L2 cycle times shown on the figures' Y axis.
BREAKEVEN_CYCLE_TIMES = [1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0]


class BreakevenFigure(Experiment):
    """One of the three section 5 maps."""

    def __init__(self, experiment_id: str, set_size: int, l1_size: int = 4 * KB) -> None:
        self.experiment_id = experiment_id
        self.set_size = set_size
        self.l1_size = l1_size
        self.title = (
            f"Cumulative break-even times (ns) for {set_size}-way L2 "
            f"associativity, {format_size(l1_size)} L1"
        )

    def compute(self, traces: Sequence[Trace]) -> BreakevenMap:
        config = base_machine(l1_size=self.l1_size)
        sizes = [s for s in l2_sweep_sizes(minimum=8 * KB)]
        return breakeven_map(
            traces,
            config,
            sizes,
            BREAKEVEN_CYCLE_TIMES,
            set_size=self.set_size,
            level=2,
        )

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        result = self.compute(traces)
        headers = ["L2 cycle \\ size"] + [format_size(s) for s in result.sizes]
        rows = []
        for j, cycle in enumerate(result.cycle_times):
            rows.append(
                [f"{int(cycle)} cyc"]
                + [f"{result.nanoseconds[i, j]:+.1f}" for i in range(len(result.sizes))]
            )
        budgets = result.nanoseconds
        checks = {
            "associativity buys time somewhere in the plane": bool(budgets.max() > 0),
            "small caches benefit most (budgets fall with L2 size)": bool(
                np.mean(budgets[0, :]) > np.mean(budgets[-1, :])
            ),
        }
        if self.set_size == 8:
            typical = budgets[
                : max(1, len(result.sizes) // 2), : len(result.cycle_times)
            ]
            checks[
                "8-way budgets of ~10-40 ns available over much of the plane"
            ] = bool(np.mean(typical >= 10.0) > 0.4)
        wins = float(np.mean(budgets >= TTL_MUX_NS))
        shaded = render_shaded_plane(
            col_labels=[format_size(s) for s in result.sizes],
            row_labels=[f"{int(c)} cyc" for c in result.cycle_times],
            values=budgets.T,
            thresholds=BREAKEVEN_CONTOURS_NS,
            title="break-even contours (ns), as in the paper's shading:",
        )
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=headers,
            rows=rows,
            checks=checks,
            notes=[
                f"TTL reference: {TTL_MUX_NS:g} ns (2:1 Advanced-Schottky mux); "
                f"{wins * 100:.0f}% of the plane clears it",
                shaded,
            ],
        )


def fig5_1() -> BreakevenFigure:
    return BreakevenFigure("F5-1", set_size=2)


def fig5_2() -> BreakevenFigure:
    return BreakevenFigure("F5-2", set_size=4)


def fig5_3() -> BreakevenFigure:
    return BreakevenFigure("F5-3", set_size=8)
