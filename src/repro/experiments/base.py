"""Experiment framework shared by every figure reproduction."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.render import render_table
from repro.trace.record import Trace


@dataclass
class ExperimentReport:
    """The result of one experiment: a paper-shaped table plus shape checks.

    ``checks`` maps a named paper claim to whether the measured data shows
    it; EXPERIMENTS.md aggregates these as the paper-versus-measured
    record.
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[str]]
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(render_table(self.headers, self.rows))
        if self.checks:
            lines.append("shape checks:")
            for name, passed in self.checks.items():
                lines.append(f"  [{'ok' if passed else 'FAIL'}] {name}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())


class Experiment(ABC):
    """One reproducible artefact (a figure, a table, or a claim)."""

    #: Identifier used by the CLI and DESIGN.md ("F3-1", "E-EQ1", ...).
    experiment_id: str = "?"
    title: str = "?"

    @abstractmethod
    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        """Execute the experiment on the given trace suite."""

    def run_recorded(
        self,
        traces: Sequence[Trace],
        journal=None,
        resume: bool = False,
    ) -> Tuple[ExperimentReport, "object"]:
        """Execute with a run manifest recording the sweeps.

        Returns ``(report, recorder)``; the recorder is a
        :class:`repro.audit.manifest.RunManifest` already annotated with
        the report's shape-check outcomes, ready to ``write()``.

        ``journal`` (a path) checkpoints every completed sweep cell to an
        append-only :mod:`repro.resilience.journal` file; with
        ``resume=True`` a re-run restores the journaled cells instead of
        re-simulating them, producing an identical report.
        """
        from contextlib import nullcontext

        from repro import telemetry
        from repro.audit import manifest as run_manifest
        from repro.resilience.journal import journaling

        journal_ctx = (
            journaling(journal, resume=resume, name=self.experiment_id)
            if journal is not None
            else nullcontext(None)
        )
        with run_manifest.recording(self.experiment_id) as recorder:
            recorder.add_traces(traces)
            with journal_ctx as active_journal:
                with telemetry.span("experiment." + self.experiment_id):
                    report = self.run(traces)
        recorder.annotate(
            title=report.title,
            checks={name: bool(ok) for name, ok in report.checks.items()},
            all_checks_pass=report.all_checks_pass,
        )
        if active_journal is not None:
            recorder.annotate(
                journal={
                    "path": str(active_journal.path),
                    "resumed": resume,
                    "cells_recorded": active_journal.recorded,
                    "cells_restorable": active_journal.restorable_cells,
                }
            )
        return report, recorder

    def run_default(self) -> ExperimentReport:
        """Execute on the standard paper trace suite."""
        from repro.experiments.workloads import paper_trace_suite

        return self.run(paper_trace_suite())
