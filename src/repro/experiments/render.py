"""Plain-text rendering helpers for experiment output."""

from __future__ import annotations

from typing import Sequence

from repro.units import KB, MB


def format_size(size_bytes: int) -> str:
    """"4KB", "512KB", "4MB", "64B" -- the paper's axis labels."""
    if size_bytes >= MB and size_bytes % MB == 0:
        return f"{size_bytes // MB}MB"
    if size_bytes >= KB and size_bytes % KB == 0:
        return f"{size_bytes // KB}KB"
    return f"{size_bytes}B"


def format_ratio(value: float) -> str:
    return f"{value:.4f}"


def format_ns(value: float) -> str:
    return f"{value:.1f}"


#: Shade characters from "below every threshold" upward.
SHADE_LEVELS = " .:*#@"


def render_shaded_plane(
    col_labels: Sequence[str],
    row_labels: Sequence[str],
    values,
    thresholds: Sequence[float],
    title: str = "",
) -> str:
    """Render a design plane as a shaded contour map, like the paper's
    Figures 4-2 .. 5-3.

    ``values[row][col]`` is shaded by how many of ``thresholds`` it meets
    or exceeds; the legend maps the shade characters back to ranges.
    """
    thresholds = sorted(thresholds)
    if len(thresholds) >= len(SHADE_LEVELS):
        raise ValueError(
            f"at most {len(SHADE_LEVELS) - 1} thresholds are supported"
        )
    label_width = max((len(str(label)) for label in row_labels), default=0)
    cell = max(len(str(label)) for label in col_labels) + 1
    lines = []
    if title:
        lines.append(title)
    header = " " * (label_width + 2) + "".join(
        str(label).rjust(cell) for label in col_labels
    )
    lines.append(header)
    for r, row_label in enumerate(row_labels):
        cells = []
        for c in range(len(col_labels)):
            value = values[r][c]
            shade = sum(1 for t in thresholds if value >= t)
            cells.append((SHADE_LEVELS[shade] * 2).rjust(cell))
        lines.append(str(row_label).rjust(label_width) + "  " + "".join(cells))
    legend_parts = [f"'{SHADE_LEVELS[0]}' < {thresholds[0]:g}"]
    for i, threshold in enumerate(thresholds):
        upper = (
            f" < {thresholds[i + 1]:g}" if i + 1 < len(thresholds) else "+"
        )
        legend_parts.append(f"'{SHADE_LEVELS[i + 1]}' {threshold:g}{upper}")
    lines.append("legend: " + "  ".join(legend_parts))
    return "\n".join(lines)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width table with right-aligned numeric-looking cells."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells but the table has {columns} columns"
            )
    widths = [
        max(len(str(headers[c])), *(len(str(row[c])) for row in rows)) if rows
        else len(str(headers[c]))
        for c in range(columns)
    ]

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).rjust(widths[c]) for c, cell in enumerate(cells))

    lines = [render_row(headers)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)
