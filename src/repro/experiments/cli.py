"""``mlcache`` command-line interface.

Examples::

    mlcache list                      # show every experiment id
    mlcache run F3-1                  # reproduce Figure 3-1
    mlcache run all -o results/       # everything, saved per experiment
    mlcache simulate machine.cfg      # run a config-file machine, like the
                                      # paper's simulator input files
    mlcache trace save t.npz t.mlt    # convert to the memmap store format
    mlcache trace info t.mlt          # header, digest, segment offsets
    mlcache doctor results/ --fix     # scan artifacts, repair crash residue
    mlcache telemetry report          # per-phase timing from a telemetry sink
    mlcache telemetry export -o t.json   # Chrome/Perfetto trace for ui.perfetto.dev
    REPRO_RECORDS=1000000 REPRO_TRACES=8 mlcache run F4-2   # paper scale
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.experiments.registry import experiment_ids, make_experiment
from repro.experiments.workloads import paper_trace_suite


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mlcache",
        description=(
            "Reproduce the figures and analytical claims of Przybylski, "
            "Horowitz & Hennessy, 'Characteristics of Performance-Optimal "
            "Multi-Level Cache Hierarchies' (ISCA 1989)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run = sub.add_parser("run", help="run one experiment, or 'all'")
    run.add_argument("experiment", help="experiment id (e.g. F3-1) or 'all'")
    run.add_argument(
        "-o", "--output", type=Path, default=None,
        help="directory to save rendered reports into",
    )
    run.add_argument(
        "--records", type=int, default=None,
        help="records per trace (default: REPRO_RECORDS or 250000)",
    )
    run.add_argument(
        "--traces", type=int, default=None,
        help="number of traces, up to 8 (default: REPRO_TRACES or 4)",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="resume from the per-experiment checkpoint journal in the "
             "output directory (requires -o); completed sweep cells are "
             "restored instead of re-simulated",
    )
    sim = sub.add_parser(
        "simulate",
        help="simulate a machine described by a config file on the "
             "standard workload suite",
    )
    sim.add_argument("config", type=Path, help="machine description file")
    sim.add_argument("--records", type=int, default=None)
    sim.add_argument("--traces", type=int, default=None)
    sim.add_argument(
        "--timing", action="store_true",
        help="also run the (slower) timing simulator for CPI",
    )
    lint = sub.add_parser(
        "lint",
        help="run the repro static-analysis rules over source trees "
             "(same engine as python -m repro.lint; see "
             "docs/static-analysis.md)",
    )
    lint.add_argument(
        "lint_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.lint "
             "(paths, --format, --select, --baseline, ...)",
    )
    doctor = sub.add_parser(
        "doctor",
        help="scan artifact directories (trace stores, journals, "
             "manifests, locks) for corruption and crash residue; "
             "repair with --fix (see docs/resilience.md)",
    )
    doctor.add_argument(
        "doctor_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.resilience.doctor "
             "(paths, --fix, --json)",
    )
    tele = sub.add_parser(
        "telemetry",
        help="inspect a sweep telemetry sink recorded with "
             "REPRO_TELEMETRY=1: 'report' prints a per-phase time table, "
             "'export' writes a Chrome/Perfetto trace "
             "(see docs/observability.md)",
    )
    tele.add_argument(
        "telemetry_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.telemetry.cli "
             "(report|export, sink path, -o)",
    )
    trace = sub.add_parser(
        "trace",
        help="convert and inspect memmap trace store files "
             "(.mlt; see docs/workloads.md)",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_save = trace_sub.add_parser(
        "save",
        help="convert a .npz or .din trace into the store format, which "
             "opens O(1) as memory-mapped views",
    )
    trace_save.add_argument("input", type=Path, help=".npz or .din trace file")
    trace_save.add_argument(
        "output", type=Path, help="store file to write (conventionally .mlt)"
    )
    trace_info = trace_sub.add_parser(
        "info",
        help="print a store file's header without touching its data pages",
    )
    trace_info.add_argument("path", type=Path, help="store (.mlt) file")
    report = sub.add_parser(
        "report",
        help="assemble EXPERIMENTS.md from saved results/ reports",
    )
    report.add_argument(
        "--results", type=Path, default=Path("results"),
        help="directory of saved experiment reports",
    )
    report.add_argument(
        "-o", "--output", type=Path, default=Path("EXPERIMENTS.md"),
    )
    return parser


def _run_one(
    experiment_id: str, traces, output: Optional[Path], resume: bool = False
) -> bool:
    experiment = make_experiment(experiment_id)
    started = time.time()
    journal = (
        output / f"{experiment_id}.journal.jsonl" if output is not None else None
    )
    report, recorder = experiment.run_recorded(
        traces, journal=journal, resume=resume
    )
    elapsed = time.time() - started
    text = report.render() + f"\n({elapsed:.1f}s)\n"
    print(text)
    if output is not None:
        from repro.resilience.integrity import atomic_write_text

        output.mkdir(parents=True, exist_ok=True)
        atomic_write_text(output / f"{report.experiment_id}.txt", text)
        recorder.write(output / f"{report.experiment_id}.manifest.json")
    return report.all_checks_pass


def _simulate(args) -> int:
    from repro.experiments.render import format_ratio, format_size, render_table
    from repro.sim import TimingSimulator, parse_config, run_functional

    config = parse_config(args.config.read_text())
    traces = paper_trace_suite(records=args.records, count=args.traces)
    merged = None
    cpu_reads = 0
    memory_reads = memory_writes = 0
    for trace in traces:
        result = run_functional(trace, config)
        cpu_reads += result.cpu_reads
        memory_reads += result.memory_reads
        memory_writes += result.memory_writes
        if merged is None:
            merged = result.level_stats
        else:
            merged = [a.merge(b) for a, b in zip(merged, result.level_stats)]
    rows = []
    for i, stats in enumerate(merged, start=1):
        level = config.levels[i - 1]
        rows.append(
            [
                f"L{i}",
                format_size(level.size_bytes),
                f"{level.associativity}-way",
                format_ratio(stats.read_miss_ratio),
                format_ratio(stats.read_misses / cpu_reads if cpu_reads else 0.0),
                str(stats.writebacks),
            ]
        )
    print(f"machine: {args.config}")
    print(
        render_table(
            ["level", "size", "assoc", "local read miss", "global read miss",
             "writebacks"],
            rows,
        )
    )
    print(f"memory traffic: {memory_reads} block reads, {memory_writes} block writes")
    if args.timing:
        total_ns = instructions = 0.0
        for trace in traces:
            timing = TimingSimulator(config).run(trace)
            total_ns += timing.total_ns
            instructions += timing.instructions
        cpi = (total_ns / config.cpu.cycle_ns) / instructions
        print(f"timing: {cpi:.3f} cycles per instruction "
              f"({total_ns / 1e6:.2f} ms simulated)")
    return 0


def _trace(args) -> int:
    import json

    from repro.trace.record import Trace
    from repro.trace.store import TraceStore

    if args.trace_command == "save":
        if args.input.suffix == ".din":
            from repro.trace.dinero import read_dinero

            trace = read_dinero(args.input)
        else:
            trace = Trace.load(args.input)
        store = TraceStore.save(trace, args.output)
        size = args.output.stat().st_size
        print(
            f"wrote {args.output}: {store.records} records, "
            f"warmup {store.warmup}, {size} bytes"
        )
        print(f"digest {store.digest}")
        return 0
    store = TraceStore.open(args.path)
    print(store.path)
    print(f"  name      {store.name}")
    print(f"  records   {store.records}")
    print(f"  warmup    {store.warmup}")
    print(f"  digest    {store.digest}")
    print(f"  segments  kinds@{store.kinds_offset} addresses@{store.addresses_offset}")
    if store.metadata:
        print(f"  metadata  {json.dumps(store.metadata, sort_keys=True)}")
    return 0


def _report(args) -> int:
    from repro.experiments.expectations import EXPECTATIONS

    lines = [
        "# EXPERIMENTS — paper versus measured",
        "",
        "Generated by ``mlcache report`` from the rendered experiment",
        "reports in ``results/`` (regenerate them with",
        "``pytest benchmarks/ --benchmark-only`` or ``mlcache run all -o",
        "results/``).  Absolute numbers are not expected to match the",
        "paper -- the workload is a calibrated synthetic stand-in for its",
        "proprietary traces (DESIGN.md section 2) -- but every *shape*",
        "claim is checked mechanically: the ``[ok]``/``[FAIL]`` lines in",
        "each block are asserted by the benchmark suite.",
        "",
    ]
    missing = []
    for experiment_id, expectation in EXPECTATIONS.items():
        path = args.results / f"{experiment_id}.txt"
        lines.append(f"## {experiment_id}: {expectation.artefact}")
        lines.append("")
        lines.append(f"**Paper:** {expectation.paper_says}")
        lines.append("")
        lines.append(f"**Comparison:** {expectation.how_compared}")
        lines.append("")
        if path.exists():
            lines.append("**Measured:**")
            lines.append("")
            lines.append("```")
            lines.append(path.read_text().rstrip())
            lines.append("```")
        else:
            missing.append(experiment_id)
            lines.append("*(no saved report; run the benchmark)*")
        lines.append("")
    from repro.resilience.integrity import atomic_write_text

    atomic_write_text(args.output, "\n".join(lines))
    print(f"wrote {args.output} ({len(EXPECTATIONS) - len(missing)} measured, "
          f"{len(missing)} missing)")
    if missing:
        print("missing:", ", ".join(missing))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Dispatched before argparse: the lint front end owns its own flags,
    # and argparse.REMAINDER refuses option-shaped leading tokens.
    if argv[:1] == ["lint"]:
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    # Same pattern for the artifact doctor (see docs/resilience.md).
    if argv[:1] == ["doctor"]:
        from repro.resilience.doctor import main as doctor_main

        return doctor_main(argv[1:])
    # And for the telemetry tools (see docs/observability.md).
    if argv[:1] == ["telemetry"]:
        from repro.telemetry.cli import main as telemetry_main

        return telemetry_main(argv[1:])
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    if args.command == "simulate":
        return _simulate(args)
    if args.command == "trace":
        return _trace(args)
    if args.command == "report":
        return _report(args)
    if args.resume and args.output is None:
        print("mlcache run: --resume requires -o/--output (the checkpoint "
              "journal lives in the output directory)", file=sys.stderr)
        return 2
    targets = (
        experiment_ids() if args.experiment.lower() == "all" else [args.experiment]
    )
    traces = paper_trace_suite(records=args.records, count=args.traces)
    ok = True
    for experiment_id in targets:
        ok = _run_one(experiment_id, traces, args.output, resume=args.resume) and ok
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
