"""Experiment layer: one runnable reproduction per paper artefact.

``mlcache list`` / ``mlcache run <id>`` drive these from the command line;
``benchmarks/`` wraps each in a pytest-benchmark target.  The per-experiment
index lives in DESIGN.md section 5.
"""

from repro.experiments.base import Experiment, ExperimentReport
from repro.experiments.baseline import (
    base_machine,
    l2_sweep_sizes,
    solo_l2_machine,
)
from repro.experiments.registry import experiment_ids, make_experiment
from repro.experiments.workloads import build_trace, paper_trace_suite

__all__ = [
    "Experiment",
    "ExperimentReport",
    "base_machine",
    "solo_l2_machine",
    "l2_sweep_sizes",
    "experiment_ids",
    "make_experiment",
    "paper_trace_suite",
    "build_trace",
]
