"""Figures 4-1 through 4-4: the L2 speed-size tradeoff.

* Figure 4-1 plots relative execution time against L2 size, one curve per
  L2 cycle time (1..10 CPU cycles).
* Figures 4-2 and 4-3 map lines of constant performance onto the
  (L2 size, L2 cycle time) plane for 4 KB and 32 KB L1 caches and shade
  regions by slope (0.75 / 1.5 / 3 CPU cycles per size doubling).
* Figure 4-4 repeats 4-2 with main memory twice as slow; the slope regions
  shift right by about a factor of two in cache size.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.constant_performance import (
    lines_of_constant_performance,
    slope_field,
    slope_region_boundary,
)
from repro.core.design_space import SpeedSizeGrid, execution_time_grid
from repro.experiments.base import Experiment, ExperimentReport
from repro.experiments.baseline import (
    L2_CYCLE_TIMES,
    PERFORMANCE_LEVELS,
    SLOPE_THRESHOLDS,
    base_machine,
    l2_sweep_sizes,
)
from repro.experiments.render import format_size, render_shaded_plane
from repro.trace.record import Trace
from repro.units import KB


def build_grid(
    traces: Sequence[Trace],
    l1_size: int = 4 * KB,
    memory_scale: float = 1.0,
    sizes: Optional[List[int]] = None,
) -> SpeedSizeGrid:
    """The execution-time surface behind all four figures."""
    config = base_machine(l1_size=l1_size, memory_scale=memory_scale)
    sizes = sizes if sizes is not None else l2_sweep_sizes(minimum=max(4 * KB, l1_size))
    return execution_time_grid(traces, config, sizes, L2_CYCLE_TIMES, level=2)


class SpeedSizeCurves(Experiment):
    """Figure 4-1: relative execution time vs L2 size per cycle time."""

    experiment_id = "F4-1"
    title = "Relative execution time vs L2 size, one curve per L2 cycle time (4KB L1)"

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        grid = build_grid(traces)
        relative = grid.relative
        headers = ["L2 size"] + [f"c={int(c)}" for c in grid.cycle_times]
        rows = [
            [format_size(size)] + [f"{relative[i, j]:.3f}" for j in range(len(grid.cycle_times))]
            for i, size in enumerate(grid.sizes)
        ]
        checks = {
            "execution time rises with L2 cycle time at every size": bool(
                np.all(np.diff(grid.total_cycles, axis=1) > 0)
            ),
            "benefit of size growth diminishes for large caches": self._diminishing(grid),
            "cycle-time effect is nearly independent of cache size":
                self._cycle_effect_uniform(grid),
            "meaningful dynamic range across the design space (>1.3x)": bool(
                relative.max() >= 1.3
            ),
        }
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=headers,
            rows=rows,
            checks=checks,
            notes=["relative to the best machine in the grid, as in Figure 4-1"],
        )

    @staticmethod
    def _diminishing(grid: SpeedSizeGrid) -> bool:
        column = grid.column(3.0)
        gains = -np.diff(column)
        # First doubling must buy more than the last one.
        return bool(gains[0] > gains[-1])

    @staticmethod
    def _cycle_effect_uniform(grid: SpeedSizeGrid) -> bool:
        """dT/dc (the affine slope) should vary far less with size than the
        miss-driven base does."""
        events = np.array([m.events_per_cycle for m in grid.models])
        bases = np.array([m.base for m in grid.models])
        return bool(
            (events.max() - events.min()) / events.mean()
            < (bases.max() - bases.min()) / bases.mean() * 3
        )


class ConstantPerformanceFigure(Experiment):
    """Figures 4-2 / 4-3 / 4-4: lines of constant performance and slope
    regions over the (size, cycle time) plane."""

    def __init__(
        self,
        experiment_id: str,
        l1_size: int = 4 * KB,
        memory_scale: float = 1.0,
        reference: Optional["ConstantPerformanceFigure"] = None,
        expected_shift: Optional[float] = None,
    ) -> None:
        self.experiment_id = experiment_id
        self.l1_size = l1_size
        self.memory_scale = memory_scale
        self.reference = reference
        self.expected_shift = expected_shift
        descriptor = f"{format_size(l1_size)} L1"
        if memory_scale != 1.0:
            descriptor += f", memory {memory_scale:g}x slower"
        self.title = f"Lines of constant performance ({descriptor})"

    LEVELS = [level for level in PERFORMANCE_LEVELS if level <= 2.7]

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        grid = build_grid(traces, l1_size=self.l1_size, memory_scale=self.memory_scale)
        lines = lines_of_constant_performance(grid, self.LEVELS)
        headers = ["rel. time"] + [format_size(s) for s in grid.sizes]
        rows = []
        for k, level in enumerate(lines.levels):
            cells = [
                "-" if not np.isfinite(c) else f"{c:.2f}"
                for c in lines.cycle_at[k]
            ]
            rows.append([f"{level:.1f}"] + cells)
        # Slope-region boundaries at the base cycle time.
        boundary_rows = []
        for threshold in SLOPE_THRESHOLDS:
            boundary = slope_region_boundary(grid, threshold, cycle_time=3.0)
            boundary_rows.append(
                f"slope {threshold:g} cycles/doubling boundary: "
                + (format_size(int(boundary)) if boundary else "beyond grid")
            )
        field = slope_field(grid)
        shaded = render_shaded_plane(
            col_labels=[format_size(s) for s in grid.sizes[:-1]],
            row_labels=[f"c={int(c)}" for c in grid.cycle_times],
            values=field.T,
            thresholds=SLOPE_THRESHOLDS,
            title="slope regions (CPU cycles per doubling, as in the "
                  "paper's shading):",
        )
        steps = np.diff(lines.cycle_at, axis=1)
        checks = {
            # Strictly rising until the miss curve's plateau, where the
            # lines go flat (the paper's very-large-cache regime).
            "iso-performance lines rise to the right (size buys cycle time)": bool(
                np.nanmin(steps) >= -1e-9 and np.nanmax(steps) > 0
            ),
            "slopes fall as the cache grows (regions ordered left to right)": bool(
                np.all(field[0, :] >= field[-1, :])
            ),
        }
        if self.l1_size <= 4 * KB:
            # The paper's leftmost shaded region (4 KB L1 planes only);
            # its >= 3 cycles/doubling slopes live at the 4-8 KB edge, where
            # our synthetic miss levels run slightly shallower, so the
            # check admits a 20% band.
            checks[
                "steep region slopes reach ~3 CPU cycles per doubling at "
                "the smallest caches"
            ] = bool(field.max() >= 2.4)
        notes = boundary_rows + [shaded]
        if self.reference is not None and self.expected_shift is not None:
            self._add_shift_checks(traces, grid, lines, field, checks, notes)
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=headers,
            rows=rows,
            checks=checks,
            notes=notes,
        )

    def _add_shift_checks(
        self, traces, grid, lines, field, checks, notes
    ) -> None:
        reference_grid = build_grid(
            traces,
            l1_size=self.reference.l1_size,
            memory_scale=self.reference.memory_scale,
        )
        if self.memory_scale != self.reference.memory_scale:
            # Figure 4-4: the slope regions move right ~2x in cache size.
            from repro.core.constant_performance import horizontal_shift

            shifts = []
            for threshold in SLOPE_THRESHOLDS:
                shift = horizontal_shift(
                    reference_grid, grid, threshold, cycle_time=3.0
                )
                if shift is not None:
                    shifts.append(shift)
            if shifts:
                measured = float(np.exp(np.mean(np.log(shifts))))
                checks[
                    f"slope regions shifted right ~{self.expected_shift:g}x "
                    "(slower memory skews toward size)"
                ] = bool(
                    self.expected_shift * 0.6 <= measured <= self.expected_shift * 1.7
                )
                notes.append(f"measured region-boundary shift: {measured:.2f}x")
        else:
            # Figure 4-3: the slope structure of the lines sits to the
            # right of the reference family's (paper: 1.74x measured, 2.04x
            # predicted, for 8x L1), and the larger L1 limits the maximum
            # slope.  Both planes are evaluated on a common size grid and
            # boundaries clipped at the grid edge are skipped.
            from repro.core.constant_performance import horizontal_shift

            common = build_grid(
                traces,
                l1_size=self.reference.l1_size,
                memory_scale=self.memory_scale,
                sizes=grid.sizes,
            )
            shifts = []
            for threshold in (0.3, 0.5, 0.75):
                a = slope_region_boundary(common, threshold, cycle_time=3.0)
                b = slope_region_boundary(grid, threshold, cycle_time=3.0)
                edge = float(grid.sizes[0])
                if a is None or b is None or a <= edge or b <= edge:
                    continue
                shifts.append(b / a)
            if shifts:
                measured = float(np.exp(np.mean(np.log(shifts))))
                checks[
                    f"slope structure shifted right ~{self.expected_shift:g}x "
                    "vs the smaller-L1 plane"
                ] = bool(
                    self.expected_shift * 0.6 <= measured <= self.expected_shift * 1.7
                )
                notes.append(f"measured line shift: {measured:.2f}x")
            reference_field = slope_field(reference_grid)
            checks[
                "larger L1 limits the maximum slope of the lines"
            ] = bool(field.max() <= reference_field.max())


def fig4_1() -> SpeedSizeCurves:
    return SpeedSizeCurves()


def fig4_2() -> ConstantPerformanceFigure:
    return ConstantPerformanceFigure("F4-2", l1_size=4 * KB)


def fig4_3() -> ConstantPerformanceFigure:
    """Figure 4-3: 32 KB L1; the paper measures a 1.74x right-shift of the
    lines relative to Figure 4-2 (8x L1 growth)."""
    return ConstantPerformanceFigure(
        "F4-3", l1_size=32 * KB, reference=fig4_2(), expected_shift=1.74
    )


def fig4_4() -> ConstantPerformanceFigure:
    """Figure 4-4: memory 2x slower shifts the slope regions right ~2x."""
    return ConstantPerformanceFigure(
        "F4-4", l1_size=4 * KB, memory_scale=2.0, reference=fig4_2(),
        expected_shift=2.0,
    )
