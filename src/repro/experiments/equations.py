"""Equation and text-claim reproductions (E-EQ1..3, E-R5, E-CONC).

These experiments check the paper's analytical spine against the
simulators: Equation 1 versus measured execution time, the Equation 2
optimal-size behaviour, the Equation 3 break-even scaling with L1 size, the
0.69-per-doubling miss-rate characterisation, and the conclusions'
single-level-versus-multi-level shift quantification.
"""

from __future__ import annotations

import math
from typing import List, Sequence


from repro.analytical.execution_time import model_from_functional
from repro.analytical.missrate import fit_power_law
from repro.analytical.tradeoff import optimal_size_shift_per_l1_doubling
from repro.core.breakeven import breakeven_map
from repro.core.metrics import measure_triad, sweep_triads
from repro.core.optimizer import HierarchyOptimizer, TechnologyModel
from repro.core.sweep import sweep_functional, sweep_timing
from repro.experiments.base import Experiment, ExperimentReport
from repro.experiments.baseline import base_machine, l2_sweep_sizes, solo_l2_machine
from repro.experiments.render import format_ratio, format_size
from repro.trace.record import Trace
from repro.units import KB


class EquationOneValidation(Experiment):
    """E-EQ1: Equation 1 versus the timing simulator, per trace."""

    experiment_id = "E-EQ1"
    title = "Equation 1 cycle count vs timing simulation"

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        config = base_machine(l2_size=128 * KB)
        rows: List[List[str]] = []
        errors = []
        functional_row = sweep_functional(traces, [config])[0]
        timing_row = sweep_timing(traces, [config])[0]
        for trace, functional, timing in zip(traces, functional_row, timing_row):
            model = model_from_functional(functional, config)
            predicted = model.total_cycles(functional.cpu_reads)
            measured = (timing.total_ns - timing.write_stall_ns) / config.cpu.cycle_ns
            error = predicted / measured - 1.0
            errors.append(error)
            rows.append(
                [
                    trace.name,
                    f"{predicted:.0f}",
                    f"{measured:.0f}",
                    f"{error * 100:+.1f}%",
                ]
            )
        checks = {
            "Equation 1 within 10% of simulation on every trace": all(
                abs(e) < 0.10 for e in errors
            ),
        }
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=["trace", "Eq.1 cycles", "simulated (read side)", "error"],
            rows=rows,
            checks=checks,
            notes=[
                "simulated read side = total minus write stalls (Equation 1 "
                "excludes write effects; paper footnote 2)",
            ],
        )


class OptimalSizeShift(Experiment):
    """E-EQ2: the optimal L2 size grows as the L1 improves."""

    experiment_id = "E-EQ2"
    title = "Optimal L2 size vs L1 size (Equation 2 behaviour)"

    L1_SIZES = [2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB]

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        technology = TechnologyModel(
            base_size=16 * KB, base_ns=25.0, ns_per_doubling=5.0,
            ns_per_way_doubling=11.0,
        )
        sizes = l2_sweep_sizes(minimum=8 * KB)
        rows = []
        optima = []
        l1_misses = []
        for l1_size in self.L1_SIZES:
            config = base_machine(l1_size=l1_size)
            optimizer = HierarchyOptimizer(config, technology, traces)
            best = optimizer.optimize(sizes, set_sizes=(1,)).best
            triad = measure_triad(traces, config, level=1)
            optima.append(best.l2_size)
            l1_misses.append(triad.global_)
            rows.append(
                [
                    format_size(l1_size),
                    format_ratio(triad.global_),
                    format_size(best.l2_size),
                    f"{best.l2_cycle_cpu_cycles:.0f} cyc",
                ]
            )
        alpha = -math.log2(0.69)
        predicted = optimal_size_shift_per_l1_doubling(alpha, 0.69, "linear")
        checks = {
            "optimal L2 size never shrinks as L1 grows": all(
                optima[i + 1] >= optima[i] for i in range(len(optima) - 1)
            ),
            "L1 miss ratio falls as L1 grows": all(
                l1_misses[i + 1] < l1_misses[i] for i in range(len(l1_misses) - 1)
            ),
        }
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=["L1 size", "L1 global miss", "optimal L2", "L2 cycle"],
            rows=rows,
            checks=checks,
            notes=[
                f"paper's analytic shift: ~{math.log2(predicted):.2f} powers of "
                "two of optimal L2 size per L1 doubling (about a third)",
            ],
        )


class BreakevenL1Scaling(Experiment):
    """E-EQ3: break-even times multiply by ~1.45 per L1 doubling."""

    experiment_id = "E-EQ3"
    title = "Break-even time scaling with L1 size (Equation 3)"

    L1_SIZES = [4 * KB, 8 * KB, 16 * KB]

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        sizes = [16 * KB, 64 * KB]
        cycles = [3.0]
        rows = []
        means = []
        l1_misses = []
        for l1_size in self.L1_SIZES:
            config = base_machine(l1_size=l1_size)
            result = breakeven_map(traces, config, sizes, cycles, set_size=8)
            mean_budget = float(result.nanoseconds.mean())
            means.append(mean_budget)
            l1_misses.append(measure_triad(traces, config, level=1).global_)
            rows.append(
                [
                    format_size(l1_size),
                    format_ratio(l1_misses[-1]),
                    f"{mean_budget:.1f}",
                ]
            )
        factors = [
            means[i + 1] / means[i] for i in range(len(means) - 1) if means[i] > 0
        ]
        # Equation 3 predicts the budgets scale with 1/M_L1; compute the
        # prediction from the *measured* L1 miss ratios rather than the
        # nominal 1.45, then check the measured map tracks it.  The map
        # sits below the prediction because Equation 3 ignores store-side
        # L2 occupancy (see tests/core/test_breakeven.py).
        predicted = [
            l1_misses[i] / l1_misses[i + 1] for i in range(len(l1_misses) - 1)
        ]
        tracking = [
            f / p for f, p in zip(factors, predicted) if p > 0
        ]
        checks = {
            "budgets grow with every L1 doubling": all(f > 1.0 for f in factors),
            "growth tracks Equation 3's 1/M_L1 prediction (within 2x)": all(
                0.5 <= t <= 1.5 for t in tracking
            ),
        }
        notes = [
            "paper: each L1 doubling multiplies break-even times by ~1.45 "
            "(the inverse of the 0.69 miss-ratio factor)",
        ]
        if factors:
            notes.append(
                "measured factors per doubling: "
                + ", ".join(f"{f:.2f}" for f in factors)
                + "; Equation 3 predicts "
                + ", ".join(f"{p:.2f}" for p in predicted)
            )
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=["L1 size", "L1 global miss", "mean 8-way break-even (ns)"],
            rows=rows,
            checks=checks,
            notes=notes,
        )


class MissRatePowerLaw(Experiment):
    """E-R5: the solo miss ratio falls by ~0.69 per size doubling."""

    experiment_id = "E-R5"
    title = "Solo miss ratio power law (0.69 per doubling)"

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        sizes = l2_sweep_sizes(minimum=4 * KB)
        ratios = []
        rows = []
        configs = [solo_l2_machine(l2_size=size) for size in sizes]
        results = sweep_functional(traces, configs)
        for size, row_results in zip(sizes, results):
            misses = sum(r.level_stats[0].read_misses for r in row_results)
            reads = sum(r.cpu_reads for r in row_results)
            ratio = misses / reads
            ratios.append(ratio)
            rows.append([format_size(size), format_ratio(ratio)])
        # Fit the power-law region (exclude the compulsory plateau: keep
        # points while successive factors stay below ~0.85).
        cut = len(ratios)
        for i in range(1, len(ratios)):
            if ratios[i] / ratios[i - 1] > 0.85:
                cut = i
                break
        cut = max(cut, 3)
        model, r2 = fit_power_law(sizes[:cut], ratios[:cut])
        factors = [ratios[i + 1] / ratios[i] for i in range(cut - 1)]
        checks = {
            "power-law fit is tight in the pre-plateau region (R^2 > 0.95)":
                r2 > 0.95,
            "per-doubling factor near the paper's 0.69": bool(
                0.60 <= model.doubling_factor <= 0.80
            ),
        }
        for size, factor in zip(sizes[1:cut], factors):
            rows[sizes.index(size)].append(f"{factor:.3f}")
        padded = [row + [""] * (3 - len(row)) for row in rows]
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=["cache size", "solo miss ratio", "factor vs previous"],
            rows=padded,
            checks=checks,
            notes=[
                f"fitted doubling factor {model.doubling_factor:.3f} "
                f"(alpha={model.alpha:.3f}, R^2={r2:.3f}) over "
                f"{format_size(sizes[0])}..{format_size(sizes[cut - 1])}",
                "the plateau beyond the fit region is the trace-footprint "
                "limit, as in the paper's very-large-cache remark",
            ],
        )


class OptimalL1VersusL2Speed(Experiment):
    """E-L1OPT: the optimal L1 size versus the L2 cycle time (section 6).

    The CPU clock is set by the on-chip L1 (bigger is slower); the L2's
    speed sets the L1 miss penalty.  Section 6 concludes that a fast L2
    keeps the optimal L1 small and fast, while "as the L2 cycle time gets
    much above 4 CPU cycles, the optimal L1 cache size is significantly
    increased above its minimum."
    """

    experiment_id = "E-L1OPT"
    title = "Optimal L1 size vs L2 speed (section 6)"

    L1_SIZES = [1 * KB, 2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB]
    #: L2 SRAM cycle times in nanoseconds.
    L2_SPEEDS_NS = [20.0, 40.0, 80.0, 120.0]

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        from repro.core.optimizer import TechnologyModel, optimal_l1_sweep

        # On-chip L1 technology: 10 ns at 4 KB, each doubling costs 1.5 ns.
        l1_technology = TechnologyModel(
            base_size=4 * KB, base_ns=10.0, ns_per_doubling=1.5,
            ns_per_way_doubling=0.0,
        )
        sweeps = optimal_l1_sweep(
            base_machine(), l1_technology, traces,
            self.L1_SIZES, self.L2_SPEEDS_NS,
        )
        rows = []
        optima = []
        for l2_ns, candidates in zip(self.L2_SPEEDS_NS, sweeps):
            best = min(candidates, key=lambda c: c.total_ns)
            optima.append(best.l1_size)
            rows.append(
                [
                    f"{l2_ns:g} ns",
                    format_size(best.l1_size),
                    f"{best.cpu_cycle_ns:g} ns",
                    f"{best.l2_cycle_cpu_cycles:.0f}",
                ]
            )
        checks = {
            "optimal L1 never shrinks as the L2 slows": all(
                optima[i + 1] >= optima[i] for i in range(len(optima) - 1)
            ),
            "a slow L2 pushes the optimal L1 above its minimum": bool(
                optima[-1] > min(self.L1_SIZES)
            ),
        }
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=["L2 cycle", "optimal L1", "CPU cycle", "L2 cyc (CPU)"],
            rows=rows,
            checks=checks,
            notes=[
                "the CPU clocks at the L1's cycle time, so growing the L1 "
                "taxes every instruction; a slower L2 makes that tax worth "
                "paying (the paper's closing tension)",
            ],
        )


class ConclusionShifts(Experiment):
    """E-CONC: the conclusions' quantified shifts.

    * Adding a 4 KB L1 (~10% global miss) shifts the L2 lines of constant
      performance right by about seven binary orders of magnitude versus
      the single-level case (the 1/M_L1 factor through Equation 2).
    * Each L1 doubling shifts the curves ~0.24 powers of two.
    """

    experiment_id = "E-CONC"
    title = "Single-level vs multi-level design-point shifts (section 6)"

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        config = base_machine()
        l1 = measure_triad(traces, config, level=1)
        # Fit the measured solo curve for the analytic shift.
        sizes = l2_sweep_sizes(minimum=4 * KB)
        triads = sweep_triads(traces, config, sizes, level=2)
        solos = [t.solo for t in triads]
        cut = len(solos)
        for i in range(1, len(solos)):
            if solos[i] / solos[i - 1] > 0.85:
                cut = i
                break
        cut = max(cut, 3)
        model, _ = fit_power_law(sizes[:cut], solos[:cut])
        # Boundary where the iso-performance slope crosses a threshold obeys
        # M(C) * (1 - f) * t_MM / M_L1 = threshold, so the single-level ->
        # two-level shift is M_L1 ** (-1/alpha).
        shift_orders = -math.log2(l1.global_) / model.alpha
        per_doubling = math.log2(
            optimal_size_shift_per_l1_doubling(model.alpha, 0.69, "linear")
        )
        rows = [
            ["L1 global miss ratio (4KB)", format_ratio(l1.global_)],
            ["fitted miss-curve alpha", f"{model.alpha:.3f}"],
            ["single-level -> two-level shift", f"{shift_orders:.1f} binary orders"],
            ["shift per L1 doubling", f"{per_doubling:.2f} powers of two"],
        ]
        checks = {
            "L1 global miss ratio near the paper's 10%": bool(
                0.05 <= l1.global_ <= 0.16
            ),
            "shift vs single-level about seven binary orders (5..9)": bool(
                5.0 <= shift_orders <= 9.0
            ),
            "per-doubling shift near the paper's 0.24-0.33 powers of two": bool(
                0.15 <= per_doubling <= 0.45
            ),
        }
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=["quantity", "measured"],
            rows=rows,
            checks=checks,
            notes=[
                "paper: 'the addition of a 4KB L1 cache, with a 10% miss "
                "rate, shifts the lines of constant performance to the right "
                "by about seven binary orders of magnitude'",
            ],
        )
