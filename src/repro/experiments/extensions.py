"""Extensions and ablations (DESIGN.md section 6).

* E-3L -- three-level hierarchies: section 6 predicts the multi-level
  conclusions generalise; the simulators accept arbitrary depth, so we
  check that an L3 behaves toward L2 the way L2 behaves toward L1.
* A-AFFINE -- the affine counts method versus the timing simulator.
* A-WBUF -- sensitivity of execution time to write-buffer depth
  (the paper's footnote-2 claim that deep buffers hide write effects).
* A-GEN -- stack-distance versus Zipf/IRM trace generators.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.design_space import affine_model_for
from repro.core.metrics import measure_triad
from repro.core.sweep import sweep_functional, sweep_timing
from repro.experiments.base import Experiment, ExperimentReport
from repro.experiments.baseline import base_machine
from repro.experiments.render import format_ratio, format_size
from repro.sim.config import LevelConfig, SystemConfig
from repro.trace.record import READ, Trace
from repro.trace.stats import stack_distance_profile
from repro.trace.synthetic import StackDistanceGenerator, ZipfGenerator
from repro.units import KB


def three_level_machine(l3_size: int = 256 * KB) -> SystemConfig:
    """The base machine with a small L2 and a third level below it.

    The L2 is deliberately modest (16 KB) so the L3 has traffic to serve;
    with the default 512 KB L2 and the synthetic traces' footprint, an L3
    has almost nothing left to catch.
    """
    base = base_machine(l2_size=16 * KB)
    levels = base.levels + (
        LevelConfig(
            size_bytes=l3_size,
            block_bytes=32,
            cycle_cpu_cycles=6.0,
            write_hit_cycles=2,
        ),
    )
    return SystemConfig(
        levels=levels,
        cpu=base.cpu,
        memory=base.memory,
        bus_width_words=base.bus_width_words,
        write_buffer_entries=base.write_buffer_entries,
    )


class ThreeLevelHierarchy(Experiment):
    """E-3L: do the two-level conclusions transfer one level down?"""

    experiment_id = "E-3L"
    title = "Three-level hierarchy: L3 behaves toward L2 as L2 does toward L1"

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        config = three_level_machine()
        l3 = measure_triad(traces, config, level=3)
        l2 = measure_triad(traces, config, level=2)
        two_level = base_machine(l2_size=16 * KB)
        two_row, three_row = sweep_timing(traces, [two_level, config])
        cpi_two = sum(t.total_cycles for t in two_row)
        cpi_three = sum(t.total_cycles for t in three_row)
        rows = [
            ["L2 triad", format_ratio(l2.local), format_ratio(l2.global_),
             format_ratio(l2.solo)],
            ["L3 triad", format_ratio(l3.local), format_ratio(l3.global_),
             format_ratio(l3.solo)],
            ["exec time ratio (3-level / 2-level)",
             f"{cpi_three / cpi_two:.3f}", "", ""],
        ]
        checks = {
            "upstream levels filter references at L3 too (local >> global)":
                l3.local > 2 * l3.global_,
            "L3 global ~ solo (independence extends a level down)":
                l3.global_solo_gap < 0.35,
            "adding a well-sized L3 improves execution time":
                cpi_three < cpi_two,
        }
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=["quantity", "local", "global", "solo"],
            rows=rows,
            checks=checks,
            notes=["section 6's 'future multi-level hierarchies' made concrete"],
        )


class AffineVersusTiming(Experiment):
    """A-AFFINE: validates the sweep engine's affine approximation."""

    experiment_id = "A-AFFINE"
    title = "Affine counts method vs timing simulation"

    POINTS = [(16 * KB, 2.0), (64 * KB, 3.0), (256 * KB, 5.0), (64 * KB, 8.0)]

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        rows = []
        errors = []
        configs = [
            base_machine(l2_size=size, l2_cycle_cpu_cycles=cycle)
            for size, cycle in self.POINTS
        ]
        functional_grid = sweep_functional(traces, configs)
        timing_grid = sweep_timing(traces, configs)
        for (size, cycle), config, functional_row, timing_row in zip(
            self.POINTS, configs, functional_grid, timing_grid
        ):
            predicted = sum(
                affine_model_for(functional, config).total_cycles(cycle)
                for functional in functional_row
            )
            measured = sum(timing.total_cycles for timing in timing_row)
            error = predicted / measured - 1.0
            errors.append(error)
            rows.append(
                [format_size(size), f"{cycle:g}", f"{predicted:.0f}",
                 f"{measured:.0f}", f"{error * 100:+.1f}%"]
            )
        checks = {
            "affine model within 18% of timing at every probed point": all(
                abs(e) <= 0.18 for e in errors
            ),
        }
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=["L2 size", "cycle", "affine cycles", "timing cycles", "error"],
            rows=rows,
            checks=checks,
            notes=[
                "the residual is write-buffer congestion and DRAM recovery, "
                "which the counts method folds into constants",
            ],
        )


class WriteBufferAblation(Experiment):
    """A-WBUF: write effects versus buffer depth (paper footnote 2)."""

    experiment_id = "A-WBUF"
    title = "Execution time vs write-buffer depth"

    DEPTHS = [1, 2, 4, 8]

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        import dataclasses

        rows = []
        totals = []
        configs = [
            dataclasses.replace(
                base_machine(l2_size=64 * KB), write_buffer_entries=depth
            )
            for depth in self.DEPTHS
        ]
        for depth, row in zip(self.DEPTHS, sweep_timing(traces, configs)):
            total = sum(timing.total_cycles for timing in row)
            totals.append(total)
            rows.append([str(depth), f"{total:.0f}"])
        spread = (max(totals) - min(totals)) / min(totals)
        checks = {
            "write-buffer depth moves execution time only a few percent "
            "(write effects are second-order; paper footnote 2)": bool(
                spread < 0.05
            ),
            "4 and 8 entries perform within 1% of each other": bool(
                abs(totals[2] - totals[3]) <= 0.01 * totals[3]
            ),
        }
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=["buffer entries", "total cycles"],
            rows=rows,
            checks=checks,
            notes=[
                f"depth changes total time by at most {spread * 100:.1f}%: "
                "buffered write-back traffic is almost entirely hidden "
                "between read requests",
            ],
        )


class BlockSizeAblation(Experiment):
    """A-BLOCK: the L2 block-size choice (8 words in the base machine).

    Larger blocks exploit the instruction stream's sequentiality but cost
    extra backplane data cycles per fetch over the fixed 4-word bus, and
    they buy nothing for the stack-distance data stream.  The experiment
    sweeps the L2 block size at fixed capacity and reports both the miss
    ratio and the execution time the affine model implies.
    """

    experiment_id = "A-BLOCK"
    title = "L2 block size vs miss ratio and execution time"

    BLOCK_SIZES = [32, 64, 128]

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        rows = []
        times = []
        ratios = []
        configs = [
            base_machine(l2_size=64 * KB).with_level(1, block_bytes=block)
            for block in self.BLOCK_SIZES
        ]
        results = sweep_functional(traces, configs)
        for block, config, row_results in zip(
            self.BLOCK_SIZES, configs, results
        ):
            misses = sum(r.level_stats[1].read_misses for r in row_results)
            reads = sum(r.cpu_reads for r in row_results)
            total_cycles = sum(
                affine_model_for(result, config).total_cycles(3.0)
                for result in row_results
            )
            ratio = misses / reads
            ratios.append(ratio)
            times.append(total_cycles)
            rows.append(
                [f"{block}B", format_ratio(ratio), f"{total_cycles:.0f}"]
            )
        relative = [t / min(times) for t in times]
        for row, rel in zip(rows, relative):
            row.append(f"{rel:.3f}")
        checks = {
            "larger blocks lower the L2 miss ratio (sequential code)": all(
                ratios[i + 1] <= ratios[i] for i in range(len(ratios) - 1)
            ),
            "block-size returns diminish as transfer cost grows": bool(
                (times[0] - times[1]) > (times[1] - times[2])
            ),
        }
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=["L2 block", "L2 global miss", "total cycles", "relative"],
            rows=rows,
            checks=checks,
            notes=[
                "fetch transfer time grows with the block over the fixed "
                "4-word backplane, so miss-ratio gains are taxed",
                "the synthetic instruction stream is somewhat more "
                "sequential than the paper's traces, so large blocks fare "
                "slightly better here than the 8-word base choice",
            ],
        )


class WritePolicyAblation(Experiment):
    """A-WPOL: write-back vs write-through first-level caches.

    The paper's machine is write-back with deep buffers precisely because
    write-through multiplies the downstream write traffic (every store
    travels); the ablation quantifies both the traffic and the time cost.
    """

    experiment_id = "A-WPOL"
    title = "L1 write policy: write-back vs write-through"

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        rows = []
        measurements = {}
        policies = ("write-back", "write-through")
        configs = [
            base_machine(l2_size=64 * KB).with_level(0, write_policy=policy)
            for policy in policies
        ]
        for policy, row in zip(policies, sweep_timing(traces, configs)):
            downstream_writes = 0
            total_cycles = 0.0
            stores = 0
            for timing in row:
                stats = timing.level_stats[0]
                downstream_writes += stats.writebacks + stats.writes_forwarded
                total_cycles += timing.total_cycles
                stores += timing.cpu_writes
            measurements[policy] = (total_cycles, downstream_writes)
            rows.append(
                [
                    policy,
                    f"{total_cycles:.0f}",
                    str(downstream_writes),
                    f"{downstream_writes / stores:.2f}",
                ]
            )
        wb_time, wb_traffic = measurements["write-back"]
        wt_time, wt_traffic = measurements["write-through"]
        checks = {
            "write-through multiplies downstream write traffic": bool(
                wt_traffic > 1.5 * wb_traffic
            ),
            "write-back is at least as fast (the paper's design choice)": bool(
                wb_time <= wt_time * 1.005
            ),
        }
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=["L1 policy", "total cycles", "L2-bound writes",
                     "writes per store"],
            rows=rows,
            checks=checks,
            notes=[
                "write-back coalesces stores in the L1 and only moves dirty "
                "victims; write-through ships every store downstream",
            ],
        )


class InclusionAblation(Experiment):
    """A-INCL: the miss-ratio cost of enforcing multi-level inclusion.

    The paper's machine (like most of its era) does not enforce inclusion;
    Baer & Wang (the paper's reference [3]) analyse hierarchies that do.
    Back-invalidations steal useful blocks from the L1, so enforcing
    inclusion costs L1 hits -- more as the L2/L1 size ratio shrinks.
    """

    experiment_id = "A-INCL"
    title = "Enforced inclusion vs free hierarchy (L1 miss-ratio cost)"

    L2_SIZES_KB = [8, 32, 128]

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        import dataclasses

        free_configs = [
            base_machine(l2_size=l2_kb * KB) for l2_kb in self.L2_SIZES_KB
        ]
        incl_configs = [
            dataclasses.replace(base, enforce_inclusion=True)
            for base in free_configs
        ]
        results = sweep_functional(traces, free_configs + incl_configs)
        free_rows = results[:len(free_configs)]
        incl_rows = results[len(free_configs):]
        rows = []
        costs = []
        for l2_kb, free_row, incl_row in zip(
            self.L2_SIZES_KB, free_rows, incl_rows
        ):
            free_misses = sum(r.level_stats[0].read_misses for r in free_row)
            incl_misses = sum(r.level_stats[0].read_misses for r in incl_row)
            reads = sum(r.cpu_reads for r in free_row)
            cost = (incl_misses - free_misses) / reads
            costs.append(cost)
            rows.append(
                [
                    format_size(l2_kb * KB),
                    format_ratio(free_misses / reads),
                    format_ratio(incl_misses / reads),
                    f"{cost * 100:+.3f}%",
                ]
            )
        checks = {
            "inclusion never lowers the L1 miss ratio": all(c >= -1e-9 for c in costs),
            "inclusion costs more when L2 is close to L1 in size": bool(
                costs[0] >= costs[-1]
            ),
        }
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=["L2 size", "L1 miss (free)", "L1 miss (inclusive)", "cost"],
            rows=rows,
            checks=checks,
            notes=[
                "back-invalidations evict live L1 blocks whenever the "
                "smaller L2's replacement decisions disagree with the L1's",
            ],
        )


class PrefetchAblation(Experiment):
    """A-PREF: sequential prefetching in the second-level cache.

    The paper's simulator models prefetching (section 2) though the shown
    figures keep it off; this ablation quantifies what the classic
    sequential schemes buy the L2 of the base machine.  The mostly
    sequential instruction stream rewards next-block prefetch; the
    stack-distance data stream does not, so accuracy is the interesting
    column.
    """

    experiment_id = "A-PREF"
    title = "Sequential prefetching in the L2 (none / on-miss / tagged / always)"

    KINDS = ["none", "on-miss", "tagged", "always"]

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        rows = []
        miss_ratios = []
        configs = [
            base_machine(l2_size=64 * KB).with_level(
                1, prefetch=kind, prefetch_distance=1
            )
            for kind in self.KINDS
        ]
        results = sweep_functional(traces, configs)
        for kind, row_results in zip(self.KINDS, results):
            misses = reads = issued = useful = memory_reads = 0
            for result in row_results:
                l2 = result.level_stats[1]
                misses += l2.read_misses
                reads += result.cpu_reads
                issued += l2.prefetches_issued
                useful += l2.useful_prefetches
                memory_reads += result.memory_reads
            ratio = misses / reads
            miss_ratios.append(ratio)
            accuracy = useful / issued if issued else 0.0
            rows.append(
                [
                    kind,
                    format_ratio(ratio),
                    str(issued),
                    f"{accuracy * 100:.0f}%",
                    str(memory_reads),
                ]
            )
        checks = {
            "every prefetch scheme lowers the L2 demand miss ratio": all(
                ratio < miss_ratios[0] for ratio in miss_ratios[1:]
            ),
            "tagged prefetch at least matches prefetch-on-miss": bool(
                miss_ratios[2] <= miss_ratios[1] * 1.02
            ),
        }
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=["scheme", "L2 global miss", "issued", "accuracy", "memory reads"],
            rows=rows,
            checks=checks,
            notes=[
                "prefetch traffic is counted separately and never pollutes "
                "the demand read miss ratios (section 2's definition)",
                "the memory-reads column shows the bandwidth cost of "
                "aggressive prefetching",
            ],
        )


class GeneratorAblation(Experiment):
    """A-GEN: stack-distance vs Zipf generators' miss-curve shapes."""

    experiment_id = "A-GEN"
    title = "Stack-distance vs Zipf/IRM generator miss curves"

    def run(self, traces: Sequence[Trace]) -> ExperimentReport:
        del traces  # this ablation builds its own single-generator streams
        count = 120_000
        # Stay well inside the generators' footprints: sampled distances
        # beyond the stack allocate fresh blocks, truncating the tail.
        depths = np.array([16, 64, 256, 1024])
        rows = []
        factors = {}
        for name, generator in (
            ("stack-distance", StackDistanceGenerator(seed=5)),
            ("zipf-irm", ZipfGenerator(seed=5)),
        ):
            addresses = generator.addresses(count)
            trace = Trace(
                np.full(count, READ, dtype=np.uint8), addresses, name=name
            )
            profile = stack_distance_profile(trace, max_references=count)
            survival = profile.survival(depths)
            per_doubling = (survival[-2] / survival[0]) ** (
                1.0 / np.log2(depths[-2] / depths[0])
            )
            factors[name] = float(per_doubling)
            rows.append(
                [name]
                + [f"{s:.4f}" for s in survival]
                + [f"{per_doubling:.3f}"]
            )
        checks = {
            "stack-distance generator hits the paper calibration (0.62-0.76)":
                0.62 <= factors["stack-distance"] <= 0.76,
            "both generators produce decreasing miss curves": all(
                float(r[1]) > float(r[3]) for r in rows
            ),
        }
        return ExperimentReport(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=["generator"] + [f"P(D>{d})" for d in depths] + ["factor/doubling"],
            rows=rows,
            checks=checks,
            notes=[
                "the Zipf/IRM generator is faster but its slope is tied to "
                "its alpha; the stack-distance generator is the calibrated "
                "default (DESIGN.md section 2)",
            ],
        )
