"""The synthetic stand-in for the paper's eight multiprogramming traces.

The paper drives every experiment with eight large traces: four ATUM VAX
traces with operating-system references (three VMS, one Ultrix) and four
randomly interleaved MIPS R2000 uniprocessor traces (section 2).  Those are
proprietary; :func:`paper_trace_suite` builds eight synthetic equivalents:

* four "vms-like" mixes (three processes plus a shared kernel workload
  injected at every context switch), and
* four "interleaved" mixes (four processes, no kernel activity),

with context-switch intervals in the ATUM range and locality calibrated to
the paper's own characterisation of its traces (L1 4 KB global read miss
ratio near 10%, solo miss ratio falling ~0.69x per size doubling; see
DESIGN.md section 2).

Scaling knobs (environment variables, read at suite-build time):

* ``REPRO_RECORDS`` -- records per trace (default 250000);
* ``REPRO_TRACES`` -- number of traces, up to 8 (default 4 to keep the
  benchmark suite laptop-friendly; set 8 for the full paper suite);
* ``REPRO_TRACE_CACHE`` -- directory for on-disk trace caching.
"""

from __future__ import annotations

import hashlib
import logging
from pathlib import Path
from typing import Dict, List, Optional

from repro.core import envcfg
from repro.trace.instr import InstructionStreamGenerator
from repro.trace.multiprogram import MultiprogramScheduler, ProcessSpec
from repro.trace.record import Trace
from repro.trace.store import (
    STORE_PATH_SLOT,
    STORE_SUFFIX,
    StoreCorruptError,
    TraceStore,
)
from repro.trace.synthetic import StackDistanceGenerator
from repro.trace.warmup import warmup_boundary
from repro.trace.workload import SyntheticWorkload
from repro.units import KB

log = logging.getLogger("repro.experiments.workloads")

#: Default records per trace (override with REPRO_RECORDS); the
#: authoritative default lives in the envcfg registry.
DEFAULT_RECORDS = envcfg.var("REPRO_RECORDS").default
#: Default number of traces (override with REPRO_TRACES, max 8).
DEFAULT_TRACES = envcfg.var("REPRO_TRACES").default

#: Mean context-switch interval in references (ATUM-era quantum).
SWITCH_INTERVAL = 15_000

#: In-memory cache so repeated experiments share the same suite.
_memory_cache: Dict[str, List[Trace]] = {}


def _records() -> int:
    return envcfg.get("REPRO_RECORDS")


def _trace_count() -> int:
    return max(1, min(8, envcfg.get("REPRO_TRACES")))


def _process_workload(seed: int, address_base: int) -> SyntheticWorkload:
    """One process, calibrated for the paper's L1 behaviour.

    The instruction side concentrates fetches in a hot-function set small
    enough that a 2 KB L1I works but a large cold code footprint keeps the
    L2 busy; the data side pairs the paper-calibrated Pareto stack
    distances with a fresh-block stream that grows the footprint into the
    multi-megabyte range the Figure 3/4 sweeps need.
    """
    data = StackDistanceGenerator(
        block_bytes=16,
        address_base=address_base + (1 << 32),
        new_block_fraction=0.008,
        seed=seed + 1,
    )
    instructions = InstructionStreamGenerator(
        function_count=4096,
        function_words=64,
        zipf_alpha=1.8,
        mean_run_length=24.0,
        address_base=address_base,
        seed=seed + 2,
    )
    return SyntheticWorkload(
        data=data,
        instructions=instructions,
        data_ref_fraction=0.5,
        data_read_fraction=0.65,
        seed=seed,
    )


def _kernel_workload(seed: int) -> SyntheticWorkload:
    """Shared operating-system activity for the vms-like traces."""
    base = 0xF << 44
    data = StackDistanceGenerator(
        block_bytes=16,
        address_base=base + (1 << 32),
        new_block_fraction=0.02,
        seed=seed + 1,
    )
    instructions = InstructionStreamGenerator(
        function_count=2048,
        function_words=96,
        zipf_alpha=1.3,
        mean_run_length=12.0,
        address_base=base,
        seed=seed + 2,
    )
    return SyntheticWorkload(data=data, instructions=instructions, seed=seed)


def build_trace(name: str, index: int, records: int, kernel: bool) -> Trace:
    """Build one multiprogramming trace.

    ``kernel=True`` produces a "vms-like" trace (OS bursts at context
    switches); ``False`` an "interleaved" one.
    """
    seed_base = 10_000 * (index + 1)
    process_count = 3 if kernel else 4
    processes = [
        ProcessSpec(
            name=f"{name}-p{p}",
            workload=_process_workload(
                seed=seed_base + 100 * p, address_base=(p + 1) << 44
            ),
        )
        for p in range(process_count)
    ]
    scheduler = MultiprogramScheduler(
        processes,
        switch_interval=SWITCH_INTERVAL,
        kernel=_kernel_workload(seed_base + 7) if kernel else None,
        kernel_burst=600,
        seed=seed_base + 13,
    )
    trace = scheduler.trace(records, name=name)
    trace.warmup = warmup_boundary(trace, largest_cache_bytes=256 * KB)
    return trace


def trace_cache_dir() -> Optional[Path]:
    """The on-disk trace cache directory, or ``None`` when caching is off.

    Public so ``mlcache doctor`` can include the cache in its default
    scan roots.
    """
    path = envcfg.get("REPRO_TRACE_CACHE")
    if not path:
        return None
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def _open_cached(path: Path, legacy: Path) -> Optional[Trace]:
    """The cached store at ``path`` as a memmap-backed trace, or ``None``
    when the entry is absent or unusable (a cache *miss*, never a crash).

    Corruption -- torn header, digest mismatch under
    ``REPRO_STORE_VERIFY`` -- quarantines the file (preserving the
    evidence, freeing the path) and rebuilds.  A missing entry falls
    back to a legacy ``.npz`` migration when one exists.
    """
    verify = bool(envcfg.get("REPRO_STORE_VERIFY"))
    try:
        return TraceStore.open(path, verify=verify).as_trace()
    except FileNotFoundError:
        pass
    except StoreCorruptError as error:
        from repro.resilience.integrity import quarantine

        quarantine(path, str(error))
        log.warning(
            "trace-cache-corrupt path=%s action=quarantine-and-rebuild "
            "reason=%s", path, error,
        )
    if legacy.exists():
        # Migrate pre-store caches: one load, then memmaps forever.
        try:
            TraceStore.save(Trace.load(legacy), path)
            return TraceStore.open(path, verify=verify).as_trace()
        except (OSError, ValueError) as error:
            from repro.resilience.integrity import quarantine

            quarantine(legacy, f"legacy cache migration failed: {error}")
            log.warning(
                "trace-cache-legacy-corrupt path=%s action=quarantine-"
                "and-rebuild reason=%s", legacy, error,
            )
    return None


def _publish(trace: Trace, path: Path) -> Trace:
    """Save a freshly built trace into the cache; degrade on failure.

    A failed save (disk full, injected disk fault) logs and returns the
    heap trace unchanged -- the sweep proceeds uncached rather than
    aborting, and the atomic-write primitive guarantees the failure left
    no partial store behind at ``path``.  The reopen re-verifies under
    ``REPRO_STORE_VERIFY``: the header digests were hashed from the
    in-memory arrays *before* the bytes hit disk, so corruption during
    the write itself (an injected ``bitflip``, real controller trouble)
    is caught here, quarantined, and the sweep falls back to the known-
    good heap trace instead of silently reading poisoned records.
    """
    from repro.resilience.faults import InjectedFault
    from repro.resilience.integrity import quarantine

    verify = bool(envcfg.get("REPRO_STORE_VERIFY"))
    try:
        TraceStore.save(trace, path)
        # Hand back the memmap-backed view rather than the heap trace:
        # the suite then opens O(1) and exports to workers as a path.
        return TraceStore.open(path, verify=verify).as_trace()
    except StoreCorruptError as error:
        quarantine(path, f"corrupted during publish: {error}")
        log.warning(
            "trace-cache-publish-corrupt path=%s action=quarantine-and-"
            "degrade-to-heap reason=%s", path, error,
        )
        return trace
    except (OSError, InjectedFault) as error:
        log.warning(
            "trace-cache-save-failed path=%s action=degrade-to-heap "
            "reason=%s", path, error,
        )
        return trace


def _store_backed_ok(trace: Trace) -> bool:
    """Whether a cached suite trace's backing store file still exists."""
    path = trace.metadata.get(STORE_PATH_SLOT)
    return path is None or Path(path).is_file()


def paper_trace_suite(
    records: Optional[int] = None, count: Optional[int] = None
) -> List[Trace]:
    """The eight-trace stand-in suite (or the first ``count`` of them).

    Traces alternate vms-like and interleaved so any prefix stays mixed.
    Suites are cached in memory and, when ``REPRO_TRACE_CACHE`` is set, on
    disk keyed by the generation parameters.  The disk cache is safe to
    share between concurrent sweeps: each entry is built under an
    advisory lock (waiters reuse the winner's store), corrupt entries
    quarantine and rebuild, and a store file deleted out from under a
    cached suite -- e.g. between a journaled run and its resume -- is
    re-derived from the deterministic generator with a warning instead
    of aborting the sweep.
    """
    records = records if records is not None else _records()
    count = count if count is not None else _trace_count()
    key = f"v1-{records}-{count}"
    if key in _memory_cache:
        cached = _memory_cache[key]
        if all(_store_backed_ok(trace) for trace in cached):
            return cached
        # Generation is deterministic by (records, name), so the rebuilt
        # store is byte-identical and journal/memo keys still match.
        log.warning(
            "trace-suite-store-missing key=%s action=re-derive "
            "reason=backing store file deleted; rebuilding from the "
            "workload generator", key,
        )
        del _memory_cache[key]
    disk = trace_cache_dir()
    traces = []
    for i in range(count):
        kernel = i % 2 == 0
        kind = "vms" if kernel else "mix"
        name = f"{kind}{i}"
        if disk is None:
            traces.append(
                build_trace(name, index=i, records=records, kernel=kernel)
            )
            continue
        digest = hashlib.sha256(f"{key}-{name}".encode()).hexdigest()[:16]
        path = disk / f"trace-{digest}{STORE_SUFFIX}"
        # One builder per entry: concurrent sweeps sharing a cache dir
        # serialise on the entry's lock, so the loser of the race waits
        # (up to REPRO_LOCK_TIMEOUT_S) and then *opens* the winner's
        # store instead of racing a second build of the same bytes.
        from repro.resilience.integrity import AdvisoryLock

        lock = AdvisoryLock(
            path.with_name(path.name + ".lock"), name=f"trace-cache:{name}"
        )
        lock.acquire(timeout_s=float(envcfg.get("REPRO_LOCK_TIMEOUT_S")))
        try:
            trace = _open_cached(path, legacy=disk / f"trace-{digest}.npz")
            if trace is None:
                trace = _publish(
                    build_trace(name, index=i, records=records, kernel=kernel),
                    path,
                )
        finally:
            lock.release()
        traces.append(trace)
    _memory_cache[key] = traces
    return traces
