"""repro: a reproduction of Przybylski, Horowitz & Hennessy,
"Characteristics of Performance-Optimal Multi-Level Cache Hierarchies"
(ISCA 1989).

The package is layered bottom-up (see DESIGN.md):

* :mod:`repro.trace` -- synthetic multiprogramming address traces with
  paper-calibrated locality, plus Dinero I/O and profiling.
* :mod:`repro.cache` -- set-associative caches, replacement and write
  policies, inter-level write buffers.
* :mod:`repro.memory` -- DRAM and bus timing models.
* :mod:`repro.sim` -- functional (miss-ratio) and nanosecond-resolution
  timing simulators over configurable hierarchies.
* :mod:`repro.analytical` -- the paper's Equations 1-3 and the power-law
  miss-rate model.
* :mod:`repro.core` -- the paper's contribution: the local/global/solo
  metric triad, speed-size design-space sweeps, lines of constant
  performance, associativity break-even maps, hierarchy optimisation.
* :mod:`repro.experiments` -- one runnable experiment per paper figure,
  table or quantified claim, with the ``mlcache`` CLI.

Quick taste::

    from repro.experiments import base_machine, build_trace
    from repro.sim import simulate_miss_ratios

    trace = build_trace("demo", index=0, records=100_000, kernel=True)
    result = simulate_miss_ratios(trace, base_machine())
    print(result.global_read_miss_ratio(2))
"""

__version__ = "1.0.0"

__all__ = [
    "trace",
    "cache",
    "memory",
    "sim",
    "analytical",
    "core",
    "experiments",
    "units",
]
