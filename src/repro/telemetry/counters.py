"""The typed counter/gauge catalog.

Every instrument the telemetry layer can record is *declared* here --
name, kind, unit, one-line meaning -- exactly as environment knobs are
declared in :mod:`repro.core.envcfg`.  Incrementing an undeclared name
is a programming error and fails loudly; the catalog renders itself
into ``docs/observability.md`` (:func:`markdown_table`) so the docs
cannot drift from the code.

Counters are monotonic sums; worker processes ship their local totals
to the supervisor with each job result and the supervisor *adds* them
(:func:`repro.telemetry.runtime.absorb_worker`).  Gauges are
last-observation values; across processes the supervisor keeps the
*maximum* (a worker's memo-cache size and the supervisor's are separate
caches -- the max is the honest "largest population seen" summary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["InstrumentDef", "CATALOG", "counter_names", "markdown_table"]


@dataclass(frozen=True)
class InstrumentDef:
    """One declared instrument: name, kind, unit, docs."""

    name: str
    #: ``counter`` (monotonic sum, added across workers) or ``gauge``
    #: (last observation, max across workers).
    kind: str
    #: Human-readable unit for docs and the report footer.
    unit: str
    #: One-line description for the generated catalog table.
    doc: str


def _declare(defs: List[InstrumentDef]) -> Dict[str, InstrumentDef]:
    catalog: Dict[str, InstrumentDef] = {}
    for definition in defs:
        if definition.name in catalog:
            raise ValueError(
                f"instrument {definition.name!r} declared twice in "
                f"repro/telemetry/counters.py"
            )
        catalog[definition.name] = definition
    return catalog


#: Every instrument, by name.  Declarations only -- live values live in
#: :mod:`repro.telemetry.runtime`.
CATALOG: Dict[str, InstrumentDef] = _declare([
    InstrumentDef(
        "memo.hits", "counter", "lookups",
        "Functional memo-cache lookups answered from the cache.",
    ),
    InstrumentDef(
        "memo.misses", "counter", "lookups",
        "Memo-cache lookups that fell through to a simulation.",
    ),
    InstrumentDef(
        "memo.evictions", "counter", "results",
        "Cached functional results evicted past the LRU cap.",
    ),
    InstrumentDef(
        "memo.entries", "gauge", "results",
        "Memo-cache population after the last store (max across "
        "processes).",
    ),
    InstrumentDef(
        "journal.records", "counter", "records",
        "Cell records appended to the checkpoint journal.",
    ),
    InstrumentDef(
        "journal.fsyncs", "counter", "calls",
        "fsync(2) calls the journal's group commit actually issued.",
    ),
    InstrumentDef(
        "store.bytes_mapped", "counter", "bytes",
        "Trace-store segment bytes mapped as array views (1-byte kinds "
        "+ 8-byte addresses per record).",
    ),
    InstrumentDef(
        "store.saves", "counter", "stores",
        "Trace stores written through TraceStore.save.",
    ),
    InstrumentDef(
        "store.verifies", "counter", "stores",
        "Full per-segment digest verifications of opened stores.",
    ),
    InstrumentDef(
        "pool.jobs", "counter", "jobs",
        "Jobs dispatched to worker processes by the pooled executor.",
    ),
    InstrumentDef(
        "pool.retries", "counter", "attempts",
        "Cell retry attempts scheduled after a failure (pooled or "
        "serial).",
    ),
    InstrumentDef(
        "pool.timeouts", "counter", "cells",
        "Workers killed for exceeding the per-cell wall-clock budget.",
    ),
    InstrumentDef(
        "pool.restarts", "counter", "workers",
        "Worker processes re-created after a death, hang or kill.",
    ),
    InstrumentDef(
        "telemetry.dropped", "counter", "events",
        "Span events discarded after the in-process buffer cap "
        "(oldest events are kept; drops mean the tail is partial).",
    ),
])


def counter_names() -> List[str]:
    """Every declared instrument name, sorted."""
    return sorted(CATALOG)


def instrument(name: str) -> Optional[InstrumentDef]:
    """The declaration for ``name`` (``None`` when undeclared)."""
    return CATALOG.get(name)


def markdown_table() -> str:
    """The instrument catalog as a markdown reference table."""
    rows = [
        "| Instrument | Kind | Unit | Meaning |",
        "| --- | --- | --- | --- |",
    ]
    for name in counter_names():
        definition = CATALOG[name]
        rows.append(
            f"| `{definition.name}` | {definition.kind} "
            f"| {definition.unit} | {definition.doc} |"
        )
    return "\n".join(rows)
