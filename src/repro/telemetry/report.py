"""The per-phase time/percentage report over a telemetry sink.

Builds the phase tree by resolving parent ids *post-hoc* -- the sink
records spans in close order (children before parents), and a killed
run may be missing parents entirely, in which case their orphaned
children are promoted to roots.  Spans aggregate by name at each tree
position, so a thousand ``stackdist.pass`` events become one row with a
summed duration and a count.

Percentages are of the summed root durations (the attributed wall
clock).  Worker spans run concurrently, so a phase's children can
legitimately sum past their parent -- the table attributes *busy* time
across processes, not wall-clock exclusivity.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.telemetry.counters import CATALOG
from repro.telemetry.export import SinkContent, read_sink

__all__ = ["build_tree", "render_report", "report_text"]


def build_tree(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate span events into ``{name: {ns, count, children}}``.

    Parents are resolved by id; events whose parent never closed (killed
    runs) root their subtree at the top level.
    """
    by_id = {event["id"]: event for event in spans}

    def name_path(event: Dict[str, Any]) -> List[str]:
        parts: List[str] = []
        node: Optional[Dict[str, Any]] = event
        seen = set()
        while node is not None and node["id"] not in seen:
            seen.add(node["id"])
            parts.append(str(node["name"]))
            parent = node.get("parent")
            node = by_id.get(parent) if parent is not None else None
        return parts[::-1]

    tree: Dict[str, Any] = {}
    for event in spans:
        node = tree
        parts = name_path(event)
        for name in parts[:-1]:
            node = node.setdefault(name, {"ns": 0, "count": 0})
            node = node.setdefault("children", {})
        leaf = node.setdefault(parts[-1], {"ns": 0, "count": 0})
        leaf["ns"] += int(event["t1"]) - int(event["t0"])
        leaf["count"] += 1
    return tree


def _fmt_ns(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.2f} ms"
    return f"{ns / 1e3:.1f} us"


def render_report(content: SinkContent) -> str:
    """The full report: phase table plus the final counter totals."""
    lines: List[str] = []
    tree = build_tree(content.spans)
    total_ns = sum(node["ns"] for node in tree.values()) or 1

    lines.append(f"{'phase':<44} {'total':>12} {'%':>7} {'count':>8}")
    lines.append("-" * 73)

    def walk(subtree: Dict[str, Any], depth: int) -> None:
        ranked = sorted(
            subtree.items(), key=lambda item: -item[1]["ns"]
        )
        for name, node in ranked:
            label = "  " * depth + name
            lines.append(
                f"{label:<44} {_fmt_ns(node['ns']):>12} "
                f"{100.0 * node['ns'] / total_ns:>6.1f}% "
                f"{node['count']:>8}"
            )
            walk(node.get("children", {}), depth + 1)

    walk(tree, 0)

    if content.counts:
        totals = content.counts[-1].get("c", {})
        if totals:
            lines.append("")
            lines.append(f"{'counter':<44} {'total':>16}  unit")
            lines.append("-" * 73)
            for name in sorted(totals):
                definition = CATALOG.get(name)
                unit = definition.unit if definition else "?"
                lines.append(f"{name:<44} {totals[name]:>16,}  {unit}")

    notes: List[str] = []
    if content.bad_lines:
        notes.append(f"{content.bad_lines} unparseable line(s) skipped")
    if content.torn_tail_bytes:
        notes.append(
            f"torn tail of {content.torn_tail_bytes} byte(s) ignored "
            f"(run `mlcache doctor --fix` to trim)"
        )
    if notes:
        lines.append("")
        lines.append("note: " + "; ".join(notes))
    return "\n".join(lines)


def report_text(sink: Path) -> str:
    """Render the report for a sink file on disk."""
    return render_report(read_sink(sink))
