"""Sink parsing and Chrome/Perfetto trace-event export.

:func:`read_sink` is the one parser of the telemetry JSONL format; the
reporter, the doctor drill and the exporter all go through it.  It is
deliberately forgiving: a SIGKILLed run leaves a sink whose final line
may be torn, and partial telemetry is valid telemetry -- unparseable
trailing bytes are counted, not fatal.

:func:`chrome_trace` converts span events to the Chrome trace-event
JSON format (``ph: "X"`` complete events, microsecond timestamps)
that https://ui.perfetto.dev and ``chrome://tracing`` load directly.
Each originating process becomes its own track (``pid`` from the
event), with ``process_name`` metadata distinguishing the supervisor
from its workers, and counter totals become ``ph: "C"`` counter tracks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.resilience.integrity import atomic_write_text

__all__ = ["SinkContent", "read_sink", "chrome_trace", "export_chrome_trace"]


class SinkContent:
    """Parsed telemetry sink: events by kind plus tail diagnostics."""

    def __init__(self) -> None:
        self.meta: List[Dict[str, Any]] = []
        self.spans: List[Dict[str, Any]] = []
        self.counts: List[Dict[str, Any]] = []
        #: Complete lines that failed to parse or had an unknown kind.
        self.bad_lines: int = 0
        #: Bytes after the final newline (a torn tail from a kill).
        self.torn_tail_bytes: int = 0

    @property
    def total_lines(self) -> int:
        return (
            len(self.meta) + len(self.spans) + len(self.counts)
            + self.bad_lines
        )


def read_sink(path: Path) -> SinkContent:
    """Parse a telemetry sink, tolerating a torn final line."""
    content = SinkContent()
    data = Path(path).read_bytes()
    body, sep, tail = data.rpartition(b"\n")
    if not sep:
        # No newline at all: the whole file is one torn line.
        content.torn_tail_bytes = len(data)
        return content
    content.torn_tail_bytes = len(tail)
    for raw in body.split(b"\n"):
        if not raw.strip():
            continue
        try:
            line = json.loads(raw)
        except ValueError:
            content.bad_lines += 1
            continue
        kind = line.get("k") if isinstance(line, dict) else None
        if kind == "meta":
            content.meta.append(line)
        elif kind == "span":
            # A span line missing its timing triple is damage (bit rot
            # or a foreign writer), not partial telemetry -- count it
            # rather than crash the reporter downstream.
            if all(field in line for field in ("id", "name", "t0", "t1")):
                content.spans.append(line)
            else:
                content.bad_lines += 1
        elif kind == "count":
            content.counts.append(line)
        else:
            content.bad_lines += 1
    return content


def _track_names(content: SinkContent) -> Dict[int, str]:
    """A display name per pid: the sink writer is the supervisor."""
    supervisor = {line.get("pid") for line in content.meta}
    names: Dict[int, str] = {}
    for event in content.spans:
        pid = int(event["pid"])
        if pid not in names:
            role = "supervisor" if pid in supervisor else "worker"
            names[pid] = f"{role} {pid}"
    return names


def chrome_trace(content: SinkContent) -> Dict[str, Any]:
    """Span and counter events as a Chrome trace-event JSON object."""
    trace_events: List[Dict[str, Any]] = []
    anchor_ns = min(
        (int(event["t0"]) for event in content.spans),
        default=0,
    )

    for pid, name in sorted(_track_names(content).items()):
        trace_events.append({
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        })

    for event in content.spans:
        pid = int(event["pid"])
        entry: Dict[str, Any] = {
            "ph": "X",
            "name": event["name"],
            "cat": str(event["name"]).split(".")[0],
            "pid": pid,
            "tid": pid,
            "ts": (int(event["t0"]) - anchor_ns) / 1000.0,
            "dur": (int(event["t1"]) - int(event["t0"])) / 1000.0,
        }
        args = event.get("a")
        if args:
            entry["args"] = args
        trace_events.append(entry)

    for line in content.counts:
        pid = int(line["pid"])
        ts = (int(line["t"]) - anchor_ns) / 1000.0
        for counter, total in sorted(line.get("c", {}).items()):
            trace_events.append({
                "ph": "C",
                "name": counter,
                "pid": pid,
                "tid": pid,
                "ts": ts,
                "args": {"value": total},
            })

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def export_chrome_trace(sink: Path, out: Path) -> Tuple[int, int]:
    """Export a sink to a Perfetto-loadable trace file at ``out``.

    Returns ``(span_events, skipped_lines)`` where skipped lines are
    unparseable lines plus one for a torn tail, for the CLI summary.
    """
    content = read_sink(sink)
    atomic_write_text(Path(out), json.dumps(chrome_trace(content)))
    skipped = content.bad_lines + (1 if content.torn_tail_bytes else 0)
    return len(content.spans), skipped
