"""Span tracer and counter runtime: the in-process telemetry state.

One module-level recorder per process.  The supervisor process owns the
JSONL sink; worker processes buffer their spans and counter totals and
ship them back with each job result over the existing result pipe
(:func:`drain_worker`), where the supervisor re-parents them under its
live sweep span (:func:`absorb_worker`).  Timestamps are
:func:`repro.core.clock.monotonic_ns` readings -- ``CLOCK_MONOTONIC`` is
system-wide on Linux, so worker and supervisor timestamps are directly
comparable and re-parenting needs no epoch translation.

Everything is default-off (``REPRO_TELEMETRY``).  When disabled,
:func:`span` returns a shared no-op context manager and
:func:`counter_add` returns after one cached boolean test: the
instrumented hot paths pay an attribute load and a compare, nothing
else, and simulation results are bit-identical either way.

The sink is line-oriented JSON, one event per line, flushed per line
and never fsynced: a SIGKILL loses at most the page cache the kernel
had not written, and a torn final line is trimmed by ``mlcache doctor
--fix``.  Partial telemetry is valid telemetry.

Line kinds::

    {"k": "meta",  "schema": 1, "pid": ..., "t0": ns, "unix0": s, ...}
    {"k": "span",  "id": "pid:seq", "parent": id|null, "pid": ...,
     "name": ..., "t0": ns, "t1": ns, "a": {attrs}}
    {"k": "count", "pid": ..., "t": ns, "c": {counter: total, ...}}

``span`` lines appear in *close* order (children before parents); the
exporter and reporter resolve parents post-hoc and treat events whose
parent never closed as roots.
"""

from __future__ import annotations

import json
import os
import sys
from typing import IO, Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.telemetry.counters import CATALOG

#: Lazily-bound :func:`repro.core.clock.monotonic_ns`.  The telemetry
#: layer sits below everything (memo, journal, store import it at module
#: scope), while ``repro.core``'s package init reaches *up* into the
#: sweep engine -- importing the clock here at import time would close
#: that cycle, so it binds on first reading (the repo's standard
#: cycle-break, cf. the lazy envcfg import in ``trace/store.py``).
_monotonic_ns: Optional[Callable[[], int]] = None


def _now_ns() -> int:
    global _monotonic_ns
    if _monotonic_ns is None:
        from repro.core.clock import monotonic_ns

        _monotonic_ns = monotonic_ns
    return _monotonic_ns()


def _wall_unix() -> float:
    from repro.core.clock import wall_unix

    return wall_unix()

__all__ = [
    "enabled",
    "span",
    "counter_add",
    "gauge_set",
    "mark",
    "manifest_section",
    "enter_worker",
    "drain_worker",
    "absorb_worker",
    "close_sink",
    "reset",
]

SINK_SCHEMA = 1

#: In-memory event cap (the sink file is unbounded; this bounds the
#: supervisor's manifest-aggregation buffer).  Past the cap the *newest*
#: events are counted in ``telemetry.dropped`` and not retained, so
#: manifest marks taken earlier stay valid.
_MAX_EVENTS = 200_000

# -- per-process recorder state ------------------------------------------

#: Cached REPRO_TELEMETRY resolution; ``None`` until first use so tests
#: can flip the env var and call :func:`reset`.
_resolved: Optional[bool] = None
_events: List[Dict[str, Any]] = []
#: Open-span stack: (id, path) tuples, innermost last.
_stack: List[Tuple[str, str]] = []
_seq: int = 0
_counters: Dict[str, int] = {}
_gauges: Dict[str, int] = {}
_dropped: int = 0
_in_worker: bool = False
_sink: Optional[IO[str]] = None


def enabled() -> bool:
    """Whether telemetry is on (REPRO_TELEMETRY, cached after first read)."""
    global _resolved
    if _resolved is None:
        from repro.core import envcfg  # lazy: core package-init cycle

        _resolved = bool(envcfg.get("REPRO_TELEMETRY"))
    return _resolved


def sink_path() -> str:
    """The configured sink path (REPRO_TELEMETRY_PATH)."""
    from repro.core import envcfg  # lazy: core package-init cycle

    return str(envcfg.get("REPRO_TELEMETRY_PATH"))


# -- spans ----------------------------------------------------------------


class _NoopSpan:
    """The shared disabled-mode span: enter/exit do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NOOP = _NoopSpan()


class _Span:
    """One live span: context manager that records a close event."""

    __slots__ = ("name", "attrs", "_id", "_path", "_t0")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self._id = ""
        self._path = ""
        self._t0 = 0

    def __enter__(self) -> "_Span":
        global _seq
        _seq += 1
        self._id = f"{os.getpid()}:{_seq}"
        parent_path = _stack[-1][1] if _stack else ""
        self._path = f"{parent_path}/{self.name}" if parent_path else self.name
        _stack.append((self._id, self._path))
        self._t0 = _now_ns()
        return self

    def __exit__(self, *exc: object) -> None:
        t1 = _now_ns()
        parent: Optional[str] = None
        if _stack and _stack[-1][0] == self._id:
            _stack.pop()
            if _stack:
                parent = _stack[-1][0]
        event: Dict[str, Any] = {
            "id": self._id,
            "parent": parent,
            "pid": os.getpid(),
            "name": self.name,
            "path": self._path,
            "t0": self._t0,
            "t1": t1,
        }
        if self.attrs:
            event["a"] = self.attrs
        _record(event)
        if not _in_worker and not _stack:
            _flush_counters()


def span(name: str, **attrs: Any) -> Any:
    """A timing span context manager (shared no-op when disabled).

    ``attrs`` are small JSON-safe scalars attached to the event (set
    counts, record counts, chunk indices) -- identifiers, not payloads.
    """
    if _resolved is False:
        return _NOOP
    if not enabled():
        return _NOOP
    return _Span(name, attrs)


def _record(event: Dict[str, Any]) -> None:
    global _dropped
    if len(_events) >= _MAX_EVENTS:
        _dropped += 1
        _counters["telemetry.dropped"] = (
            _counters.get("telemetry.dropped", 0) + 1
        )
    else:
        _events.append(event)
    if not _in_worker:
        _sink_write(_span_line(event))


def _span_line(event: Dict[str, Any]) -> Dict[str, Any]:
    line = {
        "k": "span",
        "id": event["id"],
        "parent": event["parent"],
        "pid": event["pid"],
        "name": event["name"],
        "t0": event["t0"],
        "t1": event["t1"],
    }
    if "a" in event:
        line["a"] = event["a"]
    return line


# -- counters and gauges --------------------------------------------------


def counter_add(name: str, value: int = 1) -> None:
    """Add ``value`` to a declared counter (no-op when disabled)."""
    if _resolved is False:
        return
    if not enabled():
        return
    definition = CATALOG.get(name)
    if definition is None or definition.kind != "counter":
        raise KeyError(
            f"{name!r} is not a declared counter; add an InstrumentDef in "
            f"repro/telemetry/counters.py"
        )
    _counters[name] = _counters.get(name, 0) + value


def gauge_set(name: str, value: int) -> None:
    """Record a gauge observation (last value wins; no-op when disabled)."""
    if _resolved is False:
        return
    if not enabled():
        return
    definition = CATALOG.get(name)
    if definition is None or definition.kind != "gauge":
        raise KeyError(
            f"{name!r} is not a declared gauge; add an InstrumentDef in "
            f"repro/telemetry/counters.py"
        )
    _gauges[name] = value


def counters_snapshot() -> Dict[str, int]:
    """Current counter totals (copy), gauges included."""
    merged = dict(_counters)
    merged.update(_gauges)
    return merged


_last_flushed: Dict[str, int] = {}


def _flush_counters() -> None:
    """Write a ``count`` line with current totals to the sink."""
    global _last_flushed
    totals = counters_snapshot()
    if not totals or totals == _last_flushed:
        return
    _last_flushed = totals
    _sink_write({
        "k": "count",
        "pid": os.getpid(),
        "t": _now_ns(),
        "c": totals,
    })


# -- the JSONL sink (supervisor process only) -----------------------------


def _sink_write(line: Dict[str, Any]) -> None:
    global _sink
    if _in_worker:
        return
    if _sink is None:
        path = sink_path()
        # Append-and-flush is the point: the sink is an event stream, not
        # an atomically-replaced artifact, and a torn tail is repaired by
        # `mlcache doctor --fix` (partial telemetry is valid telemetry).
        _sink = open(path, "a", encoding="utf-8")  # repro: noqa RPR006
        if _sink.tell() == 0:
            _write_meta()
    json.dump(line, _sink, separators=(",", ":"), sort_keys=True)
    _sink.write("\n")
    _sink.flush()


def _write_meta() -> None:
    assert _sink is not None
    meta = {
        "k": "meta",
        "schema": SINK_SCHEMA,
        "pid": os.getpid(),
        "t0": _now_ns(),
        "unix0": _wall_unix(),
        "argv": list(sys.argv),
    }
    # Same deliberate raw append as _sink_write: an event stream, not an
    # atomically-replaced artifact.
    json.dump(meta, _sink, separators=(",", ":"), sort_keys=True)  # repro: noqa RPR006
    _sink.write("\n")
    _sink.flush()


def close_sink() -> None:
    """Flush any pending counter totals and close the sink file."""
    global _sink
    if _sink is not None:
        _flush_counters()
        _sink.close()
        _sink = None


# -- cross-process forwarding ---------------------------------------------


def enter_worker() -> None:
    """Switch this process into worker mode (call first in worker main).

    Drops any state inherited over fork -- the sink handle (per-line
    flushing means its buffer is empty, so closing the child's duped fd
    never touches the supervisor's stream), buffered events and counter
    totals -- so the worker starts with an empty buffer that
    :func:`drain_worker` ships per job.
    """
    global _in_worker, _sink, _dropped
    _in_worker = True
    if _sink is not None:
        try:
            _sink.close()
        except OSError:
            pass
        _sink = None
    _events.clear()
    _stack.clear()
    _counters.clear()
    _gauges.clear()
    _dropped = 0


def drain_worker() -> Optional[Dict[str, Any]]:
    """The worker's buffered spans and counter deltas, then reset.

    Returns ``None`` when telemetry is disabled or nothing was recorded,
    so the disabled path adds a ``None`` to each result message and
    nothing more.
    """
    if not enabled():
        return None
    if not _events and not _counters and not _gauges:
        return None
    payload = {
        "events": list(_events),
        "counters": dict(_counters),
        "gauges": dict(_gauges),
    }
    _events.clear()
    _counters.clear()
    _gauges.clear()
    return payload


def absorb_worker(payload: Optional[Dict[str, Any]]) -> None:
    """Merge a worker's drained telemetry into this (supervisor) process.

    Worker root spans (``parent is None``) are re-parented under the
    supervisor's innermost open span; counter deltas add, gauge
    observations keep the max.  Worker timestamps are already on the
    shared system-wide monotonic clock -- no translation.
    """
    if payload is None or not enabled():
        return
    parent_id = _stack[-1][0] if _stack else None
    parent_path = _stack[-1][1] if _stack else ""
    for event in payload.get("events", ()):
        if event.get("parent") is None:
            event["parent"] = parent_id
        if parent_path:
            event["path"] = f"{parent_path}/{event['path']}"
        _record(event)
    for name, value in payload.get("counters", {}).items():
        _counters[name] = _counters.get(name, 0) + int(value)
    for name, value in payload.get("gauges", {}).items():
        _gauges[name] = max(_gauges.get(name, 0), int(value))


# -- manifest aggregation (schema 4) --------------------------------------


def mark() -> Dict[str, Any]:
    """An opaque position: events/counters recorded so far.

    :func:`manifest_section` aggregates everything *after* a mark, so a
    manifest covers its own recording window even when several runs
    share one process.
    """
    return {
        "events": len(_events),
        "counters": dict(_counters),
        "gauges": dict(_gauges),
    }


def manifest_section(since: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The manifest ``telemetry`` section: phase tree + counter deltas."""
    if not enabled():
        return {"enabled": False}
    start = int(since["events"]) if since else 0
    base: Dict[str, int] = dict(since["counters"]) if since else {}
    deltas = {
        name: total - base.get(name, 0)
        for name, total in _counters.items()
        if total - base.get(name, 0)
    }
    section: Dict[str, Any] = {
        "enabled": True,
        "phase_ns": phase_tree(_events[start:]),
        "counters": deltas,
    }
    if _gauges:
        section["gauges"] = dict(_gauges)
    if _dropped:
        section["dropped_events"] = _dropped
    return section


def phase_tree(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate span events into a nested ``{name: {ns, count, ...}}`` tree.

    Spans aggregate by *name path*: every ``stackdist.pass`` under
    ``sweep.functional/pool.run/worker.stackdist`` lands in one node with
    a summed ``ns`` and a ``count``, which is the shape a per-phase
    percentage table wants.
    """
    tree: Dict[str, Any] = {}
    for event in events:
        node = tree
        parts = str(event.get("path") or event["name"]).split("/")
        for name in parts[:-1]:
            node = node.setdefault(name, {"ns": 0, "count": 0})
            node = node.setdefault("children", {})
        leaf = node.setdefault(parts[-1], {"ns": 0, "count": 0})
        leaf["ns"] += int(event["t1"]) - int(event["t0"])
        leaf["count"] += 1
    return tree


def iter_events() -> Iterator[Dict[str, Any]]:
    """The in-memory event buffer (tests and the acceptance drill)."""
    return iter(_events)


# -- test support ---------------------------------------------------------


def reset() -> None:
    """Forget everything, including the cached enabled flag and sink.

    For tests that monkeypatch ``REPRO_TELEMETRY`` / the sink path: the
    next :func:`enabled` call re-reads the environment.
    """
    global _resolved, _seq, _dropped, _in_worker
    close_sink()
    _resolved = None
    _seq = 0
    _dropped = 0
    _in_worker = False
    _events.clear()
    _stack.clear()
    _counters.clear()
    _gauges.clear()
    _last_flushed.clear()
