"""`mlcache telemetry` -- export and report over telemetry sinks.

Two subcommands over a recorded JSONL sink (``REPRO_TELEMETRY=1`` runs
write one at ``REPRO_TELEMETRY_PATH``):

* ``export`` converts the sink to Chrome trace-event JSON; drop the
  output on https://ui.perfetto.dev for a per-process flame view.
* ``report`` prints the per-phase time/percentage table and the final
  counter totals in the terminal.

Both tolerate torn sinks from killed runs -- partial telemetry is valid
telemetry; a skipped-lines note points at ``mlcache doctor --fix``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core import envcfg
from repro.telemetry.export import export_chrome_trace
from repro.telemetry.report import report_text

__all__ = ["main"]


def _default_sink() -> str:
    return str(envcfg.get("REPRO_TELEMETRY_PATH"))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mlcache telemetry",
        description=(
            "Inspect a sweep telemetry sink: per-phase attribution in "
            "the terminal, or a Perfetto-loadable trace export."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    export = sub.add_parser(
        "export", help="convert a sink to Chrome/Perfetto trace JSON"
    )
    export.add_argument(
        "sink", nargs="?", default=None,
        help=f"telemetry sink path (default: {_default_sink()})",
    )
    export.add_argument(
        "-o", "--out", default=None,
        help="output trace path (default: <sink>.perfetto.json)",
    )

    report = sub.add_parser(
        "report", help="print the per-phase time/percentage table"
    )
    report.add_argument(
        "sink", nargs="?", default=None,
        help=f"telemetry sink path (default: {_default_sink()})",
    )

    args = parser.parse_args(argv)
    sink = Path(args.sink if args.sink else _default_sink())
    if not sink.exists():
        print(
            f"telemetry sink not found: {sink} "
            f"(run with REPRO_TELEMETRY=1 to record one)",
            file=sys.stderr,
        )
        return 2

    if args.command == "export":
        out = Path(args.out) if args.out else sink.with_suffix(
            sink.suffix + ".perfetto.json"
        )
        spans, skipped = export_chrome_trace(sink, out)
        note = f", {skipped} line(s) skipped" if skipped else ""
        print(f"wrote {out} ({spans} span events{note})")
        print("open it at https://ui.perfetto.dev or chrome://tracing")
        return 0

    print(report_text(sink))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
