"""Sweep telemetry: spans, counters, cross-process attribution.

The façade instrumented code imports::

    from repro import telemetry

    with telemetry.span("stackdist.pass", sets=sets, records=n):
        ...
    telemetry.counter_add("memo.hits")

Default off (``REPRO_TELEMETRY``); disabled spans are a shared no-op
object and counters return after one cached boolean test, so the
instrumentation is effectively free unless asked for.  See
``docs/observability.md`` for the span taxonomy and counter catalog,
and :mod:`repro.telemetry.runtime` for the recorder semantics.
"""

from repro.telemetry.counters import CATALOG, InstrumentDef, markdown_table
from repro.telemetry.runtime import (
    absorb_worker,
    close_sink,
    counter_add,
    counters_snapshot,
    drain_worker,
    enabled,
    enter_worker,
    gauge_set,
    iter_events,
    manifest_section,
    mark,
    phase_tree,
    reset,
    sink_path,
    span,
)

__all__ = [
    "CATALOG",
    "InstrumentDef",
    "markdown_table",
    "absorb_worker",
    "close_sink",
    "counter_add",
    "counters_snapshot",
    "drain_worker",
    "enabled",
    "enter_worker",
    "gauge_set",
    "iter_events",
    "manifest_section",
    "mark",
    "phase_tree",
    "reset",
    "sink_path",
    "span",
]
