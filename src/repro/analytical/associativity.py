"""Equation 3: break-even implementation times for set associativity.

Increasing a downstream cache's set size lowers its miss ratio but
typically lengthens its cycle time (the extra multiplexor in the hit path).
The *break-even implementation time* is the cycle-time degradation at which
the two effects cancel.  For a cache inside a multi-level hierarchy the
paper derives (Equation 3)::

    Delta-t_be = Delta-M_global * t_MMread / M_L1

The ``1 / M_L1`` factor is what makes associativity attractive downstream:
with a 4 KB L1 (global miss ratio ~0.1) the single-level break-even times
are multiplied by ~10, and each doubling of the L1 multiplies them by
another ~1.45 (the inverse of the ~0.69 miss-ratio doubling factor).
"""

from __future__ import annotations

from typing import Sequence


def incremental_breakeven_ns(
    delta_global_miss: float,
    memory_penalty_ns: float,
    l1_global_miss: float,
) -> float:
    """Equation 3: allowed cycle-time degradation for one associativity
    doubling.

    ``delta_global_miss`` is the global miss-ratio improvement from the
    doubling (e.g. direct-mapped minus 2-way); ``memory_penalty_ns`` the
    mean main-memory fetch time; ``l1_global_miss`` the upstream cache's
    global read miss ratio.
    """
    if delta_global_miss < 0:
        # Associativity made things worse; no time budget at all.
        return 0.0
    if memory_penalty_ns <= 0:
        raise ValueError("memory_penalty_ns must be positive")
    if not 0.0 < l1_global_miss <= 1.0:
        raise ValueError("l1_global_miss must be in (0, 1]")
    return delta_global_miss * memory_penalty_ns / l1_global_miss


def cumulative_breakeven_ns(
    global_miss_by_set_size: Sequence[float],
    memory_penalty_ns: float,
    l1_global_miss: float,
) -> float:
    """Break-even time for going direct-mapped to the deepest set size.

    ``global_miss_by_set_size`` lists the global miss ratio at each set
    size along the doubling chain (1, 2, 4, ... way); the cumulative
    break-even time is Equation 3 applied to the total improvement, which
    equals the sum of the incremental times.
    """
    if len(global_miss_by_set_size) < 2:
        raise ValueError("need at least two set sizes")
    total_delta = global_miss_by_set_size[0] - global_miss_by_set_size[-1]
    return incremental_breakeven_ns(total_delta, memory_penalty_ns, l1_global_miss)


def l1_scaling_factor(l1_miss_doubling_factor: float = 0.69) -> float:
    """How much every L2 break-even time grows per L1 size doubling.

    Doubling the L1 multiplies its global miss ratio by
    ``l1_miss_doubling_factor`` (~0.69 for the paper's traces); Equation 3
    divides by that miss ratio, so the break-even times are multiplied by
    its inverse -- the paper's 1.45.
    """
    if not 0.0 < l1_miss_doubling_factor < 1.0:
        raise ValueError("doubling factor must be in (0, 1)")
    return 1.0 / l1_miss_doubling_factor
