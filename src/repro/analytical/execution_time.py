"""Equation 1: the execution-time model.

For a two-level hierarchy with negligible write effects the paper writes
the total cycle count as::

    N_total = N_read * (n_L1 + M_L1 * n_L2 + M_L2 * n_MMread)
            + N_store * t_L1write

where ``n_L1`` is the CPU cycles per L1 read, ``M_L1``/``M_L2`` the *global*
read miss ratios, ``n_L2`` the CPU-cycle cost of an L1 miss that hits in L2,
``n_MMread`` the CPU-cycle cost of an L2 miss, and ``t_L1write`` the mean
write-and-write-stall cycles per store.

The model generalises to any depth: each level contributes its global miss
ratio times the cost of fetching from the next level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.sim.config import SystemConfig


def memory_penalty_cycles(config: SystemConfig) -> float:
    """Nominal CPU cycles to fetch the deepest cache's block from memory.

    One backplane address cycle, the DRAM read, and the data transfer back
    over the memory bus (the paper's nominal 270 ns / 27 cycles for the
    base machine).  The DRAM recovery window is excluded: it is the
    data-dependent part the timing simulator measures.
    """
    backplane = config.effective_backplane_ns
    block_bytes = config.levels[-1].block_bytes
    import math

    data_cycles = math.ceil(
        block_bytes / (config.bus_width_words * 4)
    )
    penalty_ns = backplane + config.memory.read_ns + data_cycles * backplane
    return penalty_ns / config.cpu.cycle_ns


@dataclass(frozen=True)
class ExecutionTimeModel:
    """Equation 1, generalised to N levels.

    ``level_costs[i]`` is the CPU-cycle cost of a fetch served by level
    ``i+1`` (so ``level_costs[0]`` is ``n_L2`` for a two-level system) and
    ``global_miss[i]`` the global read miss ratio of level ``i+1``.  The
    deepest entry of ``level_costs`` is the memory penalty ``n_MMread``.
    """

    #: CPU cycles per read at the first level (1 for the base machine).
    n_l1_cycles: float
    #: Global read miss ratio of each level, nearest first.
    global_miss: Sequence[float]
    #: Cost (CPU cycles) of a miss at each level: ``cost[i]`` is paid once
    #: per level-(i+1) *incoming* miss, i.e. weighted by ``global_miss[i]``.
    miss_costs: Sequence[float]
    #: Mean write + write-stall CPU cycles per store.
    l1_write_cycles: float = 0.0

    def __post_init__(self) -> None:
        if len(self.global_miss) != len(self.miss_costs):
            raise ValueError(
                "global_miss and miss_costs must have one entry per level"
            )
        if self.n_l1_cycles <= 0:
            raise ValueError("n_l1_cycles must be positive")
        for ratio in self.global_miss:
            if not 0.0 <= ratio <= 1.0:
                raise ValueError(f"miss ratio {ratio} outside [0, 1]")

    @property
    def read_cpi(self) -> float:
        """Mean CPU cycles per read."""
        total = self.n_l1_cycles
        for ratio, cost in zip(self.global_miss, self.miss_costs):
            total += ratio * cost
        return total

    def total_cycles(self, n_reads: int, n_stores: int = 0) -> float:
        """Equation 1: total cycle count for a program."""
        if n_reads < 0 or n_stores < 0:
            raise ValueError("reference counts cannot be negative")
        return n_reads * self.read_cpi + n_stores * self.l1_write_cycles

    def total_time_ns(
        self, n_reads: int, n_stores: int, cpu_cycle_ns: float
    ) -> float:
        return self.total_cycles(n_reads, n_stores) * cpu_cycle_ns


def model_from_functional(
    result,
    config: SystemConfig,
    l1_write_cycles: float = 0.0,
) -> ExecutionTimeModel:
    """Instantiate Equation 1 from measured event counts.

    ``result`` is a :class:`~repro.sim.functional.FunctionalResult`; the
    per-level miss costs come from the configuration's nominal latencies
    (an L1 miss that hits at level *i* costs one level-*i* cycle; the
    deepest misses pay the memory penalty).
    """
    global_miss: List[float] = []
    miss_costs: List[float] = []
    depth = config.depth
    for level in range(1, depth + 1):
        global_miss.append(result.global_read_miss_ratio(level))
        if level < depth:
            # Served by the next cache level: one of its cycles.
            cost_ns = config.level_cycle_ns(level)
            miss_costs.append(cost_ns / config.cpu.cycle_ns)
        else:
            miss_costs.append(memory_penalty_cycles(config))
    return ExecutionTimeModel(
        n_l1_cycles=max(1.0, config.levels[0].cycle_cpu_cycles),
        global_miss=tuple(global_miss),
        miss_costs=tuple(miss_costs),
        l1_write_cycles=l1_write_cycles,
    )
