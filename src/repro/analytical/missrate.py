"""The power-law miss-rate model.

Figure 3-1 verifies, for the paper's traces, "the previously reported result
that a doubling of the cache size decreases the solo miss rate by a constant
factor", measured at about 0.69.  Equivalently the miss ratio is
``m(C) = m0 * (C / C0) ** -alpha`` with ``alpha = -log2(0.69) ~ 0.54`` --
"roughly proportional to one over the square-root of the cache size".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PowerLawMissModel:
    """``miss(C) = reference_miss * (C / reference_size) ** -alpha``."""

    reference_size: float
    reference_miss: float
    alpha: float

    def __post_init__(self) -> None:
        if self.reference_size <= 0:
            raise ValueError("reference_size must be positive")
        if not 0.0 < self.reference_miss <= 1.0:
            raise ValueError("reference_miss must be in (0, 1]")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")

    @property
    def doubling_factor(self) -> float:
        """Multiplier applied to the miss ratio per size doubling."""
        return 2.0 ** -self.alpha

    def miss_ratio(self, size: float) -> float:
        """Predicted miss ratio at cache size ``size`` (same unit as the
        reference size), clamped to 1."""
        if size <= 0:
            raise ValueError("size must be positive")
        return min(1.0, self.reference_miss * (size / self.reference_size) ** -self.alpha)

    def derivative(self, size: float) -> float:
        """``d miss / d size`` at ``size`` (negative)."""
        return -self.alpha * self.miss_ratio(size) / size

    def size_for_miss(self, target_miss: float) -> float:
        """Cache size at which the model predicts ``target_miss``."""
        if not 0.0 < target_miss <= 1.0:
            raise ValueError("target_miss must be in (0, 1]")
        return self.reference_size * (target_miss / self.reference_miss) ** (
            -1.0 / self.alpha
        )

    @classmethod
    def from_doubling_factor(
        cls, factor: float, reference_size: float, reference_miss: float
    ) -> "PowerLawMissModel":
        """Build a model from the per-doubling factor (0.69 in the paper)."""
        if not 0.0 < factor < 1.0:
            raise ValueError("doubling factor must be in (0, 1)")
        return cls(
            reference_size=reference_size,
            reference_miss=reference_miss,
            alpha=-math.log2(factor),
        )


def fit_power_law(
    sizes: Sequence[float], miss_ratios: Sequence[float]
) -> Tuple[PowerLawMissModel, float]:
    """Least-squares power-law fit in log-log space.

    Returns ``(model, r_squared)``.  Points with zero miss ratio are
    excluded (they sit on the compulsory plateau, outside the power-law
    regime).  At least two usable points are required.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    miss_ratios = np.asarray(miss_ratios, dtype=np.float64)
    if sizes.shape != miss_ratios.shape:
        raise ValueError("sizes and miss_ratios must be parallel")
    usable = (sizes > 0) & (miss_ratios > 0)
    if usable.sum() < 2:
        raise ValueError("need at least two non-zero points to fit")
    log_size = np.log2(sizes[usable])
    log_miss = np.log2(miss_ratios[usable])
    slope, intercept = np.polyfit(log_size, log_miss, 1)
    predicted = slope * log_size + intercept
    residual = np.sum((log_miss - predicted) ** 2)
    total = np.sum((log_miss - log_miss.mean()) ** 2)
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    reference_size = float(2.0 ** log_size[0])
    reference_miss = float(2.0 ** (slope * log_size[0] + intercept))
    alpha = -float(slope)
    if alpha <= 0:
        raise ValueError(
            "fitted miss ratios do not decrease with size; no power law"
        )
    model = PowerLawMissModel(
        reference_size=reference_size,
        reference_miss=min(1.0, reference_miss),
        alpha=alpha,
    )
    return model, float(r_squared)
