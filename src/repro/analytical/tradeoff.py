"""Equation 2: the speed-size balance at the performance-optimal point.

Differentiating Equation 1 with respect to the L2 size and setting the
result to zero balances the marginal cost of a slower L2 cycle against the
marginal benefit of a lower L2 miss ratio::

    (1 / t_MMread) * d t_L2 / d C  =  -(1 / M_L1) * d M_L2 / d C

The ``1 / M_L1`` factor on the right is the multi-level signature: the L1
cache filters references (fewer L2 hits pay the cycle time) without
removing L2 misses (the miss-side benefit is unchanged), so the balance
tips toward larger, slower second-level caches -- by about 10x for the base
machine's 4 KB L1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.analytical.missrate import PowerLawMissModel


@dataclass(frozen=True)
class LogLinearCycleModel:
    """Cycle time as a function of cache size:
    ``t(C) = base_ns + ns_per_doubling * log2(C / base_size)``.

    The paper's speed-size discussion assumes "the marginal cycle time cost
    of increasing the cache is independent of cache size", which is exactly
    this model.
    """

    base_size: float
    base_ns: float
    ns_per_doubling: float

    def __post_init__(self) -> None:
        if self.base_size <= 0 or self.base_ns <= 0:
            raise ValueError("base size and cycle time must be positive")
        if self.ns_per_doubling < 0:
            raise ValueError("ns_per_doubling cannot be negative")

    def cycle_ns(self, size: float) -> float:
        if size <= 0:
            raise ValueError("size must be positive")
        return self.base_ns + self.ns_per_doubling * math.log2(size / self.base_size)


@dataclass(frozen=True)
class LinearCycleModel:
    """Cycle time linear in cache size:
    ``t(C) = base_ns + ns_per_byte * (C - base_size)``.

    This is the paper's section 4 assumption -- "the marginal cycle time
    cost of increasing the cache is independent of cache size" -- under
    which the optimal size satisfies ``M(C*)/C*  proportional to  M_L1``,
    so each L1 doubling multiplies the optimal L2 size by
    ``f ** (-1 / (1 + alpha))`` (about 1.27, a third of a binary order, for
    the paper's numbers).
    """

    base_size: float
    base_ns: float
    ns_per_byte: float

    def __post_init__(self) -> None:
        if self.base_size <= 0 or self.base_ns <= 0:
            raise ValueError("base size and cycle time must be positive")
        if self.ns_per_byte < 0:
            raise ValueError("ns_per_byte cannot be negative")

    def cycle_ns(self, size: float) -> float:
        if size <= 0:
            raise ValueError("size must be positive")
        return self.base_ns + self.ns_per_byte * (size - self.base_size)


def optimal_size_shift_per_l1_doubling(
    alpha: float,
    l1_doubling_factor: float = 0.69,
    marginal_cost: str = "linear",
) -> float:
    """Closed-form multiplier on the optimal L2 size per L1 size doubling.

    Setting Equation 1's derivative to zero (Equation 2) with the power-law
    miss model ``M(C) ~ C**-alpha``:

    * ``marginal_cost="linear"`` (dt/dC constant, the paper's assumption):
      ``M(C*)/C*`` is proportional to ``M_L1``, so the optimum scales as
      ``M_L1 ** (-1/(1+alpha))`` -- each L1 doubling multiplies it by
      ``f ** (-1/(1+alpha))``, ~2**0.35 ~ 1.27 for f=0.69, the paper's
      "about a third of a binary order of magnitude".
    * ``marginal_cost="per-doubling"`` (dt/d log2 C constant): the optimum
      scales as ``M_L1 ** (-1/alpha)`` instead.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if not 0.0 < l1_doubling_factor < 1.0:
        raise ValueError("l1_doubling_factor must be in (0, 1)")
    if marginal_cost == "linear":
        exponent = -1.0 / (1.0 + alpha)
    elif marginal_cost == "per-doubling":
        exponent = -1.0 / alpha
    else:
        raise ValueError("marginal_cost must be 'linear' or 'per-doubling'")
    return l1_doubling_factor ** exponent


def breakeven_slope_cycles_per_doubling(
    miss_model: PowerLawMissModel,
    size: float,
    l1_global_miss: float,
    memory_penalty_cycles: float,
) -> float:
    """Equation 2 in per-doubling form: the L2 cycle-time increase (in CPU
    cycles) that exactly cancels the benefit of doubling the L2 size.

    ``Delta-t = (M_L2(C) - M_L2(2C)) * n_MMread / M_L1``

    This is the slope of the lines of constant performance in the
    (log2 size, cycle time) design plane.
    """
    if not 0.0 < l1_global_miss <= 1.0:
        raise ValueError("l1_global_miss must be in (0, 1]")
    if memory_penalty_cycles <= 0:
        raise ValueError("memory_penalty_cycles must be positive")
    delta_miss = miss_model.miss_ratio(size) - miss_model.miss_ratio(2 * size)
    return delta_miss * memory_penalty_cycles / l1_global_miss


def optimal_l2_size(
    miss_model: PowerLawMissModel,
    cycle_model: LogLinearCycleModel,
    l1_global_miss: float,
    memory_penalty_ns: float,
    candidate_sizes: Sequence[float],
) -> float:
    """The size minimising the mean L1-miss service time.

    Minimises ``g(C) = M_L1 * t_L2(C) + M_L2(C) * t_MM`` over the candidate
    sizes -- the only part of Equation 1 that depends on the L2
    configuration.  (Sizes are discrete in practice, so the optimum is
    found by evaluation rather than by the derivative.)
    """
    if not candidate_sizes:
        raise ValueError("need at least one candidate size")
    if not 0.0 < l1_global_miss <= 1.0:
        raise ValueError("l1_global_miss must be in (0, 1]")

    def cost(size: float) -> float:
        return (
            l1_global_miss * cycle_model.cycle_ns(size)
            + miss_model.miss_ratio(size) * memory_penalty_ns
        )

    return min(candidate_sizes, key=cost)
