"""Analytical models from the paper.

* :mod:`repro.analytical.execution_time` -- Equation 1: total cycle count
  as a function of global miss ratios and per-level costs.
* :mod:`repro.analytical.missrate` -- the power-law miss-rate model
  (solo miss ratio falls by a constant factor per size doubling; ~0.69 for
  the paper's traces) with least-squares fitting.
* :mod:`repro.analytical.tradeoff` -- Equation 2: the speed-size balance at
  the performance-optimal point and the optimal-size solver.
* :mod:`repro.analytical.associativity` -- Equation 3: incremental and
  cumulative break-even implementation times for set associativity.
"""

from repro.analytical.execution_time import (
    ExecutionTimeModel,
    memory_penalty_cycles,
    model_from_functional,
)
from repro.analytical.missrate import PowerLawMissModel, fit_power_law
from repro.analytical.tradeoff import (
    LinearCycleModel,
    LogLinearCycleModel,
    breakeven_slope_cycles_per_doubling,
    optimal_l2_size,
    optimal_size_shift_per_l1_doubling,
)
from repro.analytical.associativity import (
    cumulative_breakeven_ns,
    incremental_breakeven_ns,
    l1_scaling_factor,
)
from repro.analytical.setassoc import (
    associativity_curve,
    miss_probability_by_distance,
    miss_ratio_spread,
    predicted_miss_ratio,
)

__all__ = [
    "ExecutionTimeModel",
    "model_from_functional",
    "memory_penalty_cycles",
    "PowerLawMissModel",
    "fit_power_law",
    "LinearCycleModel",
    "LogLinearCycleModel",
    "breakeven_slope_cycles_per_doubling",
    "optimal_l2_size",
    "optimal_size_shift_per_l1_doubling",
    "incremental_breakeven_ns",
    "cumulative_breakeven_ns",
    "l1_scaling_factor",
    "predicted_miss_ratio",
    "miss_probability_by_distance",
    "associativity_curve",
    "miss_ratio_spread",
]
