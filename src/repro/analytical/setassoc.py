"""Set-associative miss prediction from stack-distance profiles.

Smith's classic model (A. J. Smith, "Cache Memories", Computing Surveys
1982 -- the paper's reference [12]) predicts the miss ratio of an A-way,
S-set cache from the *fully-associative* LRU stack-distance profile: under
the assumption that blocks map to sets uniformly at random, a reuse at
stack distance ``d`` misses exactly when at least ``A`` of the ``d - 1``
intervening distinct blocks land in the referenced block's set -- a
binomial tail::

    P(miss | d) = P[ Binomial(d - 1, 1/S) >= A ]

This lets a single profiling pass answer miss-ratio questions for *every*
(sets, associativity) geometry at once -- the measurement-side complement
of the paper's Equation 3 analysis (which needs the global miss ratio
improvement of each associativity step).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.stats import binom

from repro.trace.stats import StackDistanceProfile
from repro.units import check_power_of_two


def miss_probability_by_distance(
    distances: np.ndarray, sets: int, associativity: int
) -> np.ndarray:
    """``P(miss | stack distance)`` for each distance under Smith's model."""
    if sets < 1 or associativity < 1:
        raise ValueError("sets and associativity must be at least 1")
    distances = np.asarray(distances, dtype=np.int64)
    if np.any(distances < 1):
        raise ValueError("stack distances are 1-based (1 = immediate reuse)")
    if sets == 1:
        # Fully associative: miss iff more than A-1 intervening blocks,
        # i.e. distance > associativity (exact, no approximation).
        return (distances > associativity).astype(np.float64)
    # P[X >= A] with X ~ Binomial(d - 1, 1/S).
    return binom.sf(associativity - 1, distances - 1, 1.0 / sets)


def predicted_miss_ratio(
    profile: StackDistanceProfile, sets: int, associativity: int
) -> float:
    """Predicted miss ratio of an (S, A) cache from a profile.

    Cold references always miss; reuse references miss with the binomial
    probability of their stack distance.
    """
    if profile.total_references == 0:
        return 0.0
    reuse_misses = float(
        miss_probability_by_distance(
            profile.distances, sets, associativity
        ).sum()
    )
    return (reuse_misses + profile.cold_references) / profile.total_references


def associativity_curve(
    profile: StackDistanceProfile,
    capacity_blocks: int,
    set_sizes: Sequence[int] = (1, 2, 4, 8),
) -> dict:
    """Predicted miss ratio at fixed capacity for each set size.

    ``capacity_blocks`` is held constant, so doubling the associativity
    halves the set count -- the paper's section 5 sweep, answered
    analytically from one profile.
    """
    check_power_of_two(capacity_blocks, "capacity_blocks")
    curve = {}
    for ways in set_sizes:
        check_power_of_two(ways, "set size")
        if ways > capacity_blocks:
            raise ValueError(
                f"{ways}-way does not fit in {capacity_blocks} blocks"
            )
        curve[ways] = predicted_miss_ratio(
            profile, capacity_blocks // ways, ways
        )
    return curve


def miss_ratio_spread(
    profile: StackDistanceProfile, capacity_blocks: int
) -> float:
    """Direct-mapped minus fully-associative predicted miss ratio: the
    conflict-miss headroom associativity can reclaim at this capacity."""
    direct = predicted_miss_ratio(profile, capacity_blocks, 1)
    full = predicted_miss_ratio(profile, 1, capacity_blocks)
    return direct - full
