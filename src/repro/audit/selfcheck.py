"""``python -m repro.audit.selfcheck`` -- end-to-end trust check.

Runs every class of audit the repository has against a small synthetic
workload and reports PASS/FAIL per check:

* conservation laws on the reference functional simulator, the
  vectorised fast path and the timing simulator, over a grid of
  split/unified, write-back/write-through, 1-3 level and prefetching
  configurations;
* fast-path vs reference parity;
* memoised vs direct parity;
* serial vs parallel sweep parity.

Exit status is 0 only if every check passes.  With ``-o PATH`` a run
manifest (including the sweep and memoisation record of the parity
checks) is written as JSON -- CI uploads one as a build artefact.

::

    PYTHONPATH=src python -m repro.audit.selfcheck -o selfcheck.manifest.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, List, Optional, Tuple

from repro.audit import manifest as run_manifest
from repro.audit.invariants import (
    AuditError,
    audit_functional_result,
    audit_timing_result,
)
from repro.audit.parity import (
    check_fast_vs_reference,
    check_memo_vs_direct,
    check_serial_vs_parallel,
)
from repro.cache.policy import PrefetchKind, WritePolicy
from repro.sim.config import LevelConfig, SystemConfig
from repro.sim.fast import run_functional
from repro.sim.functional import FunctionalSimulator
from repro.sim.timing import TimingSimulator
from repro.trace.workload import SyntheticWorkload
from repro.units import KB


def _grid() -> List[Tuple[str, SystemConfig]]:
    """The scenario grid: every structural axis the audit laws cover."""
    l1 = LevelConfig(size_bytes=2 * KB, block_bytes=16, split=True,
                     cycle_cpu_cycles=1, write_hit_cycles=2)
    l2 = LevelConfig(size_bytes=32 * KB, block_bytes=32, cycle_cpu_cycles=3)
    return [
        ("unified-1-level", SystemConfig(levels=(
            LevelConfig(size_bytes=8 * KB, block_bytes=16, cycle_cpu_cycles=2),
        ))),
        ("split-2-level-wb", SystemConfig(levels=(l1, l2))),
        ("unified-2-level-assoc", SystemConfig(levels=(
            LevelConfig(size_bytes=2 * KB, block_bytes=16, associativity=2),
            l2.with_(associativity=4),
        ))),
        ("write-through-l1", SystemConfig(levels=(
            l1.with_(split=False, write_policy=WritePolicy.WRITE_THROUGH,
                     write_allocate=False),
            l2,
        ))),
        ("prefetch-on-miss", SystemConfig(levels=(
            l1.with_(split=False, prefetch=PrefetchKind.ON_MISS),
            l2,
        ))),
        ("fetch-two-blocks", SystemConfig(levels=(
            l1.with_(split=False, fetch_blocks=2),
            l2,
        ))),
        ("three-level", SystemConfig(levels=(
            l1,
            LevelConfig(size_bytes=16 * KB, block_bytes=32, cycle_cpu_cycles=3),
            LevelConfig(size_bytes=128 * KB, block_bytes=32, cycle_cpu_cycles=6),
        ), backplane_cycle_ns=30.0)),
    ]


def _checks(traces, timing_records: int) -> List[Tuple[str, Callable[[], None]]]:
    checks: List[Tuple[str, Callable[[], None]]] = []
    grid = _grid()

    for name, config in grid:
        def conservation(config=config):
            for trace in traces:
                audit_functional_result(
                    trace, FunctionalSimulator(config).run(trace),
                    source="reference",
                )
                audit_functional_result(
                    trace, run_functional(trace, config), source="fast-path"
                )
                short = trace[:timing_records]
                audit_timing_result(
                    short, TimingSimulator(config).run(short)
                )
        checks.append((f"conservation[{name}]", conservation))

    def fast_parity():
        for _, config in grid:
            for trace in traces:
                check_fast_vs_reference(trace, config)
    checks.append(("fast-vs-reference", fast_parity))

    def memo_parity():
        for _, config in grid:
            check_memo_vs_direct(traces[0], config)
    checks.append(("memo-vs-direct", memo_parity))

    def pool_parity():
        check_serial_vs_parallel(
            traces, [config for _, config in grid], workers=2
        )
    checks.append(("serial-vs-parallel", pool_parity))

    return checks


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.audit.selfcheck", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--records", type=int, default=20_000,
        help="records per synthetic trace (default 20000)",
    )
    parser.add_argument(
        "--traces", type=int, default=2,
        help="number of synthetic traces (default 2)",
    )
    parser.add_argument(
        "--timing-records", type=int, default=5_000,
        help="records per timing-simulator run (default 5000)",
    )
    parser.add_argument(
        "-o", "--manifest", type=str, default=None,
        help="write a JSON run manifest to this path",
    )
    args = parser.parse_args(argv)

    traces = [
        SyntheticWorkload(seed=17 + i).trace(
            args.records, name=f"selfcheck-{i}", warmup=args.records // 5
        )
        for i in range(max(1, args.traces))
    ]

    failures = 0
    with run_manifest.recording("selfcheck") as recorder:
        recorder.add_traces(traces)
        recorder.annotate(
            records=args.records,
            traces=args.traces,
            timing_records=args.timing_records,
        )
        results = {}
        for name, check in _checks(traces, args.timing_records):
            with recorder.phase(name):
                try:
                    check()
                except AuditError as error:
                    failures += 1
                    results[name] = "fail"
                    print(f"selfcheck: {name} ... FAIL\n{error}")
                else:
                    results[name] = "ok"
                    print(f"selfcheck: {name} ... ok")
        recorder.annotate(results=results)
    if args.manifest:
        path = recorder.write(args.manifest)
        print(f"selfcheck: manifest written to {path}")
    print(
        f"selfcheck: {len(results) - failures}/{len(results)} checks passed"
    )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
