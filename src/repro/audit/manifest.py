"""Structured run manifests for sweeps and experiments.

A manifest answers, after the fact, "what did that run actually do?":
how big the configuration grid was, which traces went in (by content
fingerprint), how much the memoisation layer absorbed, how many worker
processes the executor used and where the wall time went.  Benchmark
trajectories and regressions become diagnosable from the artefact alone.

Usage::

    from repro.audit import manifest

    with manifest.recording("F5-1") as run:
        run.add_traces(traces)
        with run.phase("sweep"):
            grid = sweep_functional(traces, configs)
    run.write(Path("results/F5-1.manifest.json"))

The sweep executor (:mod:`repro.core.sweep`) reports into every active
recorder via :func:`note_sweep`; when none is active the call is a
no-op, so instrumentation costs nothing outside a recording.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro import telemetry
from repro.audit.invariants import audit_enabled
from repro.sim import memo
from repro.trace.record import Trace

#: Manifest schema version (bump on breaking shape changes).  2 added
#: the resilience fields (resume/retry/timeout/restart counts, failure
#: reports, worker-folded memo counters); 3 added the stack-distance
#: planner counters (``stackdist_groups``/``cells_derived``) and changed
#: what ``simulated`` means on functional sweeps (per-cell simulations
#: only, excluding grid-derived cells); 4 added the ``telemetry``
#: section (the per-phase ``phase_ns`` span tree and counter deltas for
#: this recording window; ``{"enabled": false}`` when REPRO_TELEMETRY
#: is off).
SCHEMA = 4


@dataclass
class SweepNote:
    """One executor fan-out inside a recorded run."""

    kind: str  # "functional" or "timing"
    configs: int
    traces: int
    cells: int
    #: Cells actually simulated (the rest were memoisation hits).
    simulated: int
    workers: int
    #: Whether a process pool was actually used (vs the serial path).
    pooled: bool
    seconds: float
    #: Cells restored from a checkpoint journal instead of simulated.
    resumed: int = 0
    #: Cell retry attempts the executor made (successful or not).
    retries: int = 0
    #: Workers killed for exceeding the per-cell wall-clock budget.
    timeouts: int = 0
    #: Worker processes re-created after a death, hang or kill.
    pool_restarts: int = 0
    #: Cells that failed permanently (see the ``failures`` section).
    failed: int = 0
    #: Stack-distance passes the grid planner scheduled (each covers
    #: every member associativity of one (trace, projection) group).
    stackdist_groups: int = 0
    #: Cells whose results were derived from a grid pass instead of
    #: being simulated individually.
    cells_derived: int = 0

    @property
    def memoised(self) -> int:
        return self.cells - self.simulated - self.resumed - self.cells_derived


class RunManifest:
    """Collects one run's observability record; renders to JSON."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._started_unix = time.time()
        self._started = time.perf_counter()
        self._finished: Optional[float] = None
        self.sweeps: List[SweepNote] = []
        self.phases: List[Dict[str, Any]] = []
        self.traces: List[Dict[str, Any]] = []
        self.failures: List[Dict[str, Any]] = []
        self.extra: Dict[str, Any] = {}
        stats = memo.memo_stats()
        self._memo_before = (stats.hits, stats.misses, stats.evictions)
        self._fold_before = memo.worker_fold_snapshot()
        self._telemetry_mark = telemetry.mark()

    # -- recording -----------------------------------------------------------

    def add_traces(self, traces: Sequence[Trace]) -> None:
        """Record the workload by name, shape and content fingerprint."""
        for trace in traces:
            self.traces.append(
                {
                    "name": trace.name,
                    "records": len(trace),
                    "warmup": trace.warmup,
                    "fingerprint": memo.trace_fingerprint(trace),
                }
            )

    def note_sweep(self, note: SweepNote) -> None:
        self.sweeps.append(note)

    def note_failure(self, report: Dict[str, Any]) -> None:
        """Record one permanently-failed sweep cell (JSON-native dict)."""
        self.failures.append(report)

    @contextmanager
    def phase(self, name: str):
        """Time a named phase of the run."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.phases.append(
                {"name": name, "seconds": time.perf_counter() - start}
            )

    def annotate(self, **fields: Any) -> None:
        """Attach experiment-specific fields (grid axes, scale knobs...)."""
        self.extra.update(fields)

    # -- rendering -----------------------------------------------------------

    def finish(self) -> None:
        """Freeze the wall clock (idempotent; implied by :meth:`as_dict`)."""
        if self._finished is None:
            self._finished = time.perf_counter()

    def as_dict(self) -> Dict[str, Any]:
        # Imported lazily to stay out of the repro.core package-init
        # import cycle (this module is imported by repro.core.sweep).
        from repro.core import envcfg

        self.finish()
        hits_before, misses_before, evictions_before = self._memo_before
        stats = memo.memo_stats()
        hits = stats.hits - hits_before
        misses = stats.misses - misses_before
        lookups = hits + misses
        fold = memo.worker_fold_snapshot()
        folded = tuple(now - then for now, then in zip(fold, self._fold_before))
        return {
            "schema": SCHEMA,
            "name": self.name,
            "created": time.strftime(
                "%Y-%m-%dT%H:%M:%S%z", time.localtime(self._started_unix)
            ),
            "audit_enabled": audit_enabled(),
            "workers_env": envcfg.raw("REPRO_SWEEP_WORKERS"),
            "wall_seconds": self._finished - self._started,
            "traces": list(self.traces),
            "sweeps": [
                {**asdict(note), "memoised": note.memoised}
                for note in self.sweeps
            ],
            "sweep_totals": {
                "sweeps": len(self.sweeps),
                "cells": sum(note.cells for note in self.sweeps),
                "simulated": sum(note.simulated for note in self.sweeps),
                "memoised": sum(note.memoised for note in self.sweeps),
                "seconds": sum(note.seconds for note in self.sweeps),
                "resumed": sum(note.resumed for note in self.sweeps),
                "retries": sum(note.retries for note in self.sweeps),
                "timeouts": sum(note.timeouts for note in self.sweeps),
                "pool_restarts": sum(note.pool_restarts for note in self.sweeps),
                "failed": sum(note.failed for note in self.sweeps),
                "stackdist_groups": sum(
                    note.stackdist_groups for note in self.sweeps
                ),
                "cells_derived": sum(note.cells_derived for note in self.sweeps),
            },
            "memo": {
                "hits": hits,
                "misses": misses,
                "evictions": stats.evictions - evictions_before,
                "hit_ratio": hits / lookups if lookups else 0.0,
                "entries": memo.cache_size(),
                # Of the lookups above, how many happened inside worker
                # processes (folded back by the pooled executor).
                "worker_folded": {
                    "hits": folded[0],
                    "misses": folded[1],
                    "evictions": folded[2],
                },
            },
            "failures": list(self.failures),
            "phases": list(self.phases),
            "telemetry": telemetry.manifest_section(self._telemetry_mark),
            "extra": dict(self.extra),
        }

    def write(self, path) -> Path:
        """Serialise to ``path`` as JSON; returns the path written.

        Atomic (tmp + fsync + rename): a manifest is the audit record of
        a run, so a crash mid-write must leave the previous manifest --
        or nothing -- rather than torn JSON.
        """
        # Lazy: resilience's package init imports sim modules; audit must
        # stay importable before they are.
        from repro.resilience.integrity import atomic_write_text

        path = Path(path)
        atomic_write_text(
            path, json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path


#: Active recorders, innermost last.  Sweep notes go to every one of
#: them so an outer (CLI-level) recording sees nested experiments' work.
_active: List[RunManifest] = []


def current() -> Optional[RunManifest]:
    """The innermost active recorder, if any."""
    return _active[-1] if _active else None


def note_sweep(
    kind: str,
    configs: int,
    traces: int,
    simulated: int,
    workers: int,
    pooled: bool,
    seconds: float,
    resumed: int = 0,
    retries: int = 0,
    timeouts: int = 0,
    pool_restarts: int = 0,
    failed: int = 0,
    stackdist_groups: int = 0,
    cells_derived: int = 0,
) -> None:
    """Report one executor fan-out to every active recorder (no-op when
    nothing is recording)."""
    if not _active:
        return
    note = SweepNote(
        kind=kind,
        configs=configs,
        traces=traces,
        cells=configs * traces,
        simulated=simulated,
        workers=workers,
        pooled=pooled,
        seconds=seconds,
        resumed=resumed,
        retries=retries,
        timeouts=timeouts,
        pool_restarts=pool_restarts,
        failed=failed,
        stackdist_groups=stackdist_groups,
        cells_derived=cells_derived,
    )
    for recorder in _active:
        recorder.note_sweep(note)


def note_failures(failures) -> None:
    """Report permanently-failed cells to every active recorder."""
    if not _active or not failures:
        return
    rendered = [report.as_dict() for report in failures]
    for recorder in _active:
        for report in rendered:
            recorder.note_failure(report)


@contextmanager
def recording(name: str):
    """Activate a :class:`RunManifest` for the duration of the block."""
    recorder = RunManifest(name)
    _active.append(recorder)
    try:
        yield recorder
    finally:
        _active.remove(recorder)
        recorder.finish()
