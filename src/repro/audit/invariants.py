"""Conservation-law audits of simulated event counts.

Every figure in the paper is derived from the same simulated counters:
Equation 1's cycle decomposition, the local/global/solo miss-ratio triad
and the constant-performance slopes all trust that the counts conserve.
This module makes that trust checkable: after a simulation run the
counters must satisfy the hierarchy's conservation laws exactly, or the
run raises :class:`AuditError` instead of returning silently-wrong data.

The laws (all exact, all O(depth) to check):

* **CPU boundary** -- the level-1 caches see exactly the trace's
  post-warmup references: merged L1 ``reads`` equals the measured loads
  plus instruction fetches, merged L1 ``writes`` equals the measured
  stores, and (timing) the instruction count equals the measured fetches.
* **Fill law (L1)** -- with single-block fetch, every L1 fill is caused
  by a demand miss: ``blocks_fetched == read_misses`` plus the allocating
  write misses; with ``fetch_blocks > 1`` the same quantity bounds the
  fills from below (and ``fetch_blocks`` times it from above).
* **Boundary flow** -- the accesses arriving at level *i+1* are exactly
  the traffic level *i* emitted: block fills + writebacks + forwarded
  writes + issued prefetches.  (Skipped under enforced inclusion, whose
  write-around back-invalidations are deliberately outside the per-level
  counters; see DESIGN.md section 6.)
* **Memory flow** -- main-memory reads equal the deepest level's fills
  plus its issued prefetches; main-memory writes equal its writebacks
  plus its forwarded writes.  (Same inclusion caveat.)
* **Bucket sanity** -- misses never exceed accesses in any bucket and no
  counter is negative.
* **Time decomposition** (timing results) -- ``total_ns`` equals the
  ifetch/data-hit base time plus ``read_stall_ns + write_stall_ns``, to
  float round-off.

Auditing is opt-in via the ``REPRO_AUDIT`` environment knob and defaults
to *on* under pytest (``PYTEST_CURRENT_TEST`` is set), so the whole test
suite doubles as a mutation detector; see ``docs/observability.md``.
"""

from __future__ import annotations

import os
from typing import List, Tuple

import numpy as np

from repro.trace.record import IFETCH, WRITE, Trace

#: Environment knob: truthy forces audits on, ``0``/``false``/``off``
#: forces them off, unset defers to "am I running under pytest?".
#: Registered (with its truthiness rules) in :mod:`repro.core.envcfg`.
ENV_KNOB = "REPRO_AUDIT"


class AuditError(AssertionError):
    """A simulated result violated a conservation law."""


def audit_enabled() -> bool:
    """Whether simulator runs should be audited right now.

    ``REPRO_AUDIT`` wins when set; otherwise audits are on exactly when
    running under pytest (workers forked by the sweep executor inherit
    the environment, so audits follow the tests into the pool).
    """
    # Imported lazily: this module is pulled in while repro.core's
    # package init is still running, so a top-level envcfg import would
    # close an import cycle.
    from repro.core import envcfg

    value = envcfg.get(ENV_KNOB)
    if value is None:
        return "PYTEST_CURRENT_TEST" in os.environ
    return value


# -- shared helpers ----------------------------------------------------------


#: Metadata slot caching the measured kind counts.  Underscore-prefixed:
#: content-derived, so structural trace operations (slice, concat) strip
#: it -- see ``repro.trace.record._derived_free_metadata``.
_KIND_COUNTS_SLOT = "_measured_kind_counts"


def _measured_kind_counts(trace: Trace) -> Tuple[int, int, int]:
    """(reads, writes, ifetches) of the post-warmup region, from the trace.

    Cached on the trace so auditing every run of a sweep costs the numpy
    reductions once per trace, not once per cell.
    """
    cached = trace.metadata.get(_KIND_COUNTS_SLOT)
    if cached is not None:
        return cached
    kinds = trace.kinds[trace.warmup:]
    writes = int(np.count_nonzero(kinds == WRITE))
    ifetches = int(np.count_nonzero(kinds == IFETCH))
    counts = (int(kinds.size) - writes, writes, ifetches)
    trace.metadata[_KIND_COUNTS_SLOT] = counts
    return counts


def _check(problems: List[str], ok: bool, law: str, detail: str) -> None:
    if not ok:
        problems.append(f"{law}: {detail}")


def _audit_counts(trace: Trace, result, problems: List[str]) -> None:
    """The count laws shared by functional and timing results."""
    reads, writes, _ = _measured_kind_counts(trace)
    config = result.config
    stats = result.level_stats

    _check(
        problems, result.cpu_reads == reads, "cpu-boundary",
        f"result.cpu_reads={result.cpu_reads} but the trace has {reads} "
        f"post-warmup reads",
    )
    _check(
        problems, result.cpu_writes == writes, "cpu-boundary",
        f"result.cpu_writes={result.cpu_writes} but the trace has {writes} "
        f"post-warmup writes",
    )

    l1 = stats[0]
    _check(
        problems, l1.reads == reads, "cpu-boundary",
        f"L1 counted {l1.reads} demand reads, trace presented {reads}",
    )
    _check(
        problems, l1.writes == writes, "cpu-boundary",
        f"L1 counted {l1.writes} writes, trace presented {writes}",
    )
    _check(
        problems, l1.prefetch_reads == 0, "cpu-boundary",
        f"L1 counted {l1.prefetch_reads} prefetch-bucket reads; nothing "
        f"sits above L1 to issue them",
    )

    for level, s in enumerate(stats, start=1):
        for label, misses, accesses in (
            ("read", s.read_misses, s.reads),
            ("write", s.write_misses, s.writes),
            ("prefetch", s.prefetch_read_misses, s.prefetch_reads),
        ):
            _check(
                problems, 0 <= misses <= accesses, "bucket-sanity",
                f"L{level} {label} misses {misses} outside [0, {accesses}]",
            )
        negatives = [
            name for name, value in vars(s).items() if value < 0
        ]
        _check(
            problems, not negatives, "bucket-sanity",
            f"L{level} negative counters: {negatives}",
        )

    first = config.levels[0]
    allocating = l1.write_misses if first.write_allocate else 0
    demand_fills = l1.read_misses + allocating
    if first.fetch_blocks == 1:
        _check(
            problems, l1.blocks_fetched == demand_fills, "fill-law",
            f"L1 fetched {l1.blocks_fetched} blocks but counted "
            f"{l1.read_misses} read misses + {allocating} allocating "
            f"write misses",
        )
    else:
        _check(
            problems,
            demand_fills <= l1.blocks_fetched
            <= demand_fills * first.fetch_blocks,
            "fill-law",
            f"L1 fetched {l1.blocks_fetched} blocks, outside "
            f"[{demand_fills}, {demand_fills * first.fetch_blocks}] for "
            f"fetch_blocks={first.fetch_blocks}",
        )

    if config.enforce_inclusion:
        # Back-invalidations write *around* the evicting level, a path
        # deliberately outside the per-level counters (DESIGN.md section
        # 6), so the flow laws do not apply verbatim.
        return

    for i in range(len(stats) - 1):
        up, down = stats[i], stats[i + 1]
        emitted = (
            up.blocks_fetched + up.writebacks + up.writes_forwarded
            + up.prefetches_issued
        )
        arrived = down.reads + down.writes + down.prefetch_reads
        _check(
            problems, arrived == emitted, "boundary-flow",
            f"L{i + 2} received {arrived} accesses but L{i + 1} emitted "
            f"{emitted} (fills {up.blocks_fetched} + writebacks "
            f"{up.writebacks} + forwarded {up.writes_forwarded} + "
            f"prefetches {up.prefetches_issued})",
        )

    deepest = stats[-1]
    _check(
        problems,
        result.memory_reads == deepest.blocks_fetched + deepest.prefetches_issued,
        "memory-flow",
        f"memory_reads={result.memory_reads} but the deepest level fetched "
        f"{deepest.blocks_fetched} blocks and prefetched "
        f"{deepest.prefetches_issued}",
    )
    _check(
        problems,
        result.memory_writes == deepest.writebacks + deepest.writes_forwarded,
        "memory-flow",
        f"memory_writes={result.memory_writes} but the deepest level wrote "
        f"back {deepest.writebacks} and forwarded {deepest.writes_forwarded}",
    )


def _raise(source: str, trace: Trace, problems: List[str]) -> None:
    if problems:
        laws = "\n".join(f"  - {problem}" for problem in problems)
        raise AuditError(
            f"{source} run on trace {trace.name!r} ({len(trace)} records, "
            f"warmup {trace.warmup}) violated {len(problems)} conservation "
            f"law(s):\n{laws}"
        )


# -- entry points ------------------------------------------------------------


def audit_functional_result(trace: Trace, result, source: str = "functional") -> None:
    """Check a :class:`~repro.sim.functional.FunctionalResult`; raise
    :class:`AuditError` on any violation."""
    problems: List[str] = []
    _, _, ifetches = _measured_kind_counts(trace)
    _check(
        problems, result.cpu_ifetches == ifetches, "cpu-boundary",
        f"result.cpu_ifetches={result.cpu_ifetches} but the trace has "
        f"{ifetches} post-warmup instruction fetches",
    )
    _audit_counts(trace, result, problems)
    _raise(source, trace, problems)


def audit_timing_result(trace: Trace, result, source: str = "timing") -> None:
    """Check a :class:`~repro.sim.timing.TimingResult`; raise
    :class:`AuditError` on any violation."""
    problems: List[str] = []
    _, _, ifetches = _measured_kind_counts(trace)
    _check(
        problems, result.instructions == ifetches, "cpu-boundary",
        f"result.instructions={result.instructions} but the trace has "
        f"{ifetches} post-warmup instruction fetches",
    )
    _audit_counts(trace, result, problems)

    recomposed = result.base_ns + result.read_stall_ns + result.write_stall_ns
    tolerance = 1e-6 + 1e-9 * abs(result.total_ns)
    _check(
        problems,
        abs(result.total_ns - recomposed) <= tolerance,
        "time-decomposition",
        f"total_ns={result.total_ns!r} but base {result.base_ns!r} + read "
        f"stall {result.read_stall_ns!r} + write stall "
        f"{result.write_stall_ns!r} = {recomposed!r}",
    )
    for name in ("base_ns", "read_stall_ns", "write_stall_ns", "total_ns"):
        _check(
            problems, getattr(result, name) >= 0.0, "time-decomposition",
            f"{name}={getattr(result, name)!r} is negative",
        )
    _raise(source, trace, problems)


def maybe_audit_functional(trace: Trace, result, source: str = "functional"):
    """Audit when enabled; always returns ``result`` for chaining."""
    if audit_enabled():
        audit_functional_result(trace, result, source)
    return result


def maybe_audit_timing(trace: Trace, result, source: str = "timing"):
    """Audit when enabled; always returns ``result`` for chaining."""
    if audit_enabled():
        audit_timing_result(trace, result, source)
    return result
