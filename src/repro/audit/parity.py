"""Differential parity checks between the repository's redundant engines.

The repository deliberately computes the same counts several ways -- a
vectorised fast path against a reference event-driven simulator, a
memoisation cache against direct runs, a process pool against the serial
loop.  That redundancy is only a safety net if someone compares the
answers; these helpers are that comparison, reusable from tests and from
the ``repro.audit.selfcheck`` CLI.

Each check raises :class:`ParityError` (an :class:`AuditError`) with the
first diverging counter, or returns quietly.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.audit.invariants import AuditError
from repro.sim import memo
from repro.sim.config import SystemConfig
from repro.sim.fast import FastFunctionalSimulator, fast_eligible
from repro.sim.functional import FunctionalResult, FunctionalSimulator
from repro.trace.record import Trace


class ParityError(AuditError):
    """Two engines that must agree produced different counts."""


#: Per-level counters compared between functional results.
_LEVEL_FIELDS = (
    "reads", "read_misses", "writes", "write_misses", "writebacks",
    "blocks_fetched", "prefetched_blocks", "writes_forwarded",
    "prefetch_reads", "prefetch_read_misses", "prefetches_issued",
    "useful_prefetches",
)


def assert_counts_equal(
    a: FunctionalResult, b: FunctionalResult, context: str = "parity"
) -> None:
    """Raise :class:`ParityError` on the first diverging counter."""
    diffs: List[str] = []
    for name in ("cpu_reads", "cpu_writes", "memory_reads", "memory_writes"):
        left, right = getattr(a, name), getattr(b, name)
        if left != right:
            diffs.append(f"{name}: {left} != {right}")
    if len(a.level_stats) != len(b.level_stats):
        diffs.append(
            f"depth: {len(a.level_stats)} != {len(b.level_stats)} levels"
        )
    else:
        for level, (sa, sb) in enumerate(zip(a.level_stats, b.level_stats), 1):
            for name in _LEVEL_FIELDS:
                left, right = getattr(sa, name), getattr(sb, name)
                if left != right:
                    diffs.append(f"L{level}.{name}: {left} != {right}")
    if diffs:
        listed = "\n".join(f"  - {diff}" for diff in diffs)
        raise ParityError(
            f"{context}: counts diverge on trace {a.trace_name!r}:\n{listed}"
        )


def check_fast_vs_reference(trace: Trace, config: SystemConfig) -> None:
    """The vectorised engine must be count-identical to the reference on
    every eligible configuration (no-op when the config is ineligible)."""
    if not fast_eligible(config):
        return
    fast = FastFunctionalSimulator(config).run(trace)
    reference = FunctionalSimulator(config).run(trace)
    assert_counts_equal(fast, reference, context="fast-vs-reference")


def check_memo_vs_direct(trace: Trace, config: SystemConfig) -> None:
    """A memoised lookup must return the counts of a direct run."""
    from repro.sim.fast import run_functional

    memoised = memo.run_functional_memo(trace, config)
    direct = run_functional(trace, config)
    assert_counts_equal(memoised, direct, context="memo-vs-direct")


def check_serial_vs_parallel(
    traces: Sequence[Trace],
    configs: Sequence[SystemConfig],
    workers: int = 2,
) -> None:
    """The pooled executor must reproduce the serial grid cell by cell.

    Clears the memoisation cache before each leg so both actually
    simulate; leaves the serial leg's results cached afterwards.
    """
    from repro.core.sweep import sweep_functional

    memo.clear_memo_cache(reset_stats=False)
    pooled = sweep_functional(traces, configs, workers=workers)
    memo.clear_memo_cache(reset_stats=False)
    serial = sweep_functional(traces, configs, workers=1)
    for row_serial, row_pooled in zip(serial, pooled):
        for a, b in zip(row_serial, row_pooled):
            assert_counts_equal(a, b, context="serial-vs-parallel")
