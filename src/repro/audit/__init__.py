"""Invariant audits, differential parity checks and run manifests.

The trustworthiness layer of the repository (ISSUE 2): every simulated
count feeding a figure can be cross-checked, and every sweep leaves a
structured record of what it did.

* :mod:`repro.audit.invariants` -- per-run conservation laws, enforced
  inside the simulators when ``REPRO_AUDIT`` is on (default under
  pytest).
* :mod:`repro.audit.parity` -- differential checks: vectorised vs
  reference simulator, memoised vs direct runs, serial vs parallel
  sweeps.  (Imported lazily by consumers; it pulls in the simulators.)
* :mod:`repro.audit.manifest` -- JSON run manifests: grid shape, trace
  fingerprints, memoisation counters, worker counts and phase timings.
* :mod:`repro.audit.selfcheck` -- ``python -m repro.audit.selfcheck``,
  a CLI that runs the parity suite end to end and emits a manifest.

See ``docs/observability.md`` for the full story.
"""

from repro.audit.invariants import (
    ENV_KNOB,
    AuditError,
    audit_enabled,
    audit_functional_result,
    audit_timing_result,
    maybe_audit_functional,
    maybe_audit_timing,
)

__all__ = [
    "ENV_KNOB",
    "AuditError",
    "audit_enabled",
    "audit_functional_result",
    "audit_timing_result",
    "maybe_audit_functional",
    "maybe_audit_timing",
]
