"""The ``repro.lint`` framework: rules, findings, suppressions, baseline.

This module is the domain-aware static-analysis engine behind
``mlcache lint`` (see ``docs/static-analysis.md``).  It is deliberately
small: rules are AST visitors registered in a module-level registry;
the engine parses each file once, hands every applicable rule a
:class:`ModuleContext`, and post-processes the findings through two
suppression layers:

* **inline** -- a ``# repro: noqa RPR001`` comment on the flagged line
  suppresses the named rules there (``# repro: noqa`` with no ids
  suppresses every rule on the line).  Inline suppressions are for
  *intentional* exemptions and should carry an explanatory comment;
* **baseline** -- a committed JSON file of grandfathered finding
  fingerprints (path + rule + message, deliberately line-number-free so
  unrelated edits do not invalidate it).  New findings never match the
  baseline and fail the run; fixed findings make the baseline stale.

Scoping uses *package-relative* paths: ``src/repro/sim/fast.py`` is
matched as ``sim/fast.py``, so fixtures under
``tests/lint/fixtures/repro/sim/`` exercise exactly the scope rules the
real tree is held to.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Recognised severities, most severe first.
SEVERITIES: Tuple[str, ...] = ("error", "warning")

#: Inline suppression grammar: ``# repro: noqa`` or ``# repro: noqa RPR001``
#: (ids comma- or space-separated; an optional colon after ``noqa``).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\b:?\s*([A-Z]{3}\d{3}(?:[,\s]+[A-Z]{3}\d{3})*)?")

#: Rule id shape (three letters, three digits -- e.g. ``RPR001``).
_RULE_ID_RE = re.compile(r"^[A-Z]{3}\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    severity: str = "error"

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file."""
        return f"{self.path}::{self.rule}::{self.message}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    #: Filesystem path (as given to the engine).
    path: Path
    #: Package-relative posix path ("sim/fast.py"); what scopes match.
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, source: Optional[str] = None) -> "ModuleContext":
        text = path.read_text() if source is None else source
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            relpath=package_relpath(path),
            source=text,
            tree=tree,
            lines=text.split("\n"),
        )


def package_relpath(path: Path) -> str:
    """The path relative to the innermost ``repro`` package directory.

    ``src/repro/sim/fast.py`` -> ``sim/fast.py``;
    ``tests/lint/fixtures/repro/sim/bad.py`` -> ``sim/bad.py``; a path
    with no ``repro`` directory falls back to its own name, which keeps
    scope-free rules working on arbitrary files.
    """
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro" and i + 1 < len(parts):
            return "/".join(parts[i + 1:])
    return parts[-1]


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scope`` is a tuple of package-relative prefixes the rule applies
    to (empty = everywhere); ``exclude`` wins over ``scope``.
    """

    rule_id: str = ""
    name: str = ""
    severity: str = "error"
    #: One-paragraph rationale shown by ``--list-rules`` and the docs.
    rationale: str = ""
    scope: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if any(relpath.startswith(prefix) for prefix in self.exclude):
            return False
        if not self.scope:
            return True
        return any(relpath.startswith(prefix) for prefix in self.scope)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one instance of ``cls`` to the registry."""
    instance = cls()
    if not _RULE_ID_RE.match(instance.rule_id):
        raise ValueError(f"bad rule id {instance.rule_id!r} on {cls.__name__}")
    if instance.severity not in SEVERITIES:
        raise ValueError(f"bad severity {instance.severity!r} on {cls.__name__}")
    if instance.rule_id in _REGISTRY:
        raise ValueError(f"rule {instance.rule_id} registered twice")
    _REGISTRY[instance.rule_id] = instance
    return cls


def _load_builtin_rules() -> None:
    """Import the built-in rule package (registration happens on import).

    Lazy so rule modules can import this engine without a cycle.
    """
    import repro.lint.rules  # noqa: F401


def all_rules() -> List[Rule]:
    _load_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """The selected rules (all, when ``select`` is ``None``)."""
    if select is None:
        return all_rules()
    _load_builtin_rules()
    rules = []
    for rule_id in select:
        if rule_id not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise ValueError(f"unknown rule {rule_id!r} (known: {known})")
        rules.append(_REGISTRY[rule_id])
    return sorted(rules, key=lambda rule: rule.rule_id)


# -- inline suppressions -----------------------------------------------------


def noqa_rules(line_text: str) -> Optional[frozenset]:
    """Parse an inline suppression on one source line.

    Returns ``None`` when the line has no ``repro: noqa`` comment, an
    empty frozenset for a blanket suppression, or the frozenset of
    suppressed rule ids.
    """
    match = _NOQA_RE.search(line_text)
    if match is None:
        return None
    ids = match.group(1)
    if not ids:
        return frozenset()
    return frozenset(part for part in re.split(r"[,\s]+", ids.strip()) if part)


def _apply_noqa(
    findings: List[Finding], lines: List[str]
) -> Tuple[List[Finding], int]:
    kept: List[Finding] = []
    suppressed = 0
    for item in findings:
        line_text = lines[item.line - 1] if 0 < item.line <= len(lines) else ""
        suppression = noqa_rules(line_text)
        if suppression is not None and (not suppression or item.rule in suppression):
            suppressed += 1
            continue
        kept.append(item)
    return kept, suppressed


# -- baseline ----------------------------------------------------------------


class Baseline:
    """Grandfathered finding fingerprints, with per-fingerprint counts."""

    VERSION = 1

    def __init__(self, counts: Optional[Dict[str, int]] = None) -> None:
        self.counts: Dict[str, int] = dict(counts or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text())
        if payload.get("version") != cls.VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {payload.get('version')!r}"
            )
        counts = payload.get("findings", {})
        if not isinstance(counts, dict):
            raise ValueError(f"{path}: baseline 'findings' must be an object")
        return cls({str(key): int(value) for key, value in counts.items()})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Dict[str, int] = {}
        for item in findings:
            counts[item.fingerprint] = counts.get(item.fingerprint, 0) + 1
        return cls(counts)

    def write(self, path: Path) -> None:
        payload = {
            "version": self.VERSION,
            "findings": {key: self.counts[key] for key in sorted(self.counts)},
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")

    def filter(self, findings: List[Finding]) -> Tuple[List[Finding], int]:
        """Drop findings covered by the baseline (bounded per fingerprint)."""
        remaining = dict(self.counts)
        kept: List[Finding] = []
        matched = 0
        for item in findings:
            if remaining.get(item.fingerprint, 0) > 0:
                remaining[item.fingerprint] -= 1
                matched += 1
            else:
                kept.append(item)
        return kept, matched


# -- the runner --------------------------------------------------------------


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    files: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "findings": [item.as_dict() for item in self.findings],
            "summary": {
                "files": self.files,
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
            },
        }


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise ValueError(f"{path}: not a Python file or directory")
    return files


def check_module(module: ModuleContext, rules: Sequence[Rule]) -> List[Finding]:
    """Raw rule findings for one parsed module (no suppression layers)."""
    findings: List[Finding] = []
    for rule in rules:
        if rule.applies_to(module.relpath):
            findings.extend(rule.check(module))
    findings.sort(key=lambda item: (item.line, item.column, item.rule))
    return findings


def check_source(
    source: str, relpath: str, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint a source string as if it lived at ``repro/<relpath>``.

    Inline ``noqa`` suppressions apply; there is no baseline.  This is
    the entry point the fixture tests use.
    """
    module = ModuleContext(
        path=Path(relpath),
        relpath=relpath,
        source=source,
        tree=ast.parse(source, filename=relpath),
        lines=source.split("\n"),
    )
    findings = check_module(module, get_rules() if rules is None else rules)
    kept, _ = _apply_noqa(findings, module.lines)
    return kept


def lint_paths(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint every Python file under ``paths`` and post-process findings."""
    rules = get_rules(select)
    files = iter_python_files([Path(p) for p in paths])
    all_findings: List[Finding] = []
    suppressed = 0
    for path in files:
        try:
            module = ModuleContext.parse(path)
        except SyntaxError as exc:
            all_findings.append(
                Finding(
                    rule="RPR000",
                    path=package_relpath(path),
                    line=exc.lineno or 1,
                    column=(exc.offset or 0) + 1 if exc.offset else 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        findings = check_module(module, rules)
        findings, dropped = _apply_noqa(findings, module.lines)
        suppressed += dropped
        all_findings.extend(findings)
    baselined = 0
    if baseline is not None:
        all_findings, baselined = baseline.filter(all_findings)
    all_findings.sort(key=lambda item: (item.path, item.line, item.column, item.rule))
    return LintResult(
        findings=all_findings,
        files=len(files),
        suppressed=suppressed,
        baselined=baselined,
    )


# -- shared AST helpers (used by several rules) ------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_string_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` bindings (simple, unconditional).

    Lets rules resolve idioms like ``WORKERS_ENV = "REPRO_SWEEP_WORKERS"``
    followed by ``envcfg.get(WORKERS_ENV)``.
    """
    constants: Dict[str, str] = {}
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if (
            value is not None
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            for target in targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = value.value
    return constants


def resolve_string(
    node: ast.expr, constants: Dict[str, str]
) -> Optional[str]:
    """The string a call argument denotes, through one constant hop."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    return None
