"""The ``repro.lint`` framework: rules, findings, suppressions, baseline.

This module is the domain-aware static-analysis engine behind
``mlcache lint`` (see ``docs/static-analysis.md``).  It is deliberately
small: rules are AST visitors registered in a module-level registry;
the engine parses each file once, hands every applicable rule a
:class:`ModuleContext`, and post-processes the findings through two
suppression layers:

* **inline** -- a ``# repro: noqa RPR001`` comment on the flagged line
  suppresses the named rules there (``# repro: noqa`` with no ids
  suppresses every rule on the line).  Inline suppressions are for
  *intentional* exemptions and should carry an explanatory comment;
* **baseline** -- a committed JSON file of grandfathered finding
  fingerprints (path + rule + message, deliberately line-number-free so
  unrelated edits do not invalidate it).  New findings never match the
  baseline and fail the run; fixed findings make the baseline stale.

Scoping uses *package-relative* paths: ``src/repro/sim/fast.py`` is
matched as ``sim/fast.py``, so fixtures under
``tests/lint/fixtures/repro/sim/`` exercise exactly the scope rules the
real tree is held to.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lint.project.analysis import ProjectAnalysis

#: Recognised severities, most severe first.
SEVERITIES: Tuple[str, ...] = ("error", "warning")

#: Inline suppression grammar: ``# repro: noqa`` or ``# repro: noqa RPR001``
#: (ids comma- or space-separated; an optional colon after ``noqa``).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\b:?\s*([A-Z]{3}\d{3}(?:[,\s]+[A-Z]{3}\d{3})*)?")

#: Rule id shape (three letters, three digits -- e.g. ``RPR001``).
_RULE_ID_RE = re.compile(r"^[A-Z]{3}\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Interprocedural rules attach a ``chain`` -- the witness call path
    from the flagged function down to the effectful leaf (bare symbol
    names, e.g. ``("run_functional", "_helper", "os.environ.get")``).
    """

    rule: str
    path: str
    line: int
    column: int
    message: str
    severity: str = "error"
    chain: Tuple[str, ...] = ()

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file.

        Chain-bearing findings fingerprint on a digest of the bare-name
        call chain instead of the message text: moving a helper between
        modules (or rewording the surrounding diagnostic) does not churn
        the baseline as long as the witness path is the same.
        """
        if self.chain:
            digest = hashlib.sha256(
                " -> ".join(self.chain).encode("utf-8")
            ).hexdigest()[:12]
            return f"{self.path}::{self.rule}::chain:{digest}"
        return f"{self.path}::{self.rule}::{self.message}"

    def render(self) -> str:
        text = (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )
        if self.chain:
            text += f" [chain: {' -> '.join(self.chain)}]"
        return text

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": self.severity,
            "message": self.message,
        }
        if self.chain:
            payload["chain"] = list(self.chain)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        chain_raw = payload.get("chain")
        chain = (
            tuple(str(part) for part in chain_raw)
            if isinstance(chain_raw, list)
            else ()
        )
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(str(payload["line"])),
            column=int(str(payload["column"])),
            message=str(payload["message"]),
            severity=str(payload.get("severity", "error")),
            chain=chain,
        )


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    #: Filesystem path (as given to the engine).
    path: Path
    #: Package-relative posix path ("sim/fast.py"); what scopes match.
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, source: Optional[str] = None) -> "ModuleContext":
        text = path.read_text() if source is None else source
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            relpath=package_relpath(path),
            source=text,
            tree=tree,
            lines=text.split("\n"),
        )


def package_relpath(path: Path) -> str:
    """The path relative to the innermost ``repro`` package directory.

    ``src/repro/sim/fast.py`` -> ``sim/fast.py``;
    ``tests/lint/fixtures/repro/sim/bad.py`` -> ``sim/bad.py``; a path
    with no ``repro`` directory falls back to its own name, which keeps
    scope-free rules working on arbitrary files.
    """
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro" and i + 1 < len(parts):
            return "/".join(parts[i + 1:])
    return parts[-1]


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scope`` is a tuple of package-relative prefixes the rule applies
    to (empty = everywhere); ``exclude`` wins over ``scope``.
    """

    rule_id: str = ""
    name: str = ""
    severity: str = "error"
    #: One-paragraph rationale shown by ``--list-rules`` and the docs.
    rationale: str = ""
    #: Longer help shown by ``--explain RULEID`` (falls back to rationale).
    explain: str = ""
    scope: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()
    #: True for interprocedural rules that need the project analysis
    #: (call graph + effect propagation); they only run under
    #: ``--project`` and implement :meth:`check_project` instead.
    requires_project: bool = False

    def applies_to(self, relpath: str) -> bool:
        if any(relpath.startswith(prefix) for prefix in self.exclude):
            return False
        if not self.scope:
            return True
        return any(relpath.startswith(prefix) for prefix in self.scope)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(self, analysis: "ProjectAnalysis") -> Iterator[Finding]:
        """Project-wide findings; only called when ``requires_project``."""
        return iter(())

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one instance of ``cls`` to the registry."""
    instance = cls()
    if not _RULE_ID_RE.match(instance.rule_id):
        raise ValueError(f"bad rule id {instance.rule_id!r} on {cls.__name__}")
    if instance.severity not in SEVERITIES:
        raise ValueError(f"bad severity {instance.severity!r} on {cls.__name__}")
    if instance.rule_id in _REGISTRY:
        raise ValueError(f"rule {instance.rule_id} registered twice")
    _REGISTRY[instance.rule_id] = instance
    return cls


def _load_builtin_rules() -> None:
    """Import the built-in rule package (registration happens on import).

    Lazy so rule modules can import this engine without a cycle.
    """
    import repro.lint.rules  # noqa: F401


def all_rules() -> List[Rule]:
    _load_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """The selected rules (all, when ``select`` is ``None``)."""
    if select is None:
        return all_rules()
    _load_builtin_rules()
    rules = []
    for rule_id in select:
        if rule_id not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise ValueError(f"unknown rule {rule_id!r} (known: {known})")
        rules.append(_REGISTRY[rule_id])
    return sorted(rules, key=lambda rule: rule.rule_id)


# -- inline suppressions -----------------------------------------------------


def noqa_rules(line_text: str) -> Optional[frozenset]:
    """Parse an inline suppression on one source line.

    Returns ``None`` when the line has no ``repro: noqa`` comment, an
    empty frozenset for a blanket suppression, or the frozenset of
    suppressed rule ids.
    """
    match = _NOQA_RE.search(line_text)
    if match is None:
        return None
    ids = match.group(1)
    if not ids:
        return frozenset()
    return frozenset(part for part in re.split(r"[,\s]+", ids.strip()) if part)


def _statement_spans(tree: ast.AST) -> List[Tuple[int, int]]:
    """Line spans suppressions extend over: simple statements span all
    their physical lines; compound statements (``with``, ``if``, ``def``,
    ...) span only their header, so a noqa on a ``with`` line does not
    blanket the whole block."""
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        end = getattr(node, "end_lineno", None) or start
        body_start: Optional[int] = None
        for fieldname in ("body", "orelse", "finalbody", "handlers"):
            for child in getattr(node, fieldname, None) or ():
                lineno = getattr(child, "lineno", None)
                if lineno is not None:
                    body_start = (
                        lineno if body_start is None else min(body_start, lineno)
                    )
        if body_start is not None:
            end = max(start, body_start - 1)
        if end > start:
            spans.append((start, end))
    return spans


def noqa_line_map(
    tree: ast.AST, lines: Sequence[str]
) -> Dict[int, FrozenSet[str]]:
    """Per-line suppressions, extended across multi-line statements.

    A ``# repro: noqa RULEID`` anywhere inside a statement's physical
    line span suppresses that rule on *every* line of the statement, so
    a wrapped call flagged on its first line is covered by a trailing
    comment on its last.  Values follow :func:`noqa_rules`: an empty
    frozenset is a blanket suppression.
    """
    directives: Dict[int, FrozenSet[str]] = {}
    for number, text in enumerate(lines, start=1):
        ids = noqa_rules(text)
        if ids is not None:
            directives[number] = ids
    if not directives:
        return {}
    result: Dict[int, FrozenSet[str]] = dict(directives)
    for start, end in _statement_spans(tree):
        found = [
            directives[number]
            for number in range(start, end + 1)
            if number in directives
        ]
        if not found:
            continue
        merged: FrozenSet[str] = (
            frozenset() if any(not ids for ids in found)
            else frozenset().union(*found)
        )
        for number in range(start, end + 1):
            previous = result.get(number)
            if previous is None:
                result[number] = merged
            elif not previous or not merged:
                result[number] = frozenset()
            else:
                result[number] = previous | merged
    return result


def apply_noqa_map(
    findings: Iterable[Finding], noqa_map: Dict[int, FrozenSet[str]]
) -> Tuple[List[Finding], int]:
    """Drop findings whose line carries a matching inline suppression."""
    kept: List[Finding] = []
    suppressed = 0
    for item in findings:
        suppression = noqa_map.get(item.line)
        if suppression is not None and (not suppression or item.rule in suppression):
            suppressed += 1
            continue
        kept.append(item)
    return kept, suppressed


# -- baseline ----------------------------------------------------------------


class Baseline:
    """Grandfathered finding fingerprints, with per-fingerprint counts."""

    VERSION = 1

    def __init__(self, counts: Optional[Dict[str, int]] = None) -> None:
        self.counts: Dict[str, int] = dict(counts or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text())
        if payload.get("version") != cls.VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {payload.get('version')!r}"
            )
        counts = payload.get("findings", {})
        if not isinstance(counts, dict):
            raise ValueError(f"{path}: baseline 'findings' must be an object")
        return cls({str(key): int(value) for key, value in counts.items()})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Dict[str, int] = {}
        for item in findings:
            counts[item.fingerprint] = counts.get(item.fingerprint, 0) + 1
        return cls(counts)

    def write(self, path: Path) -> None:
        from repro.resilience.integrity import atomic_write_text

        payload = {
            "version": self.VERSION,
            "findings": {key: self.counts[key] for key in sorted(self.counts)},
        }
        atomic_write_text(path, json.dumps(payload, indent=2) + "\n")

    def filter(self, findings: List[Finding]) -> Tuple[List[Finding], int]:
        """Drop findings covered by the baseline (bounded per fingerprint)."""
        remaining = dict(self.counts)
        kept: List[Finding] = []
        matched = 0
        for item in findings:
            if remaining.get(item.fingerprint, 0) > 0:
                remaining[item.fingerprint] -= 1
                matched += 1
            else:
                kept.append(item)
        return kept, matched


# -- the runner --------------------------------------------------------------


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    files: int = 0
    suppressed: int = 0
    baselined: int = 0
    #: Files actually parsed this run (< ``files`` on a warm index).
    parsed: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "findings": [item.as_dict() for item in self.findings],
            "summary": {
                "files": self.files,
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "parsed": self.parsed,
            },
        }


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise ValueError(f"{path}: not a Python file or directory")
    return files


def syntax_error_finding(path: Path, exc: SyntaxError) -> Finding:
    """The RPR000 pseudo-finding for a file that does not parse."""
    return Finding(
        rule="RPR000",
        path=package_relpath(path),
        line=exc.lineno or 1,
        column=(exc.offset or 0) + 1 if exc.offset else 1,
        message=f"file does not parse: {exc.msg}",
    )


def check_module(module: ModuleContext, rules: Sequence[Rule]) -> List[Finding]:
    """Raw rule findings for one parsed module (no suppression layers).

    Project rules are skipped here -- they need the whole-program
    analysis and run through :meth:`Rule.check_project` instead.
    """
    findings: List[Finding] = []
    for rule in rules:
        if not rule.requires_project and rule.applies_to(module.relpath):
            findings.extend(rule.check(module))
    findings.sort(key=lambda item: (item.line, item.column, item.rule))
    return findings


def check_source(
    source: str,
    relpath: str,
    rules: Optional[Sequence[Rule]] = None,
    project: bool = True,
) -> List[Finding]:
    """Lint a source string as if it lived at ``repro/<relpath>``.

    Inline ``noqa`` suppressions apply; there is no baseline.  With
    ``project`` (the default) the interprocedural rules also run,
    treating the source as a one-module project.  This is the entry
    point the fixture tests use.
    """
    module = ModuleContext(
        path=Path(relpath),
        relpath=relpath,
        source=source,
        tree=ast.parse(source, filename=relpath),
        lines=source.split("\n"),
    )
    selected = get_rules() if rules is None else list(rules)
    noqa_map = noqa_line_map(module.tree, module.lines)
    findings, _ = apply_noqa_map(check_module(module, selected), noqa_map)
    project_rules = [rule for rule in selected if rule.requires_project]
    if project and project_rules:
        from repro.lint.project.analysis import ProjectAnalysis
        from repro.lint.project.indexer import ProjectIndex

        index = ProjectIndex.from_contexts([module])
        analysis = ProjectAnalysis.build(index)
        for rule in project_rules:
            extra, _ = apply_noqa_map(rule.check_project(analysis), noqa_map)
            findings.extend(extra)
    findings.sort(key=lambda item: (item.line, item.column, item.rule))
    return findings


def _lint_flat(
    files: Sequence[Path], rules: Sequence[Rule]
) -> Tuple[List[Finding], int]:
    """The classic per-file pass: parse, run intra rules, apply noqa."""
    all_findings: List[Finding] = []
    suppressed = 0
    for path in files:
        try:
            module = ModuleContext.parse(path)
        except SyntaxError as exc:
            all_findings.append(syntax_error_finding(path, exc))
            continue
        noqa_map = noqa_line_map(module.tree, module.lines)
        findings, dropped = apply_noqa_map(check_module(module, rules), noqa_map)
        suppressed += dropped
        all_findings.extend(findings)
    return all_findings, suppressed


def lint_paths(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    *,
    project: bool = False,
    cache_path: Optional[Path] = None,
    report_relpaths: Optional[Set[str]] = None,
    parse_hook: Optional[Callable[[Path], None]] = None,
) -> LintResult:
    """Lint every Python file under ``paths`` and post-process findings.

    ``project=True`` routes the run through the digest-keyed project
    index (see :mod:`repro.lint.project`): per-module findings come from
    cached summaries when the file is unchanged, and the interprocedural
    rules run over the call graph.  ``report_relpaths`` limits *reported*
    findings to those package-relative paths (``--changed``) without
    narrowing the analysed project.  ``parse_hook`` is called once per
    actually-parsed file (test instrumentation).
    """
    rules = get_rules(select)
    files = iter_python_files([Path(p) for p in paths])
    if not project:
        all_findings, suppressed = _lint_flat(files, rules)
        parsed = len(files)
    else:
        from repro.lint.project.analysis import ProjectAnalysis
        from repro.lint.project.indexer import ProjectIndex

        index = ProjectIndex.build(
            files, cache_path=cache_path, parse_hook=parse_hook
        )
        selected_ids = {rule.rule_id for rule in rules}
        all_findings = []
        suppressed = 0
        noqa_by_relpath: Dict[str, Dict[int, FrozenSet[str]]] = {}
        for summary in index.summaries:
            noqa_by_relpath.setdefault(summary.relpath, summary.noqa_map())
            suppressed += summary.suppressed
            for payload in summary.findings:
                item = Finding.from_dict(payload)
                if item.rule == "RPR000" or item.rule in selected_ids:
                    all_findings.append(item)
        project_rules = [rule for rule in rules if rule.requires_project]
        if project_rules:
            analysis = ProjectAnalysis.build(index)
            for rule in project_rules:
                by_path: Dict[str, List[Finding]] = {}
                for item in rule.check_project(analysis):
                    by_path.setdefault(item.path, []).append(item)
                for relpath, scoped in by_path.items():
                    kept, dropped = apply_noqa_map(
                        scoped, noqa_by_relpath.get(relpath, {})
                    )
                    suppressed += dropped
                    all_findings.extend(kept)
        parsed = index.parsed_count
    if report_relpaths is not None:
        all_findings = [f for f in all_findings if f.path in report_relpaths]
    baselined = 0
    if baseline is not None:
        all_findings, baselined = baseline.filter(all_findings)
    all_findings.sort(key=lambda item: (item.path, item.line, item.column, item.rule))
    return LintResult(
        findings=all_findings,
        files=len(files),
        suppressed=suppressed,
        baselined=baselined,
        parsed=parsed,
    )


# -- shared AST helpers (used by several rules) ------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_string_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` bindings (simple, unconditional).

    Lets rules resolve idioms like ``WORKERS_ENV = "REPRO_SWEEP_WORKERS"``
    followed by ``envcfg.get(WORKERS_ENV)``.
    """
    constants: Dict[str, str] = {}
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if (
            value is not None
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            for target in targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = value.value
    return constants


def resolve_string(
    node: ast.expr, constants: Dict[str, str]
) -> Optional[str]:
    """The string a call argument denotes, through one constant hop."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    return None
