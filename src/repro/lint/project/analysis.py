"""Call graph and fixed-point effect propagation over module summaries.

Builds the project symbol table (fully-qualified function names, with
import aliases resolved through re-export chains), the call graph, and
three derived analyses the interprocedural rules consume:

* :meth:`ProjectAnalysis.effect_map` -- per function, the transitive
  effect set {reads-env, reads-clock, raw-disk-write, spawns-process,
  mutates-global}, each with a witness: the call line where it enters
  the function and the bare-name chain down to the effectful leaf.
  A ``barrier_rule`` makes inline ``noqa`` for that rule an *effect
  barrier*: a suppressed call site does not propagate its effects to
  callers (the suppression vouches for the whole subtree).  Functions
  defined in :data:`SANCTIONED_RELPATHS` (the blessed clock and the
  telemetry layer) contribute no effects at all, independent of any
  barrier rule.
* :meth:`ProjectAnalysis.unprotected_chains` -- functions reachable
  from a call-graph root purely through call sites that are not inside
  an advisory-lock region (the lock-discipline reachability RPR007
  checks writes against).
* :meth:`ProjectAnalysis.pool_flow_sites` -- every concrete argument
  that flows into a worker-pool callable slot (``run_pooled`` /
  ``_pool_map`` / ``Process(target=...)``), including flows through
  wrapper functions and parameter positions (RPR009's input).

Everything is deterministic: functions iterate in sorted key order and
propagation only ever *adds* facts, so runs are stable and terminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.project.indexer import (
    CallArg,
    CallSite,
    FunctionInfo,
    ModuleSummary,
    ProjectIndex,
)

#: Worker-pool entry points: call tail -> the callable's slot (a
#: positional index or a keyword name).  Mirrors the RPR004 table.
POOL_ENTRY_SLOTS: Dict[str, str] = {
    "run_pooled": "1",
    "_pool_map": "1",
    "Process": "target",
}

#: Effect kinds the propagator tracks (guarded-write sites are consumed
#: by the lock analysis instead, not propagated as effects).
EFFECT_KINDS: Tuple[str, ...] = (
    "reads-env",
    "reads-clock",
    "raw-disk-write",
    "spawns-process",
    "mutates-global",
)

#: Modules whose effects are sanctioned *by design* and never propagate
#: through the call graph: the one blessed monotonic clock
#: (``repro/core/clock.py``) and the telemetry layer built on it.  Their
#: clock reads, recorder-global mutations and sink appends are
#: observation-only -- readings land in spans, counters and manifests,
#: never in simulation results -- so a ``span(...)`` in a memoised
#: kernel must not mark that kernel impure (RPR008) or fork-unsafe
#: (RPR009).  This is the structural alternative to scattering ``noqa``
#: waivers over every instrumented call site; the modules themselves
#: stay small and auditable.
SANCTIONED_RELPATHS: Tuple[str, ...] = ("core/clock.py", "telemetry/")


def _sanctioned(relpath: str) -> bool:
    return relpath == "core/clock.py" or relpath.startswith("telemetry/")


@dataclass(frozen=True)
class Witness:
    """How an effect enters a function: the line of the responsible
    call (or direct site) and the bare-name chain to the leaf."""

    kind: str
    line: int
    chain: Tuple[str, ...]

    @property
    def inherited(self) -> bool:
        """True when the effect arrives through a call (chain has at
        least one function hop before the leaf detail)."""
        return len(self.chain) >= 2


@dataclass
class FunctionNode:
    """One function in the project graph."""

    key: str  # fully-qualified: "repro.sim.fast.run_functional"
    module: str
    relpath: str
    info: FunctionInfo


@dataclass
class PoolFlowSite:
    """A concrete value observed flowing into a pool callable slot."""

    caller: FunctionNode
    site: CallSite
    arg: CallArg
    chain: Tuple[str, ...]  # wrapper path ending at the entry point

    @property
    def direct(self) -> bool:
        """True at a literal ``run_pooled(...)``/``Process(...)`` call
        (where the intraprocedural RPR004 already looks)."""
        return len(self.chain) == 1


@dataclass
class ProjectAnalysis:
    """The symbol table, call graph and analyses for one index."""

    index: ProjectIndex
    functions: Dict[str, FunctionNode] = field(default_factory=dict)
    modules: Dict[str, ModuleSummary] = field(default_factory=dict)
    #: caller key -> [(call site, resolved callee key or None)]
    edges: Dict[str, List[Tuple[CallSite, Optional[str]]]] = field(
        default_factory=dict
    )
    #: callee key -> [(caller key, call site)]
    callers: Dict[str, List[Tuple[str, CallSite]]] = field(default_factory=dict)

    @classmethod
    def build(cls, index: ProjectIndex) -> "ProjectAnalysis":
        analysis = cls(index=index)
        for summary in index.summaries:
            analysis.modules.setdefault(summary.module, summary)
            for info in summary.functions:
                key = f"{summary.module}.{info.qualname}"
                analysis.functions[key] = FunctionNode(
                    key=key,
                    module=summary.module,
                    relpath=summary.relpath,
                    info=info,
                )
        for key in sorted(analysis.functions):
            node = analysis.functions[key]
            edge_list: List[Tuple[CallSite, Optional[str]]] = []
            for site in node.info.calls:
                target = analysis.resolve_fq(site.resolved)
                if target == key:
                    target = None  # direct recursion adds nothing
                edge_list.append((site, target))
                if target is not None:
                    analysis.callers.setdefault(target, []).append((key, site))
            analysis.edges[key] = edge_list
        return analysis

    # -- resolution ----------------------------------------------------------

    def resolve_fq(self, ref: Optional[str], depth: int = 0) -> Optional[str]:
        """A fully-qualified reference to a function key, following
        import aliases and re-export chains (bounded hops)."""
        if ref is None or depth > 8:
            return None
        if ref in self.functions:
            return ref
        if f"{ref}.__init__" in self.functions:
            return f"{ref}.__init__"
        parts = ref.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            summary = self.modules.get(module)
            if summary is None:
                continue
            rest = parts[cut:]
            target = summary.imports.get(rest[0])
            if target is None:
                return None
            return self.resolve_fq(".".join([target] + rest[1:]), depth + 1)
        return None

    def resolve_local_name(
        self, node: FunctionNode, name: str
    ) -> Optional[str]:
        """A bare name inside ``node``'s module to a function key."""
        summary = self.modules.get(node.module)
        if summary is None:
            return None
        candidate = f"{node.module}.{name}"
        resolved = self.resolve_fq(candidate)
        if resolved is not None:
            return resolved
        target = summary.imports.get(name)
        return self.resolve_fq(target) if target else None

    def _noqa_barrier(self, node: FunctionNode, line: int, rule_id: str) -> bool:
        summary = self.modules.get(node.module)
        if summary is None:
            return False
        ids = summary.noqa.get(line)
        return ids is not None and (not ids or rule_id in ids)

    # -- transitive effects --------------------------------------------------

    def effect_map(
        self, barrier_rule: Optional[str] = None
    ) -> Dict[str, Dict[str, Witness]]:
        """Per function, the transitive effect witnesses (fixed point)."""
        effects: Dict[str, Dict[str, Witness]] = {}
        for key in sorted(self.functions):
            node = self.functions[key]
            per: Dict[str, Witness] = {}
            if _sanctioned(node.relpath):
                # Sanctioned modules contribute no effects at all --
                # empty sets mean nothing propagates to callers, for
                # every consumer of this map regardless of barrier_rule.
                effects[key] = per
                continue
            for site in node.info.effects:
                if site.kind not in EFFECT_KINDS:
                    continue
                if barrier_rule is not None and self._noqa_barrier(
                    node, site.line, barrier_rule
                ):
                    continue
                per.setdefault(
                    site.kind,
                    Witness(kind=site.kind, line=site.line, chain=(site.detail,)),
                )
            effects[key] = per
        changed = True
        while changed:
            changed = False
            for key in sorted(self.functions):
                node = self.functions[key]
                own = effects[key]
                for site, target in self.edges.get(key, ()):
                    if target is None:
                        continue
                    if barrier_rule is not None and self._noqa_barrier(
                        node, site.line, barrier_rule
                    ):
                        continue
                    callee_name = self.functions[target].info.name
                    for kind, witness in effects[target].items():
                        if kind in own:
                            continue
                        own[kind] = Witness(
                            kind=kind,
                            line=site.line,
                            chain=(callee_name,) + witness.chain,
                        )
                        changed = True
        return effects

    # -- lock-discipline reachability ----------------------------------------

    def unprotected_chains(self) -> Dict[str, Tuple[str, ...]]:
        """Functions reachable from a call-graph root through call sites
        outside every advisory-lock region, with the witness chain.

        A function absent from the result is only ever entered with a
        lock held (or is a lock-guaranteed method): writes inside it are
        discharged.
        """
        chains: Dict[str, Tuple[str, ...]] = {}
        queue: List[str] = []
        for key in sorted(self.functions):
            node = self.functions[key]
            if node.info.lock_guaranteed:
                continue
            if not self.callers.get(key):
                chains[key] = (node.info.name,)
                queue.append(key)
        while queue:
            key = queue.pop(0)
            for site, target in self.edges.get(key, ()):
                if target is None or site.locked:
                    continue
                callee = self.functions[target]
                if callee.info.lock_guaranteed or target in chains:
                    continue
                chains[target] = chains[key] + (callee.info.name,)
                queue.append(target)
        return chains

    # -- root chains (diagnostics) -------------------------------------------

    def root_chain(self, key: str) -> Tuple[str, ...]:
        """A shortest bare-name path from a call-graph root down to
        ``key`` (for diagnostics; ``key`` itself when it is a root)."""
        start = (self.functions[key].info.name,)
        visited: Set[str] = {key}
        frontier: List[Tuple[str, Tuple[str, ...]]] = [(key, start)]
        while frontier:
            current, chain = frontier.pop(0)
            incoming = self.callers.get(current, [])
            if not incoming:
                return chain
            for caller_key, _site in incoming:
                if caller_key in visited:
                    continue
                visited.add(caller_key)
                frontier.append(
                    (caller_key, (self.functions[caller_key].info.name,) + chain)
                )
        return start  # every ancestor sits on a cycle

    # -- pool-argument flow ----------------------------------------------------

    def pool_flow_sites(self) -> List[PoolFlowSite]:
        """Concrete values flowing into worker-pool callable slots,
        through any depth of wrapper functions (fixed point over the
        parameter-flow relation, then one collection pass)."""
        flows: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        changed = True
        while changed:
            changed = False
            for key in sorted(self.functions):
                node = self.functions[key]
                for site, target in self.edges.get(key, ()):
                    for slots, chain in self._flowing_slots(site, target, flows):
                        for arg in site.args:
                            if arg.slot not in slots:
                                continue
                            if (
                                arg.kind == "name"
                                and arg.name in node.info.params
                            ):
                                per = flows.setdefault(key, {})
                                if arg.name not in per:
                                    per[arg.name] = chain
                                    changed = True
        sites: List[PoolFlowSite] = []
        for key in sorted(self.functions):
            node = self.functions[key]
            for site, target in self.edges.get(key, ()):
                for slots, chain in self._flowing_slots(site, target, flows):
                    for arg in site.args:
                        if arg.slot not in slots:
                            continue
                        if arg.kind == "name" and arg.name in node.info.params:
                            continue  # propagated, checked at the outer caller
                        sites.append(
                            PoolFlowSite(
                                caller=node, site=site, arg=arg, chain=chain
                            )
                        )
        return sites

    def _flowing_slots(
        self,
        site: CallSite,
        target: Optional[str],
        flows: Dict[str, Dict[str, Tuple[str, ...]]],
    ) -> List[Tuple[Set[str], Tuple[str, ...]]]:
        """The callable-carrying slots of one call site: ``(accepted
        slot spellings, wrapper chain)`` pairs."""
        result: List[Tuple[Set[str], Tuple[str, ...]]] = []
        if site.tail in POOL_ENTRY_SLOTS:
            result.append(({POOL_ENTRY_SLOTS[site.tail]}, (site.tail,)))
        if target is not None and target in flows:
            callee = self.functions[target].info
            for param, chain in flows[target].items():
                slots: Set[str] = {param}
                if param in callee.params:
                    slots.add(str(callee.params.index(param)))
                result.append((slots, (callee.name,) + chain))
        return result
