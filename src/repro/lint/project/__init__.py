"""Project-level analysis for ``repro.lint``: indexer, call graph, effects.

The intraprocedural rules (RPR001-RPR005) see one function body at a
time; the contracts they guard -- memo purity, atomic artifact writes,
one-writer locking, fork safety -- are *call-graph* properties.  This
package closes the gap:

* :mod:`repro.lint.project.indexer` parses every module once into a
  compact :class:`~repro.lint.project.indexer.ModuleSummary` (functions,
  resolved call references, direct effect sites, lock regions) and
  caches summaries on disk keyed by per-file content digests, so warm
  runs re-parse only changed files;
* :mod:`repro.lint.project.analysis` builds the symbol table and call
  graph over those summaries and runs the fixed-point effect propagator
  (transitive {reads-env, reads-clock, raw-disk-write, spawns-process,
  mutates-global} per function, each with a witness call chain);
* :mod:`repro.lint.project.rules` ships the interprocedural rules
  RPR006-RPR009 on top.

See ``docs/static-analysis.md`` for the architecture notes.
"""

from repro.lint.project.analysis import ProjectAnalysis
from repro.lint.project.indexer import ModuleSummary, ProjectIndex

__all__ = ["ModuleSummary", "ProjectAnalysis", "ProjectIndex"]
