"""The interprocedural rules: RPR006-RPR009.

All four run on :class:`~repro.lint.project.analysis.ProjectAnalysis`
(under ``mlcache lint --project``) and attach the witness call chain to
every finding, e.g. ``run_functional -> _helper -> os.environ.get``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from repro.lint.engine import Finding, Rule, register
from repro.lint.project.analysis import FunctionNode, ProjectAnalysis
from repro.lint.rules.memopurity import _STRICT_MODULES, _memo_pattern_name

#: Human verbs for the effect kinds, used in diagnostics.
_EFFECT_VERBS: Dict[str, str] = {
    "reads-env": "reads the process environment",
    "reads-clock": "reads a clock",
    "raw-disk-write": "performs a raw disk write",
    "spawns-process": "spawns a process",
    "mutates-global": "mutates global state",
}


def _finding(
    rule: Rule,
    node: FunctionNode,
    line: int,
    message: str,
    chain: Tuple[str, ...],
) -> Finding:
    return Finding(
        rule=rule.rule_id,
        path=node.relpath,
        line=line,
        column=1,
        message=message,
        severity=rule.severity,
        chain=chain,
    )


@register
class ArtifactWriteRule(Rule):
    """RPR006: artifact bytes reach disk only through the integrity layer."""

    rule_id = "RPR006"
    name = "artifact-write-safety"
    severity = "error"
    exclude = ("resilience/integrity.py",)
    requires_project = True
    rationale = (
        "Raw writes (open(.., 'w'), Path.write_text, json.dump, np.save) "
        "can tear on crash or ENOSPC and leave a half-written artifact "
        "that a resumed sweep would read as truth.  Every durable write "
        "must go through resilience.integrity.atomic_write_text/_bytes "
        "or atomic_writer (tmp file + fsync + rename); only integrity.py "
        "itself touches the raw primitives."
    )
    explain = (
        "The project analysis flags every raw disk-write sink outside "
        "resilience/integrity.py, wherever it hides in the call graph.  "
        "Writes through a ``with atomic_writer(path) as handle:`` handle "
        "are exempt.  Example diagnostic:\n\n"
        "  trace/dinero.py:31:1: RPR006 [error] raw artifact write "
        "(open(.., \"w\")) ... [chain: write_dinero -> open(.., \"w\")]\n\n"
        "Fix by routing the write through atomic_write_text, "
        "atomic_write_bytes or atomic_writer; deliberate raw writes "
        "(e.g. the chaos drill's vandalism) carry an explained "
        "``# repro: noqa RPR006``."
    )

    def check_project(self, analysis: ProjectAnalysis) -> Iterator[Finding]:
        for key in sorted(analysis.functions):
            node = analysis.functions[key]
            if not self.applies_to(node.relpath):
                continue
            for site in node.info.effects:
                if site.kind != "raw-disk-write":
                    continue
                chain = analysis.root_chain(key) + (site.detail,)
                yield _finding(
                    self,
                    node,
                    site.line,
                    f"raw artifact write ({site.detail}); route it through "
                    "resilience.integrity.atomic_write_text/_bytes or "
                    "atomic_writer",
                    chain,
                )


@register
class LockDisciplineRule(Rule):
    """RPR007: journal/cache mutations happen under the advisory lock."""

    rule_id = "RPR007"
    name = "lock-discipline"
    severity = "error"
    requires_project = True
    rationale = (
        "The sweep journal and the shared workloads trace cache follow a "
        "one-writer protocol: every mutation (write, rename, unlink, "
        "quarantine) must happen inside an AdvisoryLock/SweepJournal "
        "context.  A mutation reachable through a call path that never "
        "acquires the lock races concurrent sweeps sharing the cache."
    )
    explain = (
        "Applies to modules whose filename contains 'journal' or "
        "'workloads'.  A mutation site is discharged when it is "
        "lexically inside a lock region (``with AdvisoryLock(..)``, "
        "``lock.acquire(..) ... lock.release()``), when its class "
        "acquires the lock in ``__init__`` (SweepJournal), or when "
        "every call path into its function passes through such a "
        "region.  Otherwise the diagnostic shows one unlocked path:\n\n"
        "  resilience/journal.py:42:1: RPR007 [error] ... "
        "[chain: compact_journal -> _rewrite_segment -> atomic_write_text]"
    )

    @staticmethod
    def _guarded(relpath: str) -> bool:
        basename = relpath.rsplit("/", 1)[-1]
        return "journal" in basename or "workloads" in basename

    def check_project(self, analysis: ProjectAnalysis) -> Iterator[Finding]:
        unprotected = analysis.unprotected_chains()
        for key in sorted(analysis.functions):
            node = analysis.functions[key]
            if not self._guarded(node.relpath) or not self.applies_to(
                node.relpath
            ):
                continue
            if node.info.lock_guaranteed or key not in unprotected:
                continue
            seen: Set[Tuple[int, str]] = set()
            for site in node.info.effects:
                if site.kind not in ("raw-disk-write", "guarded-write"):
                    continue
                if site.locked or (site.line, site.detail) in seen:
                    continue
                seen.add((site.line, site.detail))
                chain = unprotected[key] + (site.detail,)
                yield _finding(
                    self,
                    node,
                    site.line,
                    f"mutation ({site.detail}) outside any AdvisoryLock/"
                    "SweepJournal context, reachable without a lock",
                    chain,
                )


@register
class TransitiveMemoPurityRule(Rule):
    """RPR008: RPR005 closed over the call graph."""

    rule_id = "RPR008"
    name = "transitive-memo-purity"
    severity = "error"
    scope = ("sim/",)
    requires_project = True
    rationale = (
        "Memo keys assume functional behaviour: same arguments, same "
        "result.  RPR005 checks each memo-path function body; this rule "
        "closes the contract over the call graph, so a helper three "
        "calls down that reads os.environ or a clock still poisons the "
        "memo key -- and the diagnostic prints the propagated chain."
    )
    explain = (
        "Roots are the RPR005 population: every function in the strict "
        "sim modules (memo/fast/functional/hierarchy/stackdist) plus "
        "memo-pattern names elsewhere under sim/.  The fixed-point "
        "propagator attributes each transitive effect to the call site "
        "where it enters the root:\n\n"
        "  sim/fast.py:660:1: RPR008 [error] memo-path function "
        "'run_functional' transitively reads the process environment "
        "[chain: run_functional -> replay_chunk_records -> get -> "
        "os.environ.get]\n\n"
        "An inline ``# repro: noqa RPR008`` on the call line is an "
        "effect *barrier*: it vouches for that subtree and stops the "
        "propagation to callers (use with an explanatory comment)."
    )

    def _is_root(self, node: FunctionNode) -> bool:
        if node.relpath in _STRICT_MODULES:
            return True
        return node.relpath.startswith("sim/") and _memo_pattern_name(
            node.info.name
        )

    #: The kinds that poison a memo key: ambient *reads*.  Global
    #: mutation is excluded on purpose -- the memo layer's own
    #: idempotent cache fills are global writes, and a write never
    #: changes what f(args) returns (fork divergence is RPR009's job).
    _PURITY_KINDS = ("reads-env", "reads-clock")

    def check_project(self, analysis: ProjectAnalysis) -> Iterator[Finding]:
        effects = analysis.effect_map(barrier_rule=self.rule_id)
        for key in sorted(analysis.functions):
            node = analysis.functions[key]
            if not self.applies_to(node.relpath) or not self._is_root(node):
                continue
            for kind in self._PURITY_KINDS:
                witness = effects[key].get(kind)
                if witness is None or not witness.inherited:
                    continue  # direct effects are RPR005/RPR006 territory
                chain = (node.info.name,) + witness.chain
                yield _finding(
                    self,
                    node,
                    witness.line,
                    f"memo-path function '{node.info.name}' transitively "
                    f"{_EFFECT_VERBS[kind]}",
                    chain,
                )


@register
class TransitiveForkSafetyRule(Rule):
    """RPR009: pool callables stay safe through wrappers and locals."""

    rule_id = "RPR009"
    name = "transitive-fork-safety"
    severity = "error"
    requires_project = True
    rationale = (
        "RPR004 checks the literal arguments of run_pooled/Process "
        "calls; this rule follows the value flow, so a lambda stashed "
        "in a local, a callable forwarded through a wrapper function, "
        "or a compute function that mutates globals three calls down "
        "is still caught before it reaches a worker process."
    )
    explain = (
        "A parameter-flow fixed point marks every function parameter "
        "that ends up in a pool callable slot (run_pooled/_pool_map "
        "slot 1, Process(target=...)); each concrete value observed at "
        "a flowing slot is then checked: lambdas and nested functions "
        "are not picklable under spawn, and callables that transitively "
        "mutate module globals diverge between fork and spawn workers."
        "\n\n  resilience/executor.py:90:1: RPR009 [error] ... "
        "[chain: compute -> _submit -> run_pooled]"
    )

    def check_project(self, analysis: ProjectAnalysis) -> Iterator[Finding]:
        effects = analysis.effect_map()
        seen: Set[Tuple[str, int, str, str]] = set()
        for flow in analysis.pool_flow_sites():
            node = flow.caller
            if not self.applies_to(node.relpath):
                continue
            arg = flow.arg
            dedup = (node.key, flow.site.line, arg.slot, arg.name or "<lambda>")
            if dedup in seen:
                continue
            seen.add(dedup)
            display = arg.name or "lambda"
            chain = (display,) + flow.chain
            if arg.kind == "lambda":
                if flow.direct:
                    continue  # literal lambda at the entry: RPR004's catch
                yield _finding(
                    self,
                    node,
                    flow.site.line,
                    "lambda flows into the worker pool through a wrapper; "
                    "workers need a module-level function",
                    chain,
                )
                continue
            if arg.name in node.info.lambda_locals:
                yield _finding(
                    self,
                    node,
                    flow.site.line,
                    f"'{arg.name}' is bound to a lambda and reaches the "
                    "worker pool; workers need a module-level function",
                    chain,
                )
                continue
            if arg.name in node.info.nested_names:
                if flow.direct:
                    continue  # RPR004 flags nested names at the entry call
                yield _finding(
                    self,
                    node,
                    flow.site.line,
                    f"nested function '{arg.name}' reaches the worker pool "
                    "through a wrapper; workers need a module-level function",
                    chain,
                )
                continue
            target = analysis.resolve_local_name(node, arg.name)
            if target is None:
                continue
            target_node = analysis.functions[target]
            if target_node.info.is_nested:
                if not flow.direct:
                    yield _finding(
                        self,
                        node,
                        flow.site.line,
                        f"nested function '{arg.name}' reaches the worker "
                        "pool through a wrapper",
                        chain,
                    )
                continue
            witness = effects[target].get("mutates-global")
            if witness is None:
                continue
            direct_global = bool(target_node.info.mutated_globals)
            same_module = target_node.module == node.module
            if flow.direct and direct_global and same_module:
                continue  # RPR004 already flags this at the entry call
            effect_path = " -> ".join((target_node.info.name,) + witness.chain)
            yield _finding(
                self,
                node,
                flow.site.line,
                f"pool callable '{arg.name}' transitively mutates global "
                f"state ({effect_path}); workers must not rely on global "
                "mutation",
                chain,
            )
