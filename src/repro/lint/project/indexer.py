"""The module indexer: one parse per file, digest-keyed summary cache.

Each Python module is reduced to a :class:`ModuleSummary` -- its import
alias table, one :class:`FunctionInfo` per function (direct effect
sites, resolved call references, lock regions, pool-relevant call
arguments), the statement-span noqa map, and the intraprocedural
findings.  Summaries are JSON-serialisable; :meth:`ProjectIndex.build`
persists them keyed by the file's content digest plus an engine salt
(the lint package's own source + the registered env-var names), so a
warm run re-parses only files whose bytes changed and a stale summary
is structurally impossible.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.engine import (
    ModuleContext,
    apply_noqa_map,
    check_module,
    dotted_name,
    get_rules,
    noqa_line_map,
    package_relpath,
    syntax_error_finding,
)

#: Bump when the summary shape or extraction logic changes.
CACHE_VERSION = 1

# -- direct effect classification --------------------------------------------

#: Dotted-name suffixes that read the process environment.
_ENV_READ_SUFFIXES: Tuple[str, ...] = ("os.getenv", "os.environ.get")
#: Names denoting the environ mapping itself (subscripts, ``in`` tests).
_ENVIRON_NAMES: FrozenSet[str] = frozenset(("os.environ", "environ"))
#: Dotted-name suffixes that read a clock.
_CLOCK_SUFFIXES: Tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)
#: Dotted-name suffixes that mutate the global RNG state.
_GLOBAL_RANDOM_SUFFIXES: Tuple[str, ...] = (
    "random.random",
    "random.randint",
    "random.randrange",
    "random.uniform",
    "random.gauss",
    "random.shuffle",
    "random.choice",
    "random.choices",
    "random.sample",
    "random.seed",
    "np.random.seed",
    "numpy.random.seed",
    "np.random.rand",
    "np.random.randn",
    "np.random.randint",
)
#: Dotted-name suffixes that spawn a process.
_SPAWN_SUFFIXES: Tuple[str, ...] = (
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "os.system",
    "os.fork",
    "os.execv",
    "os.execve",
)
#: Call *tails* that are raw write sinks when applied to a path (not an
#: atomic handle): ``Path.write_text``, ``json.dump``, ``np.save``...
_WRITE_TAILS: FrozenSet[str] = frozenset(
    ("write_text", "write_bytes", "savetxt", "save", "savez", "savez_compressed")
)
#: Tails whose *second or first* argument is a file handle.
_HANDLE_SINK_TAILS: FrozenSet[str] = frozenset(("dump", "tofile"))
#: Tails that mutate durable state and must happen under a lock in the
#: guarded (journal / workloads-cache) modules -- the atomic-write
#: primitives included: atomicity makes a write safe against tearing,
#: the lock makes it safe against a concurrent writer.
_GUARDED_TAILS: FrozenSet[str] = frozenset(
    (
        "atomic_write_text",
        "atomic_write_bytes",
        "atomic_writer",
        "quarantine",
        "replace",
        "rename",
        "unlink",
        "save",
    )
)
#: Context-manager / lock names whose ``with`` block counts as locked.
_LOCK_CONTEXT_NAMES: FrozenSet[str] = frozenset(
    ("AdvisoryLock", "SweepJournal", "journaling", "acquire")
)


@dataclass
class CallArg:
    """One pool-relevant argument at a call site (a name or a lambda)."""

    slot: str  # positional index ("0", "1", ...) or keyword name
    kind: str  # "lambda" | "name"
    name: str  # the bare name ("" for a lambda literal)

    def to_dict(self) -> Dict[str, object]:
        return {"slot": self.slot, "kind": self.kind, "name": self.name}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CallArg":
        return cls(
            slot=str(payload["slot"]),
            kind=str(payload["kind"]),
            name=str(payload["name"]),
        )


@dataclass
class CallSite:
    """One call expression inside a function body."""

    raw: str  # the dotted name as written ("TraceStore.save", "open")
    tail: str  # last dotted component ("save", "open")
    resolved: Optional[str]  # module-qualified target, when determinable
    line: int
    locked: bool  # lexically inside an advisory-lock region
    args: List[CallArg] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "raw": self.raw,
            "tail": self.tail,
            "resolved": self.resolved,
            "line": self.line,
            "locked": self.locked,
            "args": [arg.to_dict() for arg in self.args],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CallSite":
        resolved = payload.get("resolved")
        args_raw = payload.get("args")
        return cls(
            raw=str(payload["raw"]),
            tail=str(payload["tail"]),
            resolved=None if resolved is None else str(resolved),
            line=int(str(payload["line"])),
            locked=bool(payload["locked"]),
            args=[
                CallArg.from_dict(item)
                for item in (args_raw if isinstance(args_raw, list) else [])
            ],
        )


@dataclass
class EffectSite:
    """One direct effect inside a function body."""

    kind: str  # "reads-env" | "reads-clock" | "raw-disk-write" |
    #          "spawns-process" | "mutates-global" | "guarded-write"
    line: int
    detail: str  # e.g. 'os.environ.get', 'open(.., "w")'
    locked: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "line": self.line,
            "detail": self.detail,
            "locked": self.locked,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "EffectSite":
        return cls(
            kind=str(payload["kind"]),
            line=int(str(payload["line"])),
            detail=str(payload["detail"]),
            locked=bool(payload["locked"]),
        )


@dataclass
class FunctionInfo:
    """The per-function summary the project analysis runs on."""

    qualname: str  # "f", "Cls.f", "outer.<locals>.inner"
    name: str
    lineno: int
    params: List[str]
    is_nested: bool
    lock_guaranteed: bool  # method of a class that locks in __init__
    class_name: Optional[str]
    mutated_globals: List[str]
    lambda_locals: List[str]  # local names bound to a lambda
    nested_names: List[str]
    effects: List[EffectSite]
    calls: List[CallSite]

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "lineno": self.lineno,
            "params": self.params,
            "is_nested": self.is_nested,
            "lock_guaranteed": self.lock_guaranteed,
            "class_name": self.class_name,
            "mutated_globals": self.mutated_globals,
            "lambda_locals": self.lambda_locals,
            "nested_names": self.nested_names,
            "effects": [site.to_dict() for site in self.effects],
            "calls": [site.to_dict() for site in self.calls],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FunctionInfo":
        class_name = payload.get("class_name")
        return cls(
            qualname=str(payload["qualname"]),
            name=str(payload["name"]),
            lineno=int(str(payload["lineno"])),
            params=[str(p) for p in _as_list(payload["params"])],
            is_nested=bool(payload["is_nested"]),
            lock_guaranteed=bool(payload["lock_guaranteed"]),
            class_name=None if class_name is None else str(class_name),
            mutated_globals=[str(p) for p in _as_list(payload["mutated_globals"])],
            lambda_locals=[str(p) for p in _as_list(payload["lambda_locals"])],
            nested_names=[str(p) for p in _as_list(payload["nested_names"])],
            effects=[
                EffectSite.from_dict(item)
                for item in _as_list(payload["effects"])
            ],
            calls=[
                CallSite.from_dict(item) for item in _as_list(payload["calls"])
            ],
        )


def _as_list(value: object) -> List[object]:
    return value if isinstance(value, list) else []


@dataclass
class ModuleSummary:
    """Everything the project analysis keeps of one parsed module."""

    path: str  # filesystem path as given
    relpath: str  # package-relative ("sim/fast.py"); what scopes match
    module: str  # dotted name ("repro.sim.fast")
    digest: str  # sha256 of the file bytes
    imports: Dict[str, str]  # local name -> fully-qualified target
    functions: List[FunctionInfo]
    noqa: Dict[int, List[str]]  # line -> suppressed ids ([] = blanket)
    findings: List[Dict[str, object]]  # intra findings, post-noqa
    suppressed: int = 0

    def noqa_map(self) -> Dict[int, FrozenSet[str]]:
        return {line: frozenset(ids) for line, ids in self.noqa.items()}

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "relpath": self.relpath,
            "module": self.module,
            "digest": self.digest,
            "imports": self.imports,
            "functions": [info.to_dict() for info in self.functions],
            "noqa": {str(line): ids for line, ids in self.noqa.items()},
            "findings": self.findings,
            "suppressed": self.suppressed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ModuleSummary":
        noqa_raw = payload.get("noqa")
        noqa: Dict[int, List[str]] = {}
        if isinstance(noqa_raw, dict):
            for key, value in noqa_raw.items():
                noqa[int(key)] = [str(item) for item in _as_list(value)]
        imports_raw = payload.get("imports")
        imports: Dict[str, str] = {}
        if isinstance(imports_raw, dict):
            imports = {str(k): str(v) for k, v in imports_raw.items()}
        findings = [
            item
            for item in _as_list(payload.get("findings"))
            if isinstance(item, dict)
        ]
        return cls(
            path=str(payload["path"]),
            relpath=str(payload["relpath"]),
            module=str(payload["module"]),
            digest=str(payload["digest"]),
            imports=imports,
            functions=[
                FunctionInfo.from_dict(item)
                for item in _as_list(payload.get("functions"))
                if isinstance(item, dict)
            ],
            noqa=noqa,
            findings=findings,
            suppressed=int(str(payload.get("suppressed", 0))),
        )


# -- module name / digest helpers --------------------------------------------


def module_dotted_name(path: Path, relpath: str) -> str:
    """``sim/fast.py`` -> ``repro.sim.fast``; ``lint/__init__.py`` ->
    ``repro.lint``.  Every indexed file is addressed as if it lived in
    the ``repro`` package -- fixtures included, which is exactly how the
    scope rules treat them too."""
    parts = relpath[:-3].split("/") if relpath.endswith(".py") else relpath.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro"] + [part for part in parts if part])


def file_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


# -- the per-function extraction walker --------------------------------------


def _walk_local(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs,
    classes, or lambdas (those are summarised separately)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _call_tail(func: ast.expr) -> Optional[str]:
    """The last attribute component of a call target, for calls whose
    full dotted chain cannot be rendered (e.g. ``Cls(cfg).run(...)``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _open_write_mode(node: ast.Call) -> Optional[str]:
    """The mode string when this ``open(...)`` call writes, else None."""
    mode: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return None
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value if any(c in mode.value for c in "wax+") else None
    if isinstance(mode, ast.IfExp):
        # ``"a" if resume else "w"`` -- writes on at least one branch.
        for branch in (mode.body, mode.orelse):
            if (
                isinstance(branch, ast.Constant)
                and isinstance(branch.value, str)
                and any(c in branch.value for c in "wax+")
            ):
                return branch.value
    return None


def _lock_intervals(fn_node: ast.AST) -> List[Tuple[int, int]]:
    """Line ranges of this function that execute under an advisory lock:
    ``with AdvisoryLock(...)`` / ``with lock.acquire()`` / ``with
    journaling(...)`` blocks, plus ``lock.acquire(...)`` ...
    ``lock.release()`` regions (the try/finally idiom)."""
    intervals: List[Tuple[int, int]] = []
    acquires: List[Tuple[int, str]] = []
    releases: List[Tuple[int, str]] = []
    end_line = getattr(fn_node, "end_lineno", None) or 10**9
    for node in _walk_local(fn_node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                hit = False
                for sub in ast.walk(item.context_expr):
                    if isinstance(sub, ast.Call):
                        tail = _call_tail(sub.func)
                        if tail in _LOCK_CONTEXT_NAMES:
                            hit = True
                if hit:
                    intervals.append(
                        (node.lineno, getattr(node, "end_lineno", None) or node.lineno)
                    )
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            if name.endswith(".acquire"):
                acquires.append((node.lineno, name[: -len(".acquire")]))
            elif name.endswith(".release"):
                releases.append((node.lineno, name[: -len(".release")]))
    for acq_line, base in acquires:
        matching = [line for line, rbase in releases if rbase == base and line >= acq_line]
        intervals.append((acq_line, min(matching) if matching else end_line))
    return intervals


def _in_intervals(line: int, intervals: Sequence[Tuple[int, int]]) -> bool:
    return any(lo <= line <= hi for lo, hi in intervals)


class _FunctionSummariser:
    """Extracts one :class:`FunctionInfo` from a function AST node."""

    def __init__(
        self,
        fn_node: ast.AST,
        qualname: str,
        class_name: Optional[str],
        is_nested: bool,
        lock_guaranteed: bool,
        module: str,
        module_names: Set[str],
        imports: Dict[str, str],
    ) -> None:
        self.fn_node = fn_node
        self.qualname = qualname
        self.class_name = class_name
        self.is_nested = is_nested
        self.lock_guaranteed = lock_guaranteed
        self.module = module
        self.module_names = module_names
        self.imports = imports

    def _container_root(
        self, target: ast.AST, local_names: Set[str]
    ) -> Optional[str]:
        """Module-global name mutated by a ``X[k] = v`` / ``X.attr = v``
        store target, or ``None`` when the store is local.  Only
        container stores count: rebinding a bare name inside a function
        creates a local, it does not mutate the module."""
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return None
        node = target
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in local_names or root not in self.module_names:
            return None
        return root

    def summarise(self) -> FunctionInfo:
        fn_node = self.fn_node
        assert isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef))
        params = [arg.arg for arg in fn_node.args.posonlyargs]
        params += [arg.arg for arg in fn_node.args.args]
        params += [arg.arg for arg in fn_node.args.kwonlyargs]
        intervals = _lock_intervals(fn_node)
        atomic_handles, raw_handles, lambda_locals = self._bindings()
        nested_names = [
            child.name
            for child in ast.walk(fn_node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not fn_node
        ]
        effects: List[EffectSite] = []
        calls: List[CallSite] = []
        mutated: List[str] = []
        local_names = set(params)
        for node in _walk_local(fn_node):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                local_names.add(node.id)
        for node in _walk_local(fn_node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    root = self._container_root(target, local_names)
                    if root is None:
                        continue
                    mutated.append(root)
                    effects.append(
                        EffectSite(
                            kind="mutates-global",
                            line=node.lineno,
                            detail=f"{root}[...]",
                            locked=_in_intervals(node.lineno, intervals),
                        )
                    )
            if isinstance(node, ast.Global):
                mutated.extend(node.names)
                effects.append(
                    EffectSite(
                        kind="mutates-global",
                        line=node.lineno,
                        detail=f"global {', '.join(node.names)}",
                        locked=_in_intervals(node.lineno, intervals),
                    )
                )
            elif isinstance(node, ast.Subscript):
                target = dotted_name(node.value)
                if target in _ENVIRON_NAMES:
                    effects.append(
                        EffectSite(
                            kind="reads-env",
                            line=node.lineno,
                            detail=f"{target}[...]",
                        )
                    )
            elif isinstance(node, ast.Compare):
                for comparator in node.comparators:
                    target = dotted_name(comparator)
                    if target in _ENVIRON_NAMES and any(
                        isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
                    ):
                        effects.append(
                            EffectSite(
                                kind="reads-env",
                                line=node.lineno,
                                detail=f"in {target}",
                            )
                        )
            elif isinstance(node, ast.Call):
                self._visit_call(
                    node, intervals, atomic_handles, raw_handles, effects, calls
                )
        return FunctionInfo(
            qualname=self.qualname,
            name=self.qualname.rsplit(".", 1)[-1],
            lineno=getattr(fn_node, "lineno", 1),
            params=params,
            is_nested=self.is_nested,
            lock_guaranteed=self.lock_guaranteed,
            class_name=self.class_name,
            mutated_globals=sorted(set(mutated)),
            lambda_locals=sorted(lambda_locals),
            nested_names=sorted(set(nested_names)),
            effects=effects,
            calls=calls,
        )

    def _bindings(self) -> Tuple[Set[str], Set[str], Set[str]]:
        """Names bound to atomic-writer handles, raw open handles, and
        lambdas inside this function."""
        atomic: Set[str] = set()
        raw: Set[str] = set()
        lambdas: Set[str] = set()
        for node in _walk_local(self.fn_node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if not isinstance(item.optional_vars, ast.Name):
                        continue
                    expr = item.context_expr
                    if not isinstance(expr, ast.Call):
                        continue
                    tail = _call_tail(expr.func)
                    if tail == "atomic_writer":
                        atomic.add(item.optional_vars.id)
                    elif tail == "open":
                        raw.add(item.optional_vars.id)
            elif isinstance(node, ast.Assign):
                if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                    name = node.targets[0].id
                    if isinstance(node.value, ast.Lambda):
                        lambdas.add(name)
                    elif (
                        isinstance(node.value, ast.Call)
                        and _call_tail(node.value.func) == "open"
                    ):
                        raw.add(name)
        return atomic, raw, lambdas

    def _resolve(self, raw: str) -> Optional[str]:
        """Module-local resolution of a dotted call target."""
        parts = raw.split(".")
        head = parts[0]
        if head == "self" and self.class_name and len(parts) == 2:
            return f"{self.module}.{self.class_name}.{parts[1]}"
        if head in self.module_names:
            return f"{self.module}.{raw}"
        if head in self.imports:
            rest = parts[1:]
            target = self.imports[head]
            return ".".join([target] + rest) if rest else target
        return None

    def _handle_arg(self, node: ast.Call, tail: str) -> Optional[ast.expr]:
        """The file-handle argument of a handle sink (``json.dump(obj,
        h)``, ``arr.tofile(h)``, ``np.save(h, arr)``)."""
        if tail == "dump" and len(node.args) >= 2:
            return node.args[1]
        if tail == "tofile" and node.args:
            return node.args[0]
        if tail in ("save", "savetxt", "savez", "savez_compressed") and node.args:
            return node.args[0]
        return None

    def _visit_call(
        self,
        node: ast.Call,
        intervals: Sequence[Tuple[int, int]],
        atomic_handles: Set[str],
        raw_handles: Set[str],
        effects: List[EffectSite],
        calls: List[CallSite],
    ) -> None:
        raw = dotted_name(node.func)
        tail = _call_tail(node.func)
        if tail is None:
            return
        name = raw if raw is not None else tail
        locked = self.lock_guaranteed or _in_intervals(node.lineno, intervals)

        def add(kind: str, detail: str) -> None:
            effects.append(
                EffectSite(kind=kind, line=node.lineno, detail=detail, locked=locked)
            )

        if any(name == s or name.endswith("." + s) for s in _ENV_READ_SUFFIXES):
            add("reads-env", name)
        elif name.endswith("environ.get"):
            add("reads-env", name)
        elif any(name == s or name.endswith("." + s) for s in _CLOCK_SUFFIXES):
            add("reads-clock", name)
        elif any(name == s or name.endswith("." + s) for s in _GLOBAL_RANDOM_SUFFIXES):
            add("mutates-global", f"{name} (global RNG)")
        elif any(name == s or name.endswith("." + s) for s in _SPAWN_SUFFIXES):
            add("spawns-process", name)

        # Raw disk-write sinks, with the atomic-handle exemption.
        if name in ("open", "io.open"):
            mode = _open_write_mode(node)
            if mode is not None:
                add("raw-disk-write", f'open(.., "{mode}")')
        elif tail in _HANDLE_SINK_TAILS or (
            tail in _WRITE_TAILS and tail not in ("write_text", "write_bytes")
        ):
            handle = self._handle_arg(node, tail)
            handle_name = handle.id if isinstance(handle, ast.Name) else None
            if handle_name in atomic_handles or handle_name in raw_handles:
                pass  # atomic (safe) or already flagged at its open()
            elif tail == "dump" and name.split(".")[0] in ("json", "pickle", "yaml"):
                add("raw-disk-write", name)
            elif tail != "dump" and name.split(".")[0] in ("np", "numpy"):
                add("raw-disk-write", name)
            elif tail == "tofile":
                add("raw-disk-write", name)
        elif tail in ("write_text", "write_bytes"):
            add("raw-disk-write", name)

        if tail in _GUARDED_TAILS:
            add("guarded-write", name)

        args: List[CallArg] = []
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Lambda):
                args.append(CallArg(slot=str(index), kind="lambda", name=""))
            elif isinstance(arg, ast.Name):
                args.append(CallArg(slot=str(index), kind="name", name=arg.id))
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            if isinstance(keyword.value, ast.Lambda):
                args.append(CallArg(slot=keyword.arg, kind="lambda", name=""))
            elif isinstance(keyword.value, ast.Name):
                args.append(
                    CallArg(slot=keyword.arg, kind="name", name=keyword.value.id)
                )
        calls.append(
            CallSite(
                raw=name,
                tail=tail,
                resolved=self._resolve(name) if raw is not None else None,
                line=node.lineno,
                locked=locked,
                args=args,
            )
        )


# -- module summarisation ----------------------------------------------------


def _module_imports(tree: ast.Module, module: str, is_package: bool) -> Dict[str, str]:
    """Local name -> fully-qualified target, module- and function-level."""
    package_parts = module.split(".") if is_package else module.split(".")[:-1]
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(base_parts)
            else:
                base = ""
            source = ".".join(part for part in (base, node.module or "") if part)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{source}.{alias.name}" if source else alias.name
    return imports


def _class_locks_in_init(class_node: ast.ClassDef) -> bool:
    """True when ``__init__`` binds ``self.X = AdvisoryLock(...)`` and
    calls ``self.X.acquire`` -- every method then runs lock-held (the
    :class:`SweepJournal` construction pattern)."""
    init = next(
        (
            child
            for child in class_node.body
            if isinstance(child, ast.FunctionDef) and child.name == "__init__"
        ),
        None,
    )
    if init is None:
        return False
    lock_attrs: Set[str] = set()
    for node in ast.walk(init):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _call_tail(node.value.func) == "AdvisoryLock":
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        lock_attrs.add(target.attr)
    if not lock_attrs:
        return False
    for node in ast.walk(init):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name and name.endswith(".acquire"):
                base = name[: -len(".acquire")]
                if base.startswith("self.") and base[5:] in lock_attrs:
                    return True
    return False


def _iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, str, Optional[str], bool, bool]]:
    """Yield ``(node, qualname, class_name, is_nested, lock_guaranteed)``
    for every function in the module, nested defs included."""

    def walk_nested(
        parent: ast.AST, prefix: str, class_name: Optional[str], guaranteed: bool
    ) -> Iterator[Tuple[ast.AST, str, Optional[str], bool, bool]]:
        for child in ast.iter_child_nodes(parent):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.<locals>.{child.name}"
                yield child, qualname, class_name, True, guaranteed
                yield from walk_nested(child, qualname, class_name, guaranteed)
            elif not isinstance(child, (ast.ClassDef, ast.Lambda)):
                yield from walk_nested(child, prefix, class_name, guaranteed)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.name, None, False, False
            yield from walk_nested(node, node.name, None, False)
        elif isinstance(node, ast.ClassDef):
            guaranteed = _class_locks_in_init(node)
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{node.name}.{child.name}"
                    yield child, qualname, node.name, False, guaranteed
                    yield from walk_nested(child, qualname, node.name, guaranteed)


def summarise_module(context: ModuleContext, digest: str) -> ModuleSummary:
    """Reduce one parsed module to its project summary (including the
    intraprocedural findings, so cached files skip rule re-runs too)."""
    module = module_dotted_name(context.path, context.relpath)
    is_package = context.path.name == "__init__.py"
    imports = _module_imports(context.tree, module, is_package)
    module_names: Set[str] = {
        node.name
        for node in context.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    }
    for node in context.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    module_names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            module_names.add(node.target.id)
    functions: List[FunctionInfo] = []
    for fn_node, qualname, class_name, is_nested, guaranteed in _iter_functions(
        context.tree
    ):
        functions.append(
            _FunctionSummariser(
                fn_node=fn_node,
                qualname=qualname,
                class_name=class_name,
                is_nested=is_nested,
                lock_guaranteed=guaranteed,
                module=module,
                module_names=module_names,
                imports=imports,
            ).summarise()
        )
    noqa_map = noqa_line_map(context.tree, context.lines)
    intra_rules = [rule for rule in get_rules() if not rule.requires_project]
    findings, suppressed = apply_noqa_map(
        check_module(context, intra_rules), noqa_map
    )
    return ModuleSummary(
        path=str(context.path),
        relpath=context.relpath,
        module=module,
        digest=digest,
        imports=imports,
        functions=functions,
        noqa={line: sorted(ids) for line, ids in noqa_map.items()},
        findings=[item.as_dict() for item in findings],
        suppressed=suppressed,
    )


# -- the index and its disk cache --------------------------------------------


def _engine_salt() -> str:
    """Digest of everything that can change a summary besides the file
    itself: the lint package's own source and the env-var registry."""
    hasher = hashlib.sha256()
    hasher.update(str(CACHE_VERSION).encode())
    package_dir = Path(__file__).resolve().parent.parent
    for source in sorted(package_dir.rglob("*.py")):
        hasher.update(source.name.encode())
        try:
            hasher.update(source.read_bytes())
        except OSError:  # pragma: no cover - unreadable engine file
            pass
    try:
        from repro.core import envcfg

        hasher.update(",".join(sorted(envcfg.registered_names())).encode())
    except Exception:  # pragma: no cover - registry import trouble
        pass
    return hasher.hexdigest()


@dataclass
class ProjectIndex:
    """All module summaries for one run, plus cache bookkeeping."""

    summaries: List[ModuleSummary]
    parsed_count: int = 0

    def by_module(self) -> Dict[str, ModuleSummary]:
        return {summary.module: summary for summary in self.summaries}

    @classmethod
    def from_contexts(cls, contexts: Sequence[ModuleContext]) -> "ProjectIndex":
        summaries = [
            summarise_module(context, digest=file_digest(context.source.encode()))
            for context in contexts
        ]
        return cls(summaries=summaries, parsed_count=len(summaries))

    @classmethod
    def build(
        cls,
        files: Sequence[Path],
        cache_path: Optional[Path] = None,
        parse_hook: Optional[Callable[[Path], None]] = None,
    ) -> "ProjectIndex":
        """Summarise ``files``, re-parsing only digest-changed ones.

        The cache is advisory: unreadable or version/salt-mismatched
        caches are ignored wholesale, and any entry whose stored digest
        differs from the current file bytes is rebuilt, so a stale
        summary can never be served.
        """
        salt = _engine_salt()
        cached: Dict[str, Dict[str, object]] = {}
        if cache_path is not None and cache_path.exists():
            try:
                payload = json.loads(cache_path.read_text())
                files_obj = (
                    payload.get("files") if isinstance(payload, dict) else None
                )
                if (
                    isinstance(payload, dict)
                    and payload.get("version") == CACHE_VERSION
                    and payload.get("salt") == salt
                    and isinstance(files_obj, dict)
                ):
                    cached = {
                        str(key): value
                        for key, value in files_obj.items()
                        if isinstance(value, dict)
                    }
            except (OSError, ValueError):
                cached = {}
        summaries: List[ModuleSummary] = []
        parsed = 0
        fresh: Dict[str, Dict[str, object]] = {}
        for path in files:
            key = str(path.resolve())
            try:
                data = path.read_bytes()
            except OSError as error:
                raise ValueError(f"{path}: unreadable: {error}") from error
            digest = file_digest(data)
            entry = cached.get(key)
            restored: Optional[ModuleSummary] = None
            if entry is not None and entry.get("digest") == digest:
                summary_payload = entry.get("summary")
                if isinstance(summary_payload, dict):
                    try:
                        restored = ModuleSummary.from_dict(summary_payload)
                    except (KeyError, ValueError):
                        restored = None
            if restored is not None and entry is not None:
                summaries.append(restored)
                fresh[key] = entry
                continue
            parsed += 1
            if parse_hook is not None:
                parse_hook(path)
            try:
                context = ModuleContext.parse(path, source=data.decode("utf-8"))
            except SyntaxError as exc:
                summary = ModuleSummary(
                    path=str(path),
                    relpath=package_relpath(path),
                    module=module_dotted_name(path, package_relpath(path)),
                    digest=digest,
                    imports={},
                    functions=[],
                    noqa={},
                    findings=[syntax_error_finding(path, exc).as_dict()],
                )
            else:
                summary = summarise_module(context, digest)
            summaries.append(summary)
            fresh[key] = {"digest": digest, "summary": summary.to_dict()}
        index = cls(summaries=summaries, parsed_count=parsed)
        if cache_path is not None:
            payload_out = {
                "version": CACHE_VERSION,
                "salt": salt,
                "files": fresh,
            }
            try:
                from repro.resilience.integrity import atomic_write_text

                atomic_write_text(
                    cache_path, json.dumps(payload_out, indent=1) + "\n"
                )
            except OSError:  # pragma: no cover - cache is best-effort
                pass
        return index
