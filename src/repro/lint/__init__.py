"""Domain-aware static analysis for the repro tree.

Five rules encode the repository's reproducibility contracts as
review-time checks (see ``docs/static-analysis.md``):

========  ==============  ====================================================
RPR001    determinism     no ambient clocks / unseeded randomness in sim code
RPR002    unit-safety     no ``+``/``-``/compare across ``_ns``/``_cycles``/...
RPR003    env-registry    every ``REPRO_*`` read goes through ``envcfg``
RPR004    fork-safety     worker-pool callables are picklable and global-free
RPR005    memo-purity     memo-path functions read only their arguments
========  ==============  ====================================================

Run it as ``mlcache lint`` or ``python -m repro.lint``; use
:func:`check_source` for in-memory checks (fixture tests) and
:func:`lint_paths` for trees.
"""

from repro.lint.engine import (
    Baseline,
    Finding,
    LintResult,
    ModuleContext,
    Rule,
    all_rules,
    check_source,
    get_rules,
    lint_paths,
    noqa_rules,
    package_relpath,
    register,
)

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "ModuleContext",
    "Rule",
    "all_rules",
    "check_source",
    "get_rules",
    "lint_paths",
    "noqa_rules",
    "package_relpath",
    "register",
]
