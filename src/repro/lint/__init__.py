"""Domain-aware static analysis for the repro tree.

Nine rules encode the repository's reproducibility contracts as
review-time checks (see ``docs/static-analysis.md``).  RPR001-RPR005
are per-file AST walks; RPR006-RPR009 are *interprocedural*, running
on the project call graph and effect propagation under ``--project``:

========  ======================  ============================================
RPR001    determinism             no ambient clocks / unseeded RNG in sim code
RPR002    unit-safety             no ``+``/``-``/compare across unit suffixes
RPR003    env-registry            every ``REPRO_*`` read goes through envcfg
RPR004    fork-safety             pool callables are picklable and global-free
RPR005    memo-purity             memo-path functions read only their args
RPR006    artifact-write-safety   raw disk writes only inside integrity.py
RPR007    lock-discipline         journal/cache mutations hold the lock
RPR008    transitive-memo-purity  RPR005 closed over the call graph
RPR009    transitive-fork-safety  RPR004 through wrappers and locals
========  ======================  ============================================

Run it as ``mlcache lint`` or ``python -m repro.lint``; use
:func:`check_source` for in-memory checks (fixture tests) and
:func:`lint_paths` for trees.
"""

from repro.lint.engine import (
    Baseline,
    Finding,
    LintResult,
    ModuleContext,
    Rule,
    all_rules,
    check_source,
    get_rules,
    lint_paths,
    noqa_rules,
    package_relpath,
    register,
)

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "ModuleContext",
    "Rule",
    "all_rules",
    "check_source",
    "get_rules",
    "lint_paths",
    "noqa_rules",
    "package_relpath",
    "register",
]
