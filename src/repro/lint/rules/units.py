"""RPR002: no additive arithmetic across different unit suffixes.

The repository encodes units in identifier suffixes -- ``_ns`` for
nanoseconds, ``_cycles`` for CPU cycles, ``_bytes``/``_words`` for
sizes, ``_s`` for seconds.  Adding or comparing values with different
suffixes is the classic cache-simulator bug (the paper's whole Figure 4
analysis hinges on the ns/cycles distinction), and it type-checks fine
in Python.  This rule flags ``+``/``-``/comparison expressions whose two
operands carry *different* known unit suffixes.  Multiplication and
division are conversions and stay legal (``cycles * cycle_ns``), as does
anything routed through the :mod:`repro.units` converters -- a function
call has no suffix, so converted values never trip the rule.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Finding, ModuleContext, Rule, register

#: Identifier suffix -> canonical unit.  Seconds flavours collapse so
#: ``deadline_s + grace_seconds`` is consistent, not a violation.
_SUFFIX_UNITS = {
    "ns": "ns",
    "us": "us",
    "ms": "ms",
    "s": "s",
    "secs": "s",
    "seconds": "s",
    "cycles": "cycles",
    "bytes": "bytes",
    "words": "words",
    "kb": "kb",
    "mb": "mb",
}

_ADDITIVE = (ast.Add, ast.Sub)
_COMPARES = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _identifier_tail(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def unit_of_name(identifier: str) -> Optional[str]:
    """The unit an identifier's ``_suffix`` declares, if any."""
    if "_" not in identifier:
        return None
    suffix = identifier.rsplit("_", 1)[1].lower()
    return _SUFFIX_UNITS.get(suffix)


@register
class UnitSafetyRule(Rule):
    rule_id = "RPR002"
    name = "unit-safety"
    severity = "error"
    scope = ()  # everywhere: unit suffixes are a repo-wide convention
    rationale = (
        "Nanoseconds, cycles, bytes and words are all plain numbers at "
        "runtime; suffix-aware linting is the only thing standing "
        "between a refactor and a silently wrong Figure 4.  Convert via "
        "repro.units (or an explicit * cycle_ns style product) before "
        "adding or comparing."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        reported: Set[Tuple[int, int]] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, _ADDITIVE):
                yield from self._check_pair(
                    module, node, node.left, node.right,
                    "+" if isinstance(node.op, ast.Add) else "-", reported,
                )
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, _ADDITIVE):
                yield from self._check_pair(
                    module, node, node.target, node.value,
                    "+=" if isinstance(node.op, ast.Add) else "-=", reported,
                )
            elif isinstance(node, ast.Compare):
                operands: List[ast.expr] = [node.left] + list(node.comparators)
                for op, left, right in zip(node.ops, operands, operands[1:]):
                    if isinstance(op, _COMPARES):
                        yield from self._check_pair(
                            module, node, left, right, "comparison", reported
                        )

    def _check_pair(
        self,
        module: ModuleContext,
        node: ast.AST,
        left: ast.expr,
        right: ast.expr,
        op_text: str,
        reported: Set[Tuple[int, int]],
    ) -> Iterator[Finding]:
        left_unit = self._unit(left)
        right_unit = self._unit(right)
        if left_unit is None or right_unit is None or left_unit == right_unit:
            return
        key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
        if key in reported:
            return
        reported.add(key)
        left_text = _identifier_tail(left) or "expression"
        right_text = _identifier_tail(right) or "expression"
        yield self.finding(
            module,
            node,
            f"arithmetic mixes units: {left_text} ({left_unit}) {op_text} "
            f"{right_text} ({right_unit}); convert via repro.units first",
        )

    def _unit(self, node: ast.expr) -> Optional[str]:
        """The unit an expression provably carries, or ``None``.

        Unknown units never flag: calls, literals and unsuffixed names
        are treated as dimensionless glue.  Additive sub-expressions of
        one consistent unit propagate it upward.
        """
        identifier = _identifier_tail(node)
        if identifier is not None:
            return unit_of_name(identifier)
        if isinstance(node, ast.BinOp) and isinstance(node.op, _ADDITIVE):
            left = self._unit(node.left)
            right = self._unit(node.right)
            if left is not None and left == right:
                return left
        return None
