"""RPR004: callables shipped to the worker pool must be fork-safe.

The sweep executor forks dedicated worker processes and ships them a
compute callable (``run_pooled(kind, compute, ...)``,
``Process(target=...)``).  Three classes of callable break that
contract in ways that only surface as hangs, pickling errors or -- the
worst case -- silent cross-process state divergence:

* **lambdas and locally-defined closures** -- unpicklable on spawn-start
  platforms and prone to capturing loop variables or open resources;
* **functions that mutate module-level globals** (a ``global``
  statement with assignment) -- each worker mutates its *own copy* after
  fork, so the parent's view silently diverges (our multiprocess race
  detector);
* **mutable default arguments holding locks or file handles** -- a
  ``threading.Lock`` or ``open()`` handle baked into a default crosses
  the fork in an undefined state.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.engine import Finding, ModuleContext, Rule, dotted_name, register

#: Call names that submit work to a worker process.  Maps the dotted
#: suffix to the index of the positional argument holding the callable
#: (``None`` means keyword-only, via ``target=``).
_POOL_ENTRY_POINTS: Dict[str, Optional[int]] = {
    "run_pooled": 1,
    "_pool_map": 1,
    "Process": None,  # multiprocessing.Process(target=...)
}

#: Default-argument constructors that must never cross a fork boundary.
_UNSAFE_DEFAULT_CALLS = frozenset(
    (
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "open",
    )
)


def _module_functions(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    functions: Dict[str, ast.FunctionDef] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = node
    return functions


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside another function (closures)."""
    nested: Set[str] = set()

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.depth = 0

        def _visit_function(self, node: ast.AST) -> None:
            if self.depth > 0:
                nested.add(getattr(node, "name", ""))
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            self._visit_function(node)

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            self._visit_function(node)

    Visitor().visit(tree)
    return nested


def _mutated_globals(function: ast.AST) -> List[str]:
    names: List[str] = []
    for node in ast.walk(function):
        if isinstance(node, ast.Global):
            names.extend(node.names)
    return names


@register
class ForkSafetyRule(Rule):
    rule_id = "RPR004"
    name = "fork-safety"
    severity = "error"
    scope = ()
    rationale = (
        "Worker processes receive their compute callable at fork time; "
        "lambdas, closures, global mutation and captured locks/handles "
        "turn per-cell fault isolation into per-sweep heisenbugs."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        functions = _module_functions(module.tree)
        nested = _nested_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            tail = dotted.split(".")[-1]
            if tail not in _POOL_ENTRY_POINTS:
                continue
            candidate = self._submitted_callable(node, _POOL_ENTRY_POINTS[tail])
            if candidate is None:
                continue
            yield from self._check_callable(
                module, node, tail, candidate, functions, nested
            )

    @staticmethod
    def _submitted_callable(
        node: ast.Call, position: Optional[int]
    ) -> Optional[ast.expr]:
        if position is None:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    return keyword.value
            return None
        if len(node.args) > position:
            return node.args[position]
        return None

    def _check_callable(
        self,
        module: ModuleContext,
        call: ast.Call,
        entry: str,
        candidate: ast.expr,
        functions: Dict[str, ast.FunctionDef],
        nested: Set[str],
    ) -> Iterator[Finding]:
        if isinstance(candidate, ast.Lambda):
            yield self.finding(
                module,
                call,
                f"lambda submitted to {entry}(); worker callables must be "
                f"module-level functions (picklable, closure-free)",
            )
            return
        name = candidate.id if isinstance(candidate, ast.Name) else None
        if name is None:
            return
        if name in nested and name not in functions:
            yield self.finding(
                module,
                call,
                f"locally-defined closure {name!r} submitted to {entry}(); "
                f"hoist it to module level so it ships cleanly to workers",
            )
            return
        target = functions.get(name)
        if target is None:
            return
        mutated = _mutated_globals(target)
        if mutated:
            globals_text = ", ".join(sorted(set(mutated)))
            yield self.finding(
                module,
                call,
                f"worker callable {name!r} mutates module globals "
                f"({globals_text}); each forked worker mutates its own "
                f"copy and the parent's view silently diverges",
            )
        for default in list(target.args.defaults) + [
            d for d in target.args.kw_defaults if d is not None
        ]:
            for inner in ast.walk(default):
                if isinstance(inner, ast.Call):
                    inner_name = dotted_name(inner.func)
                    if inner_name in _UNSAFE_DEFAULT_CALLS:
                        yield self.finding(
                            module,
                            call,
                            f"worker callable {name!r} bakes {inner_name}() "
                            f"into a default argument; locks and file "
                            f"handles must not cross the fork boundary",
                        )
