"""RPR005: functions feeding the memo cache must be argument-pure.

``sim/memo.py`` keys cached functional results on ``(trace fingerprint,
functional projection of the config)``.  That contract only holds if
every function on the memoised path computes from its *arguments* --
the moment one of them reads ambient state (an environment variable, a
file, a clock, the global random state), two processes with the same
key can disagree, and the memo cache launders the disagreement into
"reproducible" results.

The rule therefore audits **every function** in the memo-adjacent sim
modules (``memo.py``, ``fast.py``, ``functional.py``, ``hierarchy.py``)
and, elsewhere under ``sim/``, any function whose name marks it as part
of the memo path (``memo_key``, ``timing_key``, ``trace_fingerprint``,
``*_projection``, ``run_functional*``, ``*memo*``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import Finding, ModuleContext, Rule, dotted_name, register

#: Modules where *every* function is on (or one call away from) the
#: memoised path.
_STRICT_MODULES = frozenset(
    (
        "sim/memo.py",
        "sim/fast.py",
        "sim/functional.py",
        "sim/hierarchy.py",
        "sim/stackdist.py",
    )
)

#: Ambient-state reads that poison a memo key.  Dotted-name suffixes.
_AMBIENT_CALLS = frozenset(
    (
        "os.getenv",
        "os.environ.get",
        "environ.get",
        "os.urandom",
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "input",
    )
)

_AMBIENT_SUFFIXES = (
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

_ENVIRON_NAMES = frozenset(("os.environ", "environ"))


def _memo_pattern_name(name: str) -> bool:
    if name in ("memo_key", "timing_key", "trace_fingerprint"):
        return True
    if name.endswith("_projection"):
        return True
    if name.startswith("run_functional"):
        return True
    return "memo" in name or "stackdist" in name


@register
class MemoPurityRule(Rule):
    rule_id = "RPR005"
    name = "memo-purity"
    severity = "error"
    scope = ("sim/",)
    rationale = (
        "The memo cache assumes result == f(trace, config); a function "
        "on the memo path that reads env vars, files, clocks or global "
        "randomness makes two processes disagree under the same key and "
        "the cache then replays the wrong answer as if it were "
        "reproducible."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        strict = module.relpath in _STRICT_MODULES
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not strict and not _memo_pattern_name(node.name):
                continue
            yield from self._check_function(module, node)

    def _check_function(
        self, module: ModuleContext, function: ast.AST
    ) -> Iterator[Finding]:
        name = getattr(function, "name", "<anonymous>")
        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                message = self._call_violation(node)
                if message is not None:
                    yield self.finding(
                        module,
                        node,
                        f"memo-path function {name!r} {message}; "
                        f"memoised results must depend only on the "
                        f"function's arguments",
                    )
            elif isinstance(node, ast.Subscript):
                dotted = dotted_name(node.value)
                if dotted in _ENVIRON_NAMES:
                    yield self.finding(
                        module,
                        node,
                        f"memo-path function {name!r} reads "
                        f"{dotted}[...]; memoised results must depend only "
                        f"on the function's arguments",
                    )

    @staticmethod
    def _call_violation(node: ast.Call) -> Optional[str]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        if dotted in _AMBIENT_CALLS:
            return f"calls {dotted}()"
        for suffix in _AMBIENT_SUFFIXES:
            if dotted == suffix or dotted.endswith("." + suffix):
                return f"reads the wall clock via {dotted}()"
        if dotted == "open":
            return "opens a file"
        parts = dotted.split(".")
        if len(parts) == 2 and parts[0] == "random":
            return f"uses the global random state via {dotted}()"
        if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            if parts[2] != "default_rng":
                return f"uses numpy's global random state via {dotted}()"
        return None
