"""Built-in lint rules.

Importing this package registers every rule with the engine's registry
(each module applies the :func:`repro.lint.engine.register` decorator at
import time).  ``engine.get_rules`` imports this package lazily, so rule
modules may import the engine without a cycle.
"""

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    determinism,
    envreads,
    forksafety,
    memopurity,
    units,
)

__all__ = ["determinism", "envreads", "forksafety", "memopurity", "units"]
