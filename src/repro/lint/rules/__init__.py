"""Built-in lint rules.

Importing this package registers every rule with the engine's registry
(each module applies the :func:`repro.lint.engine.register` decorator at
import time).  ``engine.get_rules`` imports this package lazily, so rule
modules may import the engine without a cycle.

The intraprocedural rules (RPR001-RPR005) live here; the interprocedural
rules (RPR006-RPR009) live in :mod:`repro.lint.project.rules` and are
imported here for registration too.
"""

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    determinism,
    envreads,
    forksafety,
    memopurity,
    units,
)
from repro.lint.project import rules as project_rules  # noqa: F401

__all__ = [
    "determinism",
    "envreads",
    "forksafety",
    "memopurity",
    "units",
    "project_rules",
]
