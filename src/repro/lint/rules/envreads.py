"""RPR003: every ``REPRO_*`` environment read goes through the registry.

:mod:`repro.core.envcfg` is the single source of truth for the
repository's environment knobs -- name, type, default and the generated
docs table all come from its registrations.  Two things defeat that:

* a **direct read** (``os.environ.get("REPRO_X")``, ``os.getenv``,
  ``os.environ[...]``) anywhere outside ``core/envcfg.py`` -- the knob
  regrows private parsing rules and falls out of the docs;
* an **unregistered read** -- ``envcfg.get("REPRO_X")`` for a name with
  no ``register()`` entry.  This arm is what makes deleting a
  registration a lint failure at every surviving use site (instead of a
  runtime ``ValueError`` in whatever code path reads the knob first).

Both arms resolve one level of module-level constant indirection, so the
``WORKERS_ENV = "REPRO_SWEEP_WORKERS"`` idiom is seen through.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import (
    Finding,
    ModuleContext,
    Rule,
    dotted_name,
    module_string_constants,
    resolve_string,
)
from repro.lint.engine import register as register_rule

#: Dotted call names that read the process environment directly.
_DIRECT_READ_CALLS = frozenset(
    ("os.environ.get", "os.getenv", "environ.get", "os.environ.setdefault")
)

#: Dotted names that *are* the environment mapping (subscript reads).
_ENVIRON_NAMES = frozenset(("os.environ", "environ"))

#: envcfg accessors whose first argument names a variable.
_ENVCFG_ACCESSORS = frozenset(("get", "raw", "var"))


def _registered_names() -> frozenset:
    """The live registry (imported lazily so the linter can run even if
    the target tree's envcfg fails to import -- that surfaces as a
    different failure, not a lint crash)."""
    try:
        from repro.core.envcfg import registered_names
    except Exception:  # pragma: no cover - broken target tree
        return frozenset()
    return registered_names()


@register_rule
class EnvRegistryRule(Rule):
    rule_id = "RPR003"
    name = "env-registry"
    severity = "error"
    scope = ()
    exclude = ("core/envcfg.py",)
    rationale = (
        "Scattered os.environ reads gave every knob private parsing "
        "rules and no documentation; the envcfg registry gives each "
        "REPRO_* variable one typed definition that also generates the "
        "docs reference tables."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        constants = module_string_constants(module.tree)
        registered = _registered_names()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, constants, registered)
            elif isinstance(node, ast.Subscript):
                yield from self._check_subscript(module, node, constants)

    def _check_call(
        self,
        module: ModuleContext,
        node: ast.Call,
        constants: dict,
        registered: frozenset,
    ) -> Iterator[Finding]:
        dotted = dotted_name(node.func)
        if dotted is None or not node.args:
            return
        name = resolve_string(node.args[0], constants)
        if name is None or not name.startswith("REPRO_"):
            return
        if dotted in _DIRECT_READ_CALLS:
            yield self.finding(
                module,
                node,
                f"direct {dotted}({name!r}) read; route it through "
                f"repro.core.envcfg (envcfg.get/envcfg.raw)",
            )
            return
        accessor = self._envcfg_accessor(dotted)
        if accessor is not None and name not in registered:
            yield self.finding(
                module,
                node,
                f"envcfg.{accessor}({name!r}) reads a variable with no "
                f"registration in repro/core/envcfg.py; add a register() "
                f"entry (name, type, default, doc)",
            )

    def _check_subscript(
        self, module: ModuleContext, node: ast.Subscript, constants: dict
    ) -> Iterator[Finding]:
        dotted = dotted_name(node.value)
        if dotted not in _ENVIRON_NAMES:
            return
        index: Optional[ast.expr] = node.slice
        if isinstance(index, ast.Index):  # pragma: no cover - py38 AST
            index = index.value
        name = resolve_string(index, constants) if index is not None else None
        if name is not None and name.startswith("REPRO_"):
            yield self.finding(
                module,
                node,
                f"direct {dotted}[{name!r}] access; route it through "
                f"repro.core.envcfg (envcfg.get/envcfg.raw)",
            )

    @staticmethod
    def _envcfg_accessor(dotted: str) -> Optional[str]:
        parts = dotted.split(".")
        if len(parts) >= 2 and parts[-2] == "envcfg":
            if parts[-1] in _ENVCFG_ACCESSORS:
                return parts[-1]
        return None
