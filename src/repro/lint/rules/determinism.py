"""RPR001: no ambient clocks or unseeded randomness in simulation code.

Byte-identical resume (the chaos drill) and memo-cache reuse both assume
that a simulated result is a pure function of the trace and the
configuration.  A single ``time.time()`` or module-level ``random.*``
call anywhere in ``sim/``, ``cache/`` or ``trace/`` breaks that
silently: the memo cache and checkpoint journal would replay a value the
simulator no longer reproduces.  Seeded generator *instances*
(``random.Random(seed)``, ``np.random.default_rng(seed)``) threaded
through arguments are the sanctioned pattern and are not flagged.

Timing is not banned -- *ambient* timing is.  The one sanctioned clock
is :mod:`repro.core.clock` (``clock.monotonic_ns()``), whose readings
feed telemetry spans and manifests but never simulation results; the
interprocedural analysis treats it and the telemetry layer as effect
barriers (``SANCTIONED_RELPATHS`` in ``repro.lint.project.analysis``),
so ``telemetry.span(...)`` in kernel code needs no ``noqa``.  Direct
``time.*`` reads in simulation code remain violations: route them
through ``repro.core.clock`` / ``repro.telemetry`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, ModuleContext, Rule, dotted_name, register

#: Wall-clock and platform-entropy calls that are never deterministic.
_BANNED_CALLS = frozenset(
    (
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
        "secrets.choice",
    )
)

#: ``datetime``-flavoured clock reads, matched by dotted-name suffix so
#: ``datetime.now``, ``datetime.datetime.now`` and ``dt.datetime.now``
#: are all caught.
_BANNED_SUFFIXES = (
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: Module-level functions of the stdlib ``random`` module (global,
#: implicitly-seeded state).  ``random.Random`` is handled separately.
_RANDOM_MODULE_FUNCS = frozenset(
    (
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "normalvariate",
        "gauss",
        "expovariate",
        "betavariate",
        "seed",
    )
)

#: NumPy legacy global-state RNG functions (``np.random.<func>``).
_NUMPY_GLOBAL_FUNCS = frozenset(
    (
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "exponential",
        "poisson",
    )
)


@register
class DeterminismRule(Rule):
    rule_id = "RPR001"
    name = "determinism"
    severity = "error"
    scope = ("sim/", "cache/", "trace/")
    rationale = (
        "Simulation results are memoised and journaled keyed only by "
        "(trace, config); ambient clocks and unseeded randomness make "
        "cached results unreproducible and break nanosecond-identical "
        "resume."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            message = self._violation(dotted, node)
            if message is not None:
                yield self.finding(module, node, message)

    def _violation(self, dotted: str, node: ast.Call) -> "str | None":
        if dotted in _BANNED_CALLS:
            return (
                f"non-deterministic call {dotted}() in simulation code; "
                f"results must be a pure function of (trace, config) -- "
                f"time only the sanctioned way, via repro.core.clock / "
                f"repro.telemetry spans"
            )
        for suffix in _BANNED_SUFFIXES:
            if dotted == suffix or dotted.endswith("." + suffix):
                return (
                    f"wall-clock read {dotted}() in simulation code; "
                    f"results must be a pure function of (trace, config) -- "
                    f"time only the sanctioned way, via repro.core.clock / "
                    f"repro.telemetry spans"
                )
        parts = dotted.split(".")
        if len(parts) == 2 and parts[0] == "random":
            if parts[1] in _RANDOM_MODULE_FUNCS:
                return (
                    f"module-level {dotted}() uses the global random state; "
                    f"thread a seeded random.Random(seed) through arguments"
                )
            if parts[1] == "Random" and not node.args and not node.keywords:
                return (
                    "random.Random() without a seed is non-deterministic; "
                    "pass an explicit seed"
                )
        if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            if parts[2] in _NUMPY_GLOBAL_FUNCS:
                return (
                    f"{dotted}() uses numpy's global random state; "
                    f"use a seeded np.random.default_rng(seed) instead"
                )
            if parts[2] == "default_rng" and not node.args and not node.keywords:
                return (
                    f"{dotted}() without a seed draws OS entropy; "
                    f"pass an explicit seed"
                )
        return None
