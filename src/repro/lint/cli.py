"""Command-line front end for :mod:`repro.lint`.

Reachable two ways with identical semantics::

    mlcache lint [paths...]
    python -m repro.lint [paths...]

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage/configuration
error (unknown rule, unreadable baseline, bad path).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.engine import (
    Baseline,
    LintResult,
    all_rules,
    lint_paths,
)

#: Baseline picked up automatically when it exists next to the cwd.
DEFAULT_BASELINE = Path("lint-baseline.json")

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Domain-aware static analysis for the repro tree "
        "(determinism, unit-safety, env-registry, fork-safety, memo-purity).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable, e.g. --select RPR001)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=f"baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file, report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        scope = ", ".join(rule.scope) if rule.scope else "everywhere"
        lines.append(f"{rule.rule_id} {rule.name} [{rule.severity}] scope: {scope}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def _render_text(result: LintResult) -> str:
    lines = [item.render() for item in result.findings]
    summary = (
        f"{result.files} file(s) checked: {len(result.findings)} finding(s), "
        f"{result.suppressed} suppressed inline, {result.baselined} baselined"
    )
    lines.append(summary)
    return "\n".join(lines)


def _resolve_baseline(args: argparse.Namespace) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    if DEFAULT_BASELINE.exists():
        return DEFAULT_BASELINE
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return EXIT_CLEAN

    raw_paths: List[str] = args.paths or ["src"]
    paths = [Path(p) for p in raw_paths]
    for path in paths:
        if not path.exists():
            print(f"repro-lint: path not found: {path}", file=sys.stderr)
            return EXIT_USAGE

    baseline_path = _resolve_baseline(args)

    if args.write_baseline:
        if baseline_path is None:
            baseline_path = DEFAULT_BASELINE
        try:
            result = lint_paths(paths, select=args.select, baseline=None)
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return EXIT_USAGE
        Baseline.from_findings(result.findings).write(baseline_path)
        print(
            f"wrote {baseline_path} ({len(result.findings)} grandfathered "
            f"finding(s))"
        )
        return EXIT_CLEAN

    baseline = None
    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            print(f"repro-lint: bad baseline {baseline_path}: {exc}", file=sys.stderr)
            return EXIT_USAGE

    try:
        result = lint_paths(paths, select=args.select, baseline=baseline)
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_USAGE

    try:
        if args.format == "json":
            print(json.dumps(result.as_dict(), indent=2))
        else:
            print(_render_text(result))
    except BrokenPipeError:  # output piped into head/less and closed early
        sys.stderr.close()
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
