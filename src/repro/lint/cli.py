"""Command-line front end for :mod:`repro.lint`.

Reachable two ways with identical semantics::

    mlcache lint [paths...]
    python -m repro.lint [paths...]

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage/configuration
error (unknown rule, unreadable baseline, bad path) *or* an engine
crash -- an analyzer exception must never masquerade as a clean pass.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import traceback
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.lint.engine import (
    Baseline,
    LintResult,
    all_rules,
    get_rules,
    lint_paths,
    package_relpath,
)

#: Baseline picked up automatically when it exists next to the cwd.
DEFAULT_BASELINE = Path("lint-baseline.json")

#: Project-index cache written when ``--cache`` is given with no path.
DEFAULT_CACHE = Path(".repro-lint-cache.json")

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Domain-aware static analysis for the repro tree "
        "(determinism, unit-safety, env-registry, fork-safety, memo-purity, "
        "plus the interprocedural integrity/locking/purity rules).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable, e.g. --select RPR001)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=f"baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file, report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--project",
        dest="project",
        action="store_true",
        default=True,
        help="run the interprocedural analysis (call graph + effect "
        "propagation; the default)",
    )
    parser.add_argument(
        "--no-project",
        dest="project",
        action="store_false",
        help="per-file rules only; skip the project analysis",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="report findings only for files changed vs the git ref "
        "(default HEAD); the project index still covers the whole tree",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        type=Path,
        const=DEFAULT_CACHE,
        default=None,
        metavar="FILE",
        help="persist the digest-keyed project index so warm runs "
        f"re-parse only changed files (default file: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        default=None,
        help="print the full documentation for one rule id and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        scope = ", ".join(rule.scope) if rule.scope else "everywhere"
        flavour = "project" if rule.requires_project else "per-file"
        lines.append(
            f"{rule.rule_id} {rule.name} [{rule.severity}] "
            f"({flavour}) scope: {scope}"
        )
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def _explain_rule(rule_id: str) -> str:
    rule = get_rules([rule_id])[0]
    scope = ", ".join(rule.scope) if rule.scope else "everywhere"
    parts = [
        f"{rule.rule_id} {rule.name} [{rule.severity}] scope: {scope}",
        "",
        rule.rationale,
    ]
    if rule.explain:
        parts += ["", rule.explain]
    return "\n".join(parts)


def _render_text(result: LintResult) -> str:
    lines = [item.render() for item in result.findings]
    summary = (
        f"{result.files} file(s) checked ({result.parsed} parsed): "
        f"{len(result.findings)} finding(s), "
        f"{result.suppressed} suppressed inline, {result.baselined} baselined"
    )
    lines.append(summary)
    return "\n".join(lines)


def _resolve_baseline(args: argparse.Namespace) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    if DEFAULT_BASELINE.exists():
        return DEFAULT_BASELINE
    return None


def _git_lines(argv: List[str]) -> List[str]:
    try:
        completed = subprocess.run(
            argv, capture_output=True, text=True, check=True, timeout=30
        )
    except (OSError, subprocess.SubprocessError) as error:
        detail = ""
        stderr = getattr(error, "stderr", "")
        if stderr:
            detail = f": {str(stderr).strip()}"
        raise ValueError(f"--changed: {' '.join(argv)} failed{detail}") from error
    return [line for line in completed.stdout.splitlines() if line.strip()]


def changed_relpaths(ref: str) -> Set[str]:
    """Package-relative paths of ``.py`` files changed vs ``ref`` (plus
    untracked ones), for ``--changed`` report scoping."""
    root_lines = _git_lines(["git", "rev-parse", "--show-toplevel"])
    if not root_lines:
        raise ValueError("--changed: not inside a git repository")
    root = Path(root_lines[0])
    names = _git_lines(["git", "diff", "--name-only", ref, "--", "*.py"])
    names += _git_lines(
        ["git", "ls-files", "--others", "--exclude-standard", "--", "*.py"]
    )
    return {package_relpath(root / name) for name in names}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return EXIT_CLEAN

    if args.explain is not None:
        try:
            print(_explain_rule(args.explain))
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return EXIT_USAGE
        return EXIT_CLEAN

    raw_paths: List[str] = args.paths or ["src"]
    paths = [Path(p) for p in raw_paths]
    for path in paths:
        if not path.exists():
            print(f"repro-lint: path not found: {path}", file=sys.stderr)
            return EXIT_USAGE

    baseline_path = _resolve_baseline(args)

    report_relpaths: Optional[Set[str]] = None
    if args.changed is not None:
        try:
            report_relpaths = changed_relpaths(args.changed)
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return EXIT_USAGE

    if args.write_baseline:
        if baseline_path is None:
            baseline_path = DEFAULT_BASELINE
        try:
            result = lint_paths(
                paths,
                select=args.select,
                baseline=None,
                project=args.project,
                cache_path=args.cache,
                report_relpaths=report_relpaths,
            )
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return EXIT_USAGE
        Baseline.from_findings(result.findings).write(baseline_path)
        print(
            f"wrote {baseline_path} ({len(result.findings)} grandfathered "
            f"finding(s))"
        )
        return EXIT_CLEAN

    baseline = None
    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            print(f"repro-lint: bad baseline {baseline_path}: {exc}", file=sys.stderr)
            return EXIT_USAGE

    try:
        result = lint_paths(
            paths,
            select=args.select,
            baseline=baseline,
            project=args.project,
            cache_path=args.cache,
            report_relpaths=report_relpaths,
        )
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except Exception as exc:  # engine crash: loud exit 2, never "clean"
        print(
            f"repro-lint: internal error: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        traceback.print_exc(file=sys.stderr)
        return EXIT_USAGE

    try:
        if args.format == "json":
            print(json.dumps(result.as_dict(), indent=2))
        else:
            print(_render_text(result))
    except BrokenPipeError:  # output piped into head/less and closed early
        sys.stderr.close()
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
