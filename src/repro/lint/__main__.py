"""``python -m repro.lint`` -- same front end as ``mlcache lint``."""

import os
import sys

from repro.lint.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Downstream pager/head closed the pipe; die quietly instead of
    # tracebacking (and stop the interpreter re-raising at shutdown).
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    sys.exit(1)
