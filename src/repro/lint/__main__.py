"""``python -m repro.lint`` -- same front end as ``mlcache lint``."""

import sys

from repro.lint.cli import main

sys.exit(main())
