"""Durable artifact storage: atomic writes, quarantine, advisory locks.

Everything the sweep engine trusts lives on disk -- MLCTRACE stores, the
checkpoint journal, JSON run manifests, the workload disk cache, BENCH
results -- and before this module only the journal tolerated torn
writes.  A crash between ``open(path, "w")`` and ``close()`` left a
half-written manifest that parsed as garbage; an ENOSPC mid-save left a
truncated trace store that a later sweep would happily memmap; two
``mlcache run`` processes sharing a cache directory raced each other's
writes.  This module is the shared hardening layer:

**Atomic writes** (:func:`atomic_write_bytes`, :func:`atomic_writer`).
Data goes to a same-directory temporary file (``<name>.tmp-<pid>-<seq>``),
is flushed and fsynced, and is published with ``os.replace`` followed by
a directory fsync.  Readers therefore see either the old artifact or the
new one, never a prefix.  A crash leaves at most an orphaned ``.tmp-``
file, which ``mlcache doctor`` removes.

**Disk-fault injection.**  When ``REPRO_FAULTS`` names a disk fault
(``torn_write`` / ``enospc`` / ``rename_fail`` / ``bitflip``, see
:mod:`repro.resilience.faults`), the commit path applies it here: the
first three raise after leaving realistic damage (truncated tmp file,
partial payload, unrenamed tmp), ``bitflip`` silently flips one payload
bit so only digest verification can catch it.  The storage chaos drill
(``python -m repro.resilience.chaos --storage``) is built on these.

**Quarantine** (:func:`quarantine`).  A corrupt artifact is *moved*
into a ``quarantine/`` sibling directory with a JSON sidecar recording
why -- never deleted (the evidence survives for diagnosis) and never
read again (the path it poisoned is free for a rebuild).

**Advisory locks** (:class:`AdvisoryLock`).  ``fcntl.flock`` on a
``.lock`` sibling file, plus a JSON holder record (pid, boot id, name)
written inside it.  The kernel releases the flock when the holder dies,
so takeover after a SIGKILL needs no cleanup; the holder record is what
error messages and ``mlcache doctor`` use to tell a *live* holder
("cooperate or fail fast with a clear error") from a *stale* one (pid
dead, or a different boot id -- the machine rebooted).  The journal
acquires its lock fail-fast; the workload disk cache waits up to
``REPRO_LOCK_TIMEOUT_S`` for a cooperating builder.
"""

from __future__ import annotations

import errno
import hashlib
import itertools
import json
import logging
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any, Dict, Iterator, Optional

from repro.resilience.faults import DISK_FAULT_KINDS, FaultPlan, InjectedFault

try:  # pragma: no cover - absent only on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "TMP_MARKER",
    "LOCK_SUFFIX",
    "QUARANTINE_DIR",
    "LockHeldError",
    "NO_FAULTS",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_writer",
    "fsync_directory",
    "quarantine",
    "boot_id",
    "AdvisoryLock",
    "probe_lock",
    "is_tmp_artifact",
]

log = logging.getLogger("repro.resilience.integrity")

#: Marker inside every atomic-write temporary name; ``mlcache doctor``
#: treats any file containing it as a crash orphan.
TMP_MARKER = ".tmp-"

#: Conventional suffix for advisory lock files.
LOCK_SUFFIX = ".lock"

#: Sibling directory corrupt artifacts are moved into.
QUARANTINE_DIR = "quarantine"

#: Per-process sequence for tmp names and disk-fault draws: repeated
#: writes to the same path get distinct tmp files and fresh draws.
_write_seq = itertools.count()

#: How often a blocking lock acquisition re-checks the flock.
_LOCK_POLL_S = 0.05

#: A plan with no faults: pass as ``faults=`` to exempt a write from
#: injection (``None`` means "read REPRO_FAULTS", not "no faults").
NO_FAULTS = FaultPlan(rates=())


class LockHeldError(RuntimeError):
    """Another process holds an advisory lock we need.

    Carries the holder record (when readable) so the error message names
    who to wait for instead of a bare "resource busy".
    """

    def __init__(self, path: Path, holder: Optional[Dict[str, Any]]) -> None:
        self.path = Path(path)
        self.holder = holder
        who = (
            f"pid {holder.get('pid')} (boot {str(holder.get('boot_id'))[:8]}, "
            f"{holder.get('name') or 'unnamed'})"
            if holder
            else "an unidentified process"
        )
        super().__init__(
            f"{self.path}: advisory lock held by {who}; another sweep is "
            f"using this artifact (wait for it, or remove the stale lock "
            f"with `mlcache doctor --fix` if the holder is dead)"
        )


# -- fault plumbing ----------------------------------------------------------


def _disk_plan(faults: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """The active fault plan, if it names any disk fault."""
    plan = FaultPlan.from_env() if faults is None else faults
    if plan is None:
        return None
    if not any(plan.rate(kind) > 0.0 for kind in DISK_FAULT_KINDS):
        return None
    return plan


def _flip_position(plan: FaultPlan, signature: str, seq: int, size: int) -> int:
    """Deterministic bit position for an injected flip."""
    digest = hashlib.sha256(
        f"{plan.seed}|bitflip_pos|{signature}|{seq}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") % max(1, size * 8)


def fsync_directory(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    Best effort: some filesystems refuse O_DIRECTORY fsync; the rename
    itself is still atomic there.
    """
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:  # pragma: no cover - exotic filesystem
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - exotic filesystem
        pass
    finally:
        os.close(fd)


def _commit(tmp: Path, path: Path, plan: Optional[FaultPlan], seq: int) -> None:
    """Publish a fully-written, fsynced tmp file, applying disk faults."""
    signature = f"disk:{path.name}"
    if plan is not None:
        if plan.decide("torn_write", signature, seq):
            size = tmp.stat().st_size
            os.truncate(tmp, size // 2)
            raise InjectedFault(
                f"torn_write injected for {path.name} (seq {seq})"
            )
        if plan.decide("enospc", signature, seq):
            size = tmp.stat().st_size
            os.truncate(tmp, max(0, size - max(1, size // 3)))
            raise OSError(
                errno.ENOSPC,
                f"enospc injected for {path.name} (seq {seq})",
            )
        if plan.decide("bitflip", signature, seq):
            size = tmp.stat().st_size
            if size:
                position = _flip_position(plan, signature, seq, size)
                with open(tmp, "r+b") as handle:
                    handle.seek(position // 8)
                    byte = handle.read(1)
                    handle.seek(position // 8)
                    handle.write(bytes([byte[0] ^ (1 << (position % 8))]))
                    handle.flush()
                    os.fsync(handle.fileno())
                # Silent: bit rot does not announce itself.
        if plan.decide("rename_fail", signature, seq):
            raise InjectedFault(
                f"rename_fail injected for {path.name} (seq {seq}); "
                f"tmp file left at {tmp.name}"
            )
    os.replace(tmp, path)
    fsync_directory(path.parent)


@contextmanager
def atomic_writer(
    path: Path, faults: Optional[FaultPlan] = None
) -> Iterator[IO[bytes]]:
    """A binary file handle whose contents appear at ``path`` atomically.

    The handle is a real file object (``numpy.tofile`` works); on normal
    exit it is flushed, fsynced and renamed into place, and the parent
    directory is fsynced.  If the block raises, the tmp file is removed
    and ``path`` is untouched.  Injected disk faults fire at commit time
    (the tmp damage they leave is part of the simulation -- doctor's
    orphan scan must find it).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    seq = next(_write_seq)
    tmp = path.with_name(f"{path.name}{TMP_MARKER}{os.getpid()}-{seq}")
    handle = open(tmp, "wb")
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - racy cleanup
            pass
        raise
    handle.close()
    _commit(tmp, path, _disk_plan(faults), seq)


def atomic_write_bytes(
    path: Path, data: bytes, faults: Optional[FaultPlan] = None
) -> None:
    """Atomically publish ``data`` at ``path`` (tmp + fsync + rename)."""
    with atomic_writer(path, faults=faults) as handle:
        handle.write(data)


def atomic_write_text(
    path: Path, text: str, faults: Optional[FaultPlan] = None
) -> None:
    """Atomically publish ``text`` (UTF-8) at ``path``."""
    atomic_write_bytes(path, text.encode("utf-8"), faults=faults)


def is_tmp_artifact(path: Path) -> bool:
    """Whether ``path`` looks like an atomic-write temporary."""
    return TMP_MARKER in Path(path).name


# -- quarantine --------------------------------------------------------------


def quarantine(
    path: Path, reason: str, root: Optional[Path] = None
) -> Optional[Path]:
    """Move a corrupt artifact into ``quarantine/`` with a reason sidecar.

    Returns the quarantined path, or ``None`` when the artifact vanished
    before it could be moved (another process already handled it).  The
    move is a same-filesystem rename -- the corrupt bytes are preserved
    for diagnosis, and the original path is immediately reusable for a
    rebuild.
    """
    path = Path(path)
    directory = Path(root) if root is not None else path.parent / QUARANTINE_DIR
    try:
        directory.mkdir(parents=True, exist_ok=True)
        destination = directory / (
            f"{path.name}.{os.getpid()}-{next(_write_seq)}"
        )
        os.replace(path, destination)
    except FileNotFoundError:
        return None
    sidecar = {
        "artifact": str(path),
        "reason": reason,
        "pid": os.getpid(),
        "unix_time": time.time(),
    }
    try:
        atomic_write_text(
            destination.with_name(destination.name + ".reason.json"),
            json.dumps(sidecar, indent=2, sort_keys=True) + "\n",
            # The sidecar is forensic breadcrumbs, not a trusted artifact:
            # exempt it from injection so a fault storm cannot turn
            # quarantining itself into a crash.
            faults=NO_FAULTS,
        )
    except OSError:  # pragma: no cover - sidecar is best-effort
        pass
    fsync_directory(directory)
    log.warning(
        "artifact-quarantined path=%s dest=%s reason=%s",
        path, destination, reason,
    )
    return destination


# -- advisory locks ----------------------------------------------------------


_BOOT_ID: Optional[str] = None


def boot_id() -> str:
    """A stable identifier for this boot of this machine.

    A lock-holder record from a *different* boot is stale by definition:
    whatever held it cannot have survived the reboot.  Falls back to
    ``unknown`` where the kernel does not expose one (staleness then
    falls back to pid-liveness alone, which is conservative).
    """
    global _BOOT_ID
    if _BOOT_ID is None:
        try:
            _BOOT_ID = (
                Path("/proc/sys/kernel/random/boot_id")
                .read_text()
                .strip()
            )
        except OSError:  # pragma: no cover - non-Linux
            _BOOT_ID = "unknown"
    return _BOOT_ID


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's process
        return True
    return True


def holder_record(path: Path) -> Optional[Dict[str, Any]]:
    """The holder JSON recorded inside a lock file, if any."""
    try:
        text = Path(path).read_text(encoding="utf-8").strip()
    except OSError:
        return None
    if not text:
        return None
    try:
        record = json.loads(text)
    except json.JSONDecodeError:
        return None
    return record if isinstance(record, dict) else None


def holder_is_stale(holder: Dict[str, Any]) -> bool:
    """Whether a recorded holder cannot still be running."""
    recorded_boot = holder.get("boot_id")
    if recorded_boot and recorded_boot != boot_id():
        return True
    pid = holder.get("pid")
    if isinstance(pid, int):
        return not _pid_alive(pid)
    return False


class AdvisoryLock:
    """An ``fcntl.flock`` advisory lock with a pid + boot-id holder record.

    The flock is the mutual exclusion (kernel-released on process death,
    so a SIGKILLed holder never wedges anyone); the holder record is the
    observability (error messages name the holder, ``mlcache doctor``
    classifies leftover lock files as stale or clean).  ``timeout_s=0``
    fails fast; a positive timeout polls until the deadline.
    """

    def __init__(self, path: Path, name: str = "") -> None:
        self.path = Path(path)
        self.name = name
        self._fd: Optional[int] = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self, timeout_s: float = 0.0) -> "AdvisoryLock":
        if self._fd is not None:
            return self
        if fcntl is None:  # pragma: no cover - non-POSIX
            raise OSError("advisory locks require fcntl (POSIX)")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + max(0.0, timeout_s)
        while True:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except BlockingIOError:
                os.close(fd)
                if time.monotonic() >= deadline:
                    raise LockHeldError(
                        self.path, holder_record(self.path)
                    ) from None
                time.sleep(_LOCK_POLL_S)
                continue
            # The lock file may have been unlinked (doctor --fix) between
            # our open and flock; holding a lock on a nameless inode
            # excludes nobody, so re-open and try again.
            try:
                if os.fstat(fd).st_ino != os.stat(self.path).st_ino:
                    os.close(fd)
                    continue
            except OSError:
                os.close(fd)
                continue
            self._fd = fd
            record = json.dumps(
                {
                    "pid": os.getpid(),
                    "boot_id": boot_id(),
                    "name": self.name,
                    "unix_time": time.time(),
                },
                sort_keys=True,
            )
            os.ftruncate(fd, 0)
            os.pwrite(fd, record.encode("utf-8") + b"\n", 0)
            return self

    def release(self) -> None:
        """Release the flock and blank the holder record (idempotent).

        The lock *file* stays behind -- unlinking it while a waiter holds
        the old inode would let two processes "hold" the same path -- but
        a blank record marks a clean release, so doctor never reports it
        as stale.
        """
        if self._fd is None:
            return
        try:
            os.ftruncate(self._fd, 0)
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
        finally:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "AdvisoryLock":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def probe_lock(path: Path) -> str:
    """Classify a lock file: ``held``, ``stale`` or ``free``.

    ``held``: a live process has the flock.  ``stale``: nobody holds the
    flock but a holder record remains (the holder died without releasing
    -- safe to remove).  ``free``: no flock and no record (clean residue
    of a released lock).  Used by ``mlcache doctor``; racy by nature, as
    any lock inspection from outside is.
    """
    path = Path(path)
    if fcntl is None:  # pragma: no cover - non-POSIX
        return "free"
    try:
        fd = os.open(path, os.O_RDWR)
    except OSError:
        return "free"
    try:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except BlockingIOError:
            return "held"
        fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)
    holder = holder_record(path)
    if holder is not None and holder_is_stale(holder):
        return "stale"
    return "free"
