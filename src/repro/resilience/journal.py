"""Append-only checkpoint journal for sweeps.

One JSONL record per completed cell, flushed to the operating system
before the sweep moves on -- so the journal survives a SIGKILL at any
instant (the bytes are in the kernel's page cache, which outlives the
process).  fsync, which is what protects against *machine* crashes and
costs milliseconds per call on ordinary disks, is group-committed: one
lands at least every :data:`FSYNC_EVERY` records, after every batched
:meth:`SweepJournal.record_cells`, and at close.  A power loss can
therefore cost at most the last few cells -- a resumed sweep simply
re-simulates them -- instead of taxing every cell of every sweep.  Cells
are keyed by the same identities the memoisation layer uses
(:func:`repro.sim.memo.memo_key` for functional cells,
:func:`repro.sim.memo.timing_key` for timing cells): a resumed sweep
restores every journaled cell and simulates only the remainder,
producing a grid identical to an uninterrupted run.

Record format (one JSON object per line)::

    {"t": "header", "schema": 1, "name": "...", "pid": ...}
    {"t": "cell", "kind": "functional", "key": "<sha256 of the cell key>",
     "trace": "...", "sum": "<sha256[:12] of payload>", "payload": {...}}

Torn trailing lines (the record being written when the process died) and
checksum mismatches are skipped on load; duplicate keys keep the last
complete record.  Payloads carry every field of the result except its
``config`` -- the resuming sweep re-attaches its own configuration
object, exactly as the memo cache does for timing-variant hits.

Activation mirrors :mod:`repro.audit.manifest`: the sweep executor
consults :func:`current_journal`, and :func:`journaling` installs a
journal for the duration of a block::

    with journaling(path, resume=True):
        grid = sweep_functional(traces, configs)
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.cache.stats import CacheStats
from repro.resilience.integrity import AdvisoryLock
from repro.sim.functional import FunctionalResult
from repro.sim.timing import TimingResult

#: Journal schema version (bump on breaking shape changes).
SCHEMA = 1

#: Group-commit interval: an fsync is forced after this many records
#: land without one.  Bounds the machine-crash loss window; process
#: crashes lose nothing (every record is flushed).
FSYNC_EVERY = 16

#: Resume auto-compacts when the journal carries at least this many dead
#: records *and* they outnumber the live cells -- long kill/resume
#: chains then stay O(live cells) instead of accreting every torn line
#: and superseded duplicate forever.
AUTO_COMPACT_MIN_DEAD = 64

#: Grace period when acquiring the journal's writer lock.  A SIGKILLed
#: sweep's pool workers share its lock file description until they
#: notice the reparent and exit; a few seconds of patience lets an
#: immediate ``--resume`` ride that window out, while a journal held by
#: a genuinely live sweep still fails fast with the holder's identity.
LOCK_GRACE_S = 5.0


def journal_digest(kind: str, key: Tuple) -> str:
    """The journal's stable identity for one cell.

    ``repr`` of a memo/timing key is deterministic across processes and
    runs: the tuples contain only ints, floats, bools, strings and enums
    with stable reprs, and the trace component is already a content hash.
    """
    return hashlib.sha256(f"{kind}|{key!r}".encode()).hexdigest()


def _payload_checksum(payload_text: str) -> str:
    return hashlib.sha256(payload_text.encode()).hexdigest()[:12]


# -- result (de)serialisation ------------------------------------------------


def encode_functional(result: FunctionalResult) -> Dict:
    return {
        "trace_name": result.trace_name,
        "cpu_reads": result.cpu_reads,
        "cpu_writes": result.cpu_writes,
        "cpu_ifetches": result.cpu_ifetches,
        "level_stats": [asdict(stats) for stats in result.level_stats],
        "memory_reads": result.memory_reads,
        "memory_writes": result.memory_writes,
    }


def decode_functional(payload: Dict, config) -> FunctionalResult:
    return FunctionalResult(
        trace_name=payload["trace_name"],
        config=config,
        cpu_reads=payload["cpu_reads"],
        cpu_writes=payload["cpu_writes"],
        cpu_ifetches=payload["cpu_ifetches"],
        level_stats=[CacheStats(**stats) for stats in payload["level_stats"]],
        memory_reads=payload["memory_reads"],
        memory_writes=payload["memory_writes"],
    )


def encode_timing(result: TimingResult) -> Dict:
    return {
        "trace_name": result.trace_name,
        "instructions": result.instructions,
        "cpu_reads": result.cpu_reads,
        "cpu_writes": result.cpu_writes,
        "total_ns": result.total_ns,
        "base_ns": result.base_ns,
        "read_stall_ns": result.read_stall_ns,
        "write_stall_ns": result.write_stall_ns,
        "level_stats": [asdict(stats) for stats in result.level_stats],
        "memory_reads": result.memory_reads,
        "memory_writes": result.memory_writes,
        "buffer_full_stalls": list(result.buffer_full_stalls),
        "buffer_read_matches": list(result.buffer_read_matches),
    }


def decode_timing(payload: Dict, config) -> TimingResult:
    return TimingResult(
        trace_name=payload["trace_name"],
        config=config,
        instructions=payload["instructions"],
        cpu_reads=payload["cpu_reads"],
        cpu_writes=payload["cpu_writes"],
        total_ns=payload["total_ns"],
        read_stall_ns=payload["read_stall_ns"],
        write_stall_ns=payload["write_stall_ns"],
        level_stats=[CacheStats(**stats) for stats in payload["level_stats"]],
        memory_reads=payload["memory_reads"],
        memory_writes=payload["memory_writes"],
        buffer_full_stalls=list(payload["buffer_full_stalls"]),
        buffer_read_matches=list(payload["buffer_read_matches"]),
        base_ns=payload["base_ns"],
    )


_DECODERS = {"functional": decode_functional, "timing": decode_timing}


# -- the journal -------------------------------------------------------------


class SweepJournal:
    """One sweep run's crash-tolerant cell checkpoint file."""

    def __init__(self, path, resume: bool = False, name: str = "") -> None:
        self.path = Path(path)
        self.name = name
        #: Complete records loaded at open time: digest -> (kind, payload).
        self._restorable: Dict[str, Tuple[str, Dict]] = {}
        #: Cells appended (or restored) during this process's lifetime.
        self.recorded = 0
        #: Records flushed but not yet fsynced (group commit).
        self._unsynced = 0
        #: Dead records seen at load: torn lines, checksum failures, and
        #: cells superseded by a later record for the same key.  Feeds
        #: the auto-compaction heuristic and ``mlcache doctor``.
        self.dead = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # One journal, one writer: concurrent sweeps appending to the
        # same file would interleave records and corrupt each other's
        # resume state, so a second opener fails fast (LockHeldError
        # names the holder).  The flock dies with the process -- a
        # SIGKILLed sweep never wedges its successor.
        self._lock = AdvisoryLock(
            self.path.with_name(self.path.name + ".lock"),
            name=f"journal:{name or self.path.stem}",
        )
        self._lock.acquire(timeout_s=LOCK_GRACE_S)
        if resume and self.path.exists():
            self._load()
        # "a" positions at end-of-file, so tell() doubles as a size check;
        # a non-resuming open truncates any stale journal.
        # The append-only journal *is* the durability layer here: every
        # record is a full line fsynced on sync(), and the reader drops
        # torn tails.  Atomic replace would defeat crash-resumability.
        self._handle = open(  # repro: noqa RPR006
            self.path, "a" if resume else "w", encoding="utf-8"
        )
        if self._handle.tell() == 0:
            self._append(
                {"t": "header", "schema": SCHEMA, "name": name, "pid": os.getpid()}
            )
        elif resume and self.dead >= max(
            AUTO_COMPACT_MIN_DEAD, len(self._restorable)
        ):
            self.compact()

    def _load(self) -> None:
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.dead += 1
                continue  # torn write from a killed process
            if record.get("t") != "cell":
                continue
            payload = record.get("payload")
            payload_text = json.dumps(payload, sort_keys=True)
            if record.get("sum") != _payload_checksum(payload_text):
                self.dead += 1
                continue
            if record["key"] in self._restorable:
                self.dead += 1  # the earlier record is now superseded
            self._restorable[record["key"]] = (record["kind"], payload)

    def _append(self, record: Dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        telemetry.counter_add("journal.fsyncs")

    def sync(self) -> None:
        """Force any flushed-but-unsynced records to stable storage."""
        if self._unsynced and not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._unsynced = 0
            telemetry.counter_add("journal.fsyncs")

    # -- recording ----------------------------------------------------------

    def _cell_record(self, kind: str, key: Tuple, result):
        payload = (
            encode_functional(result) if kind == "functional" else encode_timing(result)
        )
        payload_text = json.dumps(payload, sort_keys=True)
        digest = journal_digest(kind, key)
        record = {
            "t": "cell",
            "kind": kind,
            "key": digest,
            "trace": result.trace_name,
            "sum": _payload_checksum(payload_text),
            "payload": payload,
        }
        return digest, payload, record

    def record_cell(self, kind: str, key: Tuple, result) -> None:
        """Journal one completed cell, flushed before returning.

        The flush makes the record survive a process kill; the fsync
        that also makes it survive a machine crash is group-committed
        (every :data:`FSYNC_EVERY` records and at close).
        """
        digest, payload, record = self._cell_record(kind, key, result)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._restorable[digest] = (kind, payload)
        self.recorded += 1
        self._unsynced += 1
        telemetry.counter_add("journal.records")
        if self._unsynced >= FSYNC_EVERY:
            self.sync()

    def record_cells(self, kind: str, entries) -> None:
        """Journal a batch of ``(key, result)`` cells that completed
        together (one stack-distance pass derives several cells) with a
        single write, flush and fsync.  A torn tail loses at most the
        batch's unflushed suffix; :meth:`_load` drops it by checksum.
        """
        lines = []
        for key, result in entries:
            digest, payload, record = self._cell_record(kind, key, result)
            lines.append(json.dumps(record, sort_keys=True) + "\n")
            self._restorable[digest] = (kind, payload)
        if not lines:
            return
        self._handle.write("".join(lines))
        self.recorded += len(lines)
        self._unsynced += len(lines)
        telemetry.counter_add("journal.records", len(lines))
        self.sync()

    # -- restoring ----------------------------------------------------------

    def restore(self, kind: str, key: Tuple, config):
        """The journaled result for ``key`` with ``config`` attached, or
        ``None`` when the cell was never completed."""
        entry = self._restorable.get(journal_digest(kind, key))
        if entry is None or entry[0] != kind:
            return None
        return _DECODERS[kind](entry[1], config)

    @property
    def restorable_cells(self) -> int:
        return len(self._restorable)

    # -- compaction ----------------------------------------------------------

    def compact(self) -> int:
        """Rewrite the journal to just its live cells, atomically.

        Builds a fresh segment (header + one record per restorable cell,
        insertion order) and swaps it in with the atomic-write primitive
        -- a crash at any instant leaves either the old segment or the
        new one fully valid, never a blend.  If the swap itself fails
        (ENOSPC, injected ``rename_fail``), the old segment is untouched
        and appending resumes on it.  Returns the number of dead records
        dropped.
        """
        with telemetry.span("journal.compact", live=len(self._restorable)):
            return self._compact()

    def _compact(self) -> int:
        from repro.resilience.integrity import atomic_writer

        self.sync()
        self._handle.close()
        lines = [
            json.dumps(
                {
                    "t": "header",
                    "schema": SCHEMA,
                    "name": self.name,
                    "pid": os.getpid(),
                    "compacted": True,
                },
                sort_keys=True,
            )
            + "\n"
        ]
        for digest, (kind, payload) in self._restorable.items():
            payload_text = json.dumps(payload, sort_keys=True)
            lines.append(
                json.dumps(
                    {
                        "t": "cell",
                        "kind": kind,
                        "key": digest,
                        "trace": payload.get("trace_name", ""),
                        "sum": _payload_checksum(payload_text),
                        "payload": payload,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
        dropped = self.dead
        try:
            with atomic_writer(self.path) as handle:
                handle.write("".join(lines).encode("utf-8"))
        finally:
            # Success: append to the fresh segment.  Failure: the old
            # segment was never touched (the damage, if any, is on the
            # orphaned tmp file), so appending there stays correct.
            self._handle = open(self.path, "a", encoding="utf-8")  # repro: noqa RPR006
        self.dead = 0
        return dropped

    def close(self) -> None:
        if not self._handle.closed:
            self.sync()
            self._handle.close()
        self._lock.release()


# -- activation --------------------------------------------------------------

#: Active journals, innermost last (mirrors ``repro.audit.manifest``).
_active: List[SweepJournal] = []


def current_journal() -> Optional[SweepJournal]:
    """The innermost active journal, if any."""
    return _active[-1] if _active else None


@contextmanager
def journaling(path, resume: bool = False, name: str = ""):
    """Activate a :class:`SweepJournal` for the duration of the block.

    ``resume=False`` starts a fresh journal (truncating any existing
    file); ``resume=True`` restores every complete cell already in the
    file and appends the rest as they complete.
    """
    journal = SweepJournal(path, resume=resume, name=name)
    _active.append(journal)
    try:
        yield journal
    finally:
        _active.remove(journal)
        journal.close()
