"""Supervised worker pool with per-cell fault isolation.

This is the execution engine under :mod:`repro.core.sweep`.  Unlike a
plain ``multiprocessing.Pool.map`` -- where one worker exception aborts
the whole grid, a hung worker hangs the sweep forever and a SIGKILLed
worker silently loses its tasks -- this executor supervises its workers
explicitly:

* each worker is a dedicated process with its own duplex pipe, so a
  worker death is detected as pipe EOF the moment it happens and only
  that worker's in-flight work is affected;
* failed cells are retried with exponential backoff and jitter up to
  :class:`~repro.resilience.policy.RetryPolicy.max_attempts`;
* a multi-cell chunk that fails is split into single-cell jobs first, so
  one poisoned cell cannot consume innocent neighbours' retry budgets;
* cells exceeding ``REPRO_SWEEP_TIMEOUT`` get their worker killed and
  replaced, and the cell re-queued (a hung worker is unrecoverable by
  any other means);
* cells that exhaust their budget become structured
  :class:`~repro.resilience.policy.FailureReport` records -- the sweep
  degrades to a partial grid instead of losing everything;
* every completed cell is delivered to the caller *as it completes*
  through ``on_result``, which is how the checkpoint journal stays
  current even when the process is later SIGKILLed;
* worker teardown runs in a ``finally``: no aborted sweep leaves orphan
  processes behind.

The serial path (:func:`run_serial`) applies the same retry, fault
injection and validation logic in-process; it cannot preempt a running
cell, so wall-clock timeouts are pooled-only.
"""

from __future__ import annotations

import collections
import os
import signal
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro import telemetry
from repro.resilience.faults import FaultPlan
from repro.resilience.policy import FailureReport, RetryPolicy
from repro.sim import memo
from repro.sim.config import SystemConfig, format_config
from repro.trace.record import Trace
from repro.trace.store import TraceHandle, export_traces, resolve_traces

#: Supervisor poll interval (seconds): the upper bound on how stale the
#: deadline/liveness checks can be.
_POLL_S = 0.05

#: Headroom added to a job's deadline so dispatch latency is not billed
#: against the cell's own budget.
_DEADLINE_GRACE_S = 0.1

#: How often an idle worker checks whether its supervisor still exists.
_ORPHAN_POLL_S = 0.5


class Cell(NamedTuple):
    """One unit of sweep work, with a scheduling-independent identity."""

    cell_id: int
    trace_index: int
    config: SystemConfig
    #: Stable signature (:func:`repro.resilience.faults.cell_signature`)
    #: used for deterministic fault injection.
    signature: str


@dataclass
class ExecOutcome:
    """What actually happened to a batch of cells."""

    #: cell_id -> result, for every cell that completed and validated.
    results: Dict[int, Any] = field(default_factory=dict)
    failures: List[FailureReport] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    #: Worker processes re-created after a death, hang or kill.
    pool_restarts: int = 0
    #: (hits, misses, evictions) accumulated inside worker processes.
    worker_memo: Tuple[int, int, int] = (0, 0, 0)


@dataclass
class _Job:
    cells: List[Cell]
    attempt: int
    job_id: int = 0


def _evaluate_cell(
    compute: Callable[[Sequence[Trace], Cell], Any],
    traces: Sequence[Trace],
    cell: Cell,
    attempt: int,
    faults: Optional[FaultPlan],
    in_worker: bool,
):
    """Run one cell, applying injected faults around the simulation."""
    if faults is not None:
        faults.inject_before(cell.signature, attempt, in_worker)
    result = compute(traces, cell)
    if faults is not None:
        result = faults.corrupt_after(cell.signature, attempt, result)
    return result


def _worker_main(
    conn,
    trace_handles: Sequence[TraceHandle],
    compute: Callable[[Sequence[Trace], Cell], Any],
    faults: Optional[FaultPlan],
    kind: str = "",
) -> None:
    """Worker process loop: serve jobs until EOF or a ``None`` sentinel.

    Workers receive trace *handles* (:mod:`repro.trace.store`), not the
    traces: a store path reopens as memmap views, a shared-memory name
    attaches zero-copy.  Spawning a worker therefore ships kilobytes
    regardless of trace size, pool restarts re-touch no trace pages, and
    the loop is start-method-agnostic (fork and spawn both resolve the
    same handles).

    SIGINT is ignored so a ctrl-C lands only in the supervisor, whose
    ``finally`` then tears the workers down deterministically.  Pipe EOF
    alone cannot be relied on for supervisor death: each fork inherits
    the parent-side ends of every pipe open at spawn time (including its
    own), so a SIGKILLed supervisor leaves the write ends alive inside
    the workers themselves.  The reparenting check catches that case --
    an orphaned worker exits within one poll interval instead of
    lingering forever.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    telemetry.enter_worker()
    traces = resolve_traces(trace_handles)
    supervisor_pid = os.getppid()
    while True:
        try:
            if not conn.poll(_ORPHAN_POLL_S):
                if os.getppid() != supervisor_pid:
                    break  # supervisor died without running cleanup
                continue
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        job_id, attempt, cells = message
        before = memo.stats_snapshot()
        try:
            with telemetry.span(
                f"worker.{kind or 'job'}", cells=len(cells), attempt=attempt
            ):
                results = [
                    _evaluate_cell(
                        compute, traces, cell, attempt, faults, in_worker=True
                    )
                    for cell in cells
                ]
        except BaseException as exc:  # noqa: BLE001 - forwarded, not hidden
            text = traceback_module.format_exc()
            tele = telemetry.drain_worker()
            try:
                conn.send(
                    ("err", job_id, exc, type(exc).__name__, str(exc), text, tele)
                )
            except Exception:
                # The exception itself would not pickle; ship the strings.
                conn.send(
                    ("err", job_id, None, type(exc).__name__, str(exc), text, tele)
                )
            continue
        after = memo.stats_snapshot()
        delta = tuple(now - then for now, then in zip(after, before))
        conn.send(("ok", job_id, results, delta, telemetry.drain_worker()))
    conn.close()


class _WorkerHandle:
    __slots__ = ("process", "conn", "job", "deadline")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.job: Optional[_Job] = None
        self.deadline: Optional[float] = None


class _Supervisor:
    """Parent-side orchestration of the worker fleet."""

    def __init__(
        self,
        kind: str,
        compute: Callable[[Sequence[Trace], Cell], Any],
        traces: Sequence[Trace],
        trace_handles: Sequence[TraceHandle],
        context,
        workers: int,
        policy: RetryPolicy,
        faults: Optional[FaultPlan],
        validate: Optional[Callable[[Cell, Any], None]],
        on_result: Optional[Callable[[Cell, Any], None]],
    ) -> None:
        self.kind = kind
        self.compute = compute
        # Kept for failure reports (trace names); workers never see these.
        self.traces = list(traces)
        self.trace_handles = list(trace_handles)
        self.context = context
        self.workers = workers
        self.policy = policy
        self.faults = faults
        self.validate = validate
        self.on_result = on_result
        self.outcome = ExecOutcome()
        self.rng = policy.rng()
        self.pending: "collections.deque[_Job]" = collections.deque()
        self.delayed: List[Tuple[float, _Job]] = []
        self.handles: List[_WorkerHandle] = []
        self._next_job_id = 0

    # -- worker lifecycle ---------------------------------------------------

    def _spawn(self) -> _WorkerHandle:
        parent_conn, child_conn = self.context.Pipe(duplex=True)
        process = self.context.Process(
            target=_worker_main,
            args=(
                child_conn, self.trace_handles, self.compute, self.faults,
                self.kind,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(process, parent_conn)

    def _shutdown_handle(self, handle: _WorkerHandle, deadline_s: float = 2.0) -> None:
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=deadline_s)
        if handle.process.is_alive():  # pragma: no cover - stubborn worker
            handle.process.kill()
            handle.process.join(timeout=deadline_s)

    def _respawn(self, handle: _WorkerHandle) -> None:
        self._shutdown_handle(handle)
        replacement = self._spawn()
        handle.process = replacement.process
        handle.conn = replacement.conn
        handle.job = None
        handle.deadline = None
        self.outcome.pool_restarts += 1
        telemetry.counter_add("pool.restarts")

    def start(self, job_count: int) -> None:
        for _ in range(max(1, min(self.workers, job_count))):
            self.handles.append(self._spawn())

    def close(self) -> None:
        """Terminate and reap every worker (idempotent; runs in finally)."""
        for handle in self.handles:
            self._shutdown_handle(handle)

    # -- scheduling ---------------------------------------------------------

    def submit(self, cells: List[Cell], attempt: int = 0) -> None:
        self.pending.append(_Job(list(cells), attempt))

    def _dispatch(self, handle: _WorkerHandle, job: _Job) -> bool:
        if not handle.process.is_alive():
            self._respawn(handle)
        job.job_id = self._next_job_id
        self._next_job_id += 1
        try:
            handle.conn.send((job.job_id, job.attempt, job.cells))
        except (BrokenPipeError, OSError):
            self._respawn(handle)
            return False
        handle.job = job
        telemetry.counter_add("pool.jobs")
        if self.policy.cell_timeout_s is not None:
            handle.deadline = (
                time.monotonic()
                + self.policy.cell_timeout_s * len(job.cells)
                + _DEADLINE_GRACE_S
            )
        else:
            handle.deadline = None
        return True

    def _accept(self, job: _Job, cell: Cell, result: Any) -> None:
        if self.validate is not None:
            try:
                self.validate(cell, result)
            except Exception as exc:
                self._job_failed(
                    _Job([cell], job.attempt), "invalid-result", exc=exc
                )
                return
        self.outcome.results[cell.cell_id] = result
        if self.on_result is not None:
            self.on_result(cell, result)

    def _job_failed(
        self,
        job: _Job,
        reason: str,
        exc: Optional[BaseException] = None,
        exception_type: str = "",
        message: str = "",
        traceback_text: str = "",
    ) -> None:
        if len(job.cells) > 1:
            # Isolate first: one poisoned cell must not consume its chunk
            # neighbours' retry budgets, so the chunk re-runs cell by cell
            # at the same attempt number.
            for cell in job.cells:
                self.pending.append(_Job([cell], job.attempt))
            return
        cell = job.cells[0]
        attempts_made = job.attempt + 1
        if attempts_made < self.policy.max_attempts:
            self.outcome.retries += 1
            telemetry.counter_add("pool.retries")
            delay = self.policy.backoff_s(attempts_made, self.rng)
            self.delayed.append(
                (time.monotonic() + delay, _Job(job.cells, job.attempt + 1))
            )
            return
        self.outcome.failures.append(
            FailureReport.from_exception(
                kind=self.kind,
                reason=reason,
                trace_index=cell.trace_index,
                trace_name=self.traces[cell.trace_index].name,
                config_text=format_config(cell.config).strip(),
                attempts=attempts_made,
                exc=exc,
                exception_type=exception_type,
                message=message,
                traceback_text=traceback_text,
                cell_id=cell.cell_id,
            )
        )

    def _handle_message(self, handle: _WorkerHandle, message) -> None:
        job = handle.job
        handle.job = None
        handle.deadline = None
        tag, job_id = message[0], message[1]
        if job is None or job_id != job.job_id:  # pragma: no cover - stale
            return
        if tag == "ok":
            _, _, results, delta, tele = message
            telemetry.absorb_worker(tele)
            hits, misses, evictions = delta
            memo.fold_worker_stats(hits, misses, evictions)
            folded = self.outcome.worker_memo
            self.outcome.worker_memo = (
                folded[0] + hits, folded[1] + misses, folded[2] + evictions
            )
            for cell, result in zip(job.cells, results):
                self._accept(job, cell, result)
        else:
            _, _, exc, exception_type, text, traceback_text, tele = message
            telemetry.absorb_worker(tele)
            self._job_failed(
                job,
                "exception",
                exc=exc,
                exception_type=exception_type,
                message=text,
                traceback_text=traceback_text,
            )

    def _handle_death(self, handle: _WorkerHandle) -> None:
        job = handle.job
        self._respawn(handle)
        if job is not None:
            self._job_failed(
                job,
                "worker-death",
                exception_type="WorkerDied",
                message=(
                    f"worker process died while evaluating "
                    f"{len(job.cells)} cell(s)"
                ),
            )

    def _handle_timeout(self, handle: _WorkerHandle) -> None:
        job = handle.job
        self.outcome.timeouts += 1
        telemetry.counter_add("pool.timeouts")
        self._respawn(handle)
        if job is not None:
            budget = (self.policy.cell_timeout_s or 0.0) * len(job.cells)
            self._job_failed(
                job,
                "timeout",
                exception_type="CellTimeout",
                message=(
                    f"{len(job.cells)} cell(s) exceeded the "
                    f"{budget:.3g}s wall-clock budget; worker killed"
                ),
            )

    # -- the loop -----------------------------------------------------------

    def run(self) -> ExecOutcome:
        while True:
            now = time.monotonic()
            if self.delayed:
                ready = [entry for entry in self.delayed if entry[0] <= now]
                if ready:
                    self.delayed = [e for e in self.delayed if e[0] > now]
                    self.pending.extend(job for _, job in ready)
            busy = [h for h in self.handles if h.job is not None]
            if not self.pending and not self.delayed and not busy:
                break
            for handle in self.handles:
                if handle.job is None and self.pending:
                    job = self.pending.popleft()
                    if not self._dispatch(handle, job):
                        self.pending.appendleft(job)
            busy = {h.conn: h for h in self.handles if h.job is not None}
            if not busy:
                if self.delayed and not self.pending:
                    next_ready = min(entry[0] for entry in self.delayed)
                    time.sleep(min(_POLL_S, max(0.0, next_ready - time.monotonic())))
                continue
            for conn in _connection_wait(list(busy), timeout=_POLL_S):
                handle = busy[conn]
                try:
                    message = handle.conn.recv()
                except (EOFError, OSError):
                    self._handle_death(handle)
                else:
                    self._handle_message(handle, message)
            now = time.monotonic()
            for handle in self.handles:
                if handle.job is None:
                    continue
                if handle.deadline is not None and now > handle.deadline:
                    self._handle_timeout(handle)
                elif not handle.process.is_alive():
                    self._handle_death(handle)
        return self.outcome


def _pool_context():
    """The multiprocessing context the sweep pool runs under.

    ``REPRO_SWEEP_CONTEXT`` selects the start method explicitly; unset
    prefers ``fork`` (cheapest, and required by compute callables that
    are not picklable) and falls back to the platform default where fork
    does not exist.  The trace-handle handoff makes the worker loop
    itself correct under any of them.
    """
    import multiprocessing

    from repro.core import envcfg

    method = envcfg.get("REPRO_SWEEP_CONTEXT")
    if method is not None:
        return multiprocessing.get_context(str(method))
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return multiprocessing.get_context()


def run_pooled(
    kind: str,
    compute: Callable[[Sequence[Trace], Cell], Any],
    chunks: Sequence[Sequence[Cell]],
    traces: Sequence[Trace],
    workers: int,
    policy: RetryPolicy,
    faults: Optional[FaultPlan] = None,
    validate: Optional[Callable[[Cell, Any], None]] = None,
    on_result: Optional[Callable[[Cell, Any], None]] = None,
) -> Optional[ExecOutcome]:
    """Evaluate ``chunks`` of cells over a supervised worker pool.

    Traces are exported to zero-copy handles once per call
    (:func:`repro.trace.store.export_traces`): store-backed traces ship
    as paths, heap traces as shared-memory segments owned by this
    process until the pool is done.  Workers -- including every respawn
    after a death, hang or kill -- resolve the handles instead of
    inheriting the arrays.

    Returns ``None`` when worker processes cannot be created at all (a
    sandbox forbidding process creation, say); the caller falls back to
    :func:`run_serial` with identical results.  Everything else --
    worker exceptions, hangs, deaths, invalid results -- is handled per
    cell and reported in the :class:`ExecOutcome`.
    """
    context = _pool_context()
    jobs = [list(chunk) for chunk in chunks if chunk]
    trace_handles, lease = export_traces(traces)
    supervisor = _Supervisor(
        kind, compute, traces, trace_handles, context, workers, policy,
        faults, validate, on_result,
    )
    try:
        supervisor.start(len(jobs))
    except (AttributeError, OSError, ValueError, ImportError, PermissionError):
        supervisor.close()
        lease.release()
        return None
    try:
        with telemetry.span(
            "pool.run", kind=kind, workers=workers, jobs=len(jobs)
        ):
            for job_cells in jobs:
                supervisor.submit(job_cells)
            return supervisor.run()
    finally:
        # Pool hygiene: a KeyboardInterrupt (or any exception) mid-sweep
        # must not leak worker processes or shared-memory segments.
        supervisor.close()
        lease.release()


def run_serial(
    kind: str,
    compute: Callable[[Sequence[Trace], Cell], Any],
    cells: Sequence[Cell],
    traces: Sequence[Trace],
    policy: RetryPolicy,
    faults: Optional[FaultPlan] = None,
    validate: Optional[Callable[[Cell, Any], None]] = None,
    on_result: Optional[Callable[[Cell, Any], None]] = None,
) -> ExecOutcome:
    """The in-process twin of :func:`run_pooled`.

    Same retries, fault injection, validation and streaming delivery; no
    wall-clock preemption (a serial cell cannot be killed from outside).
    """
    outcome = ExecOutcome()
    rng = policy.rng()
    with telemetry.span("serial.run", kind=kind, cells=len(cells)):
        _run_serial_cells(
            kind, compute, cells, traces, policy, faults, validate,
            on_result, outcome, rng,
        )
    return outcome


def _run_serial_cells(
    kind: str,
    compute: Callable[[Sequence[Trace], Cell], Any],
    cells: Sequence[Cell],
    traces: Sequence[Trace],
    policy: RetryPolicy,
    faults: Optional[FaultPlan],
    validate: Optional[Callable[[Cell, Any], None]],
    on_result: Optional[Callable[[Cell, Any], None]],
    outcome: ExecOutcome,
    rng: Any,
) -> None:
    for cell in cells:
        attempt = 0
        while True:
            reason = "exception"
            try:
                result = _evaluate_cell(
                    compute, traces, cell, attempt, faults, in_worker=False
                )
                if validate is not None:
                    reason = "invalid-result"
                    validate(cell, result)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                attempts_made = attempt + 1
                if attempts_made < policy.max_attempts:
                    outcome.retries += 1
                    telemetry.counter_add("pool.retries")
                    time.sleep(policy.backoff_s(attempts_made, rng))
                    attempt += 1
                    continue
                outcome.failures.append(
                    FailureReport.from_exception(
                        kind=kind,
                        reason=reason,
                        trace_index=cell.trace_index,
                        trace_name=traces[cell.trace_index].name,
                        config_text=format_config(cell.config).strip(),
                        attempts=attempts_made,
                        exc=exc,
                        cell_id=cell.cell_id,
                    )
                )
                break
            outcome.results[cell.cell_id] = result
            if on_result is not None:
                on_result(cell, result)
            break
