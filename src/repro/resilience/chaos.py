"""End-to-end chaos drill: sweep under injected faults, kill, resume.

This is the executable proof behind ``docs/resilience.md``::

    python -m repro.resilience.chaos --out /tmp/chaos

runs the same deterministic sweep three times:

1. **golden** -- a clean subprocess run (no faults) recording the grid
   digest an undisturbed sweep produces;
2. **chaos** -- a subprocess run with fault injection (``REPRO_FAULTS``),
   audit invariants (``REPRO_AUDIT=1``) and a checkpoint journal; the
   parent watches the journal grow and SIGKILLs the subprocess after a
   few cells have been checkpointed;
3. **resume** -- the same command with ``--resume``, still under faults,
   which restores the journaled cells and completes the rest.

The drill passes only if the resumed grid digest is byte-identical to
the golden one -- same event counts *and* same nanosecond totals -- and
every phase's artefacts (digests, journal, summary) are left in the
output directory for inspection or CI upload.

The digest is a sha256 over a canonical rendering of every cell of both
grids (functional event counts and timing nanosecond totals), so any
lost, duplicated, corrupted or reordered cell changes it.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import List

from repro.sim.config import LevelConfig, SystemConfig
from repro.trace.multiprogram import MultiprogramScheduler, ProcessSpec
from repro.trace.record import Trace
from repro.trace.workload import SyntheticWorkload
from repro.units import KB

#: Default fault mix for the drill: every recovery path gets exercised,
#: and the aggregate per-attempt failure probability is about 32%.
DEFAULT_FAULTS = "worker_raise:0.2,corrupt_result:0.1,worker_kill:0.05"

#: Retries for the chaos phases.  Injection draws are a pure function of
#: (seed, fault, cell, attempt), so with the default workload, faults and
#: seed the whole drill is deterministic: the worst cell fails 4
#: consecutive attempts, comfortably inside this budget.
CHAOS_RETRIES = "6"


def build_traces(records: int, count: int = 2) -> List[Trace]:
    """Deterministic multiprogramming traces (identical across runs)."""
    traces = []
    for t in range(count):
        processes = [
            ProcessSpec(
                name=f"p{i}",
                workload=SyntheticWorkload(
                    seed=1000 * t + 37 * i, address_base=i << 44
                ),
            )
            for i in range(1, 4)
        ]
        scheduler = MultiprogramScheduler(processes, switch_interval=4000, seed=t)
        traces.append(
            scheduler.trace(records, name=f"chaos{t}", warmup=records // 5)
        )
    return traces


def build_configs() -> List[SystemConfig]:
    """A small grid mixing functional and timing-only variation."""
    base = SystemConfig(
        levels=(
            LevelConfig(size_bytes=4 * KB, block_bytes=16, split=True,
                        cycle_cpu_cycles=1, write_hit_cycles=2),
            LevelConfig(size_bytes=64 * KB, block_bytes=32,
                        cycle_cpu_cycles=3, write_hit_cycles=2),
        )
    )
    configs = []
    for size in (2 * KB, 4 * KB, 8 * KB):
        sized = base.with_level(0, size_bytes=size)
        configs.append(sized)
        configs.append(sized.with_level(1, cycle_cpu_cycles=5))
    return configs


def grid_digest(functional_grid, timing_grid) -> str:
    """A canonical sha256 over every cell of both grids."""
    hasher = hashlib.sha256()
    for row in functional_grid:
        for cell in row:
            hasher.update(repr((
                cell.trace_name,
                cell.cpu_reads, cell.cpu_writes, cell.cpu_ifetches,
                tuple(
                    (s.reads, s.read_misses, s.writes, s.write_misses,
                     s.writebacks)
                    for s in cell.level_stats
                ),
                cell.memory_reads, cell.memory_writes,
            )).encode())
    for row in timing_grid:
        for cell in row:
            # repr of the float totals: byte-identical means
            # nanosecond-identical, the acceptance bar for resume.
            hasher.update(repr((
                cell.trace_name, cell.total_ns, cell.read_stall_ns,
                cell.write_stall_ns, cell.memory_reads, cell.memory_writes,
            )).encode())
    return hasher.hexdigest()


def _run_sweep(args) -> int:
    """Child phase: the actual sweep, optionally journaled/resumed."""
    from contextlib import nullcontext

    from repro.core.sweep import sweep_functional, sweep_timing
    from repro.resilience.journal import journaling

    traces = build_traces(args.records)
    configs = build_configs()
    context = (
        journaling(args.journal, resume=args.resume, name="chaos")
        if args.journal
        else nullcontext(None)
    )
    with context:
        functional_grid = sweep_functional(traces, configs)
        timing_grid = sweep_timing(traces, configs)
    digest = grid_digest(functional_grid, timing_grid)
    Path(args.digest_file).write_text(digest + "\n")
    print(f"digest {digest}")
    return 0


def _count_journal_cells(path: Path) -> int:
    if not path.exists():
        return 0
    count = 0
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                if '"t": "cell"' in line:
                    count += 1
    except OSError:
        return 0
    return count


def _child_command(args, journal: Path, digest_file: Path, resume: bool) -> List[str]:
    command = [
        sys.executable, "-m", "repro.resilience.chaos",
        "--phase", "sweep",
        "--records", str(args.records),
        "--digest-file", str(digest_file),
    ]
    if journal is not None:
        command += ["--journal", str(journal)]
    if resume:
        command += ["--resume"]
    return command


def _orchestrate(args) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    journal = out / "chaos.journal.jsonl"
    summary = {
        "faults": args.faults,
        "records": args.records,
        "kill_after_cells": args.kill_after,
    }

    clean_env = dict(os.environ)
    clean_env.pop("REPRO_FAULTS", None)
    clean_env["REPRO_AUDIT"] = "1"
    clean_env["PYTHONPATH"] = os.pathsep.join(
        p for p in [str(Path(__file__).resolve().parents[2]),
                    os.environ.get("PYTHONPATH", "")] if p
    )
    chaos_env = dict(clean_env)
    chaos_env["REPRO_FAULTS"] = args.faults
    chaos_env["REPRO_SWEEP_RETRIES"] = CHAOS_RETRIES
    if args.workers:
        chaos_env["REPRO_SWEEP_WORKERS"] = str(args.workers)

    print("[chaos] golden run (no faults)...")
    golden_file = out / "golden.digest"
    subprocess.run(
        _child_command(args, None, golden_file, resume=False),
        env=clean_env, check=True,
    )
    golden = golden_file.read_text().strip()

    print(f"[chaos] faulted run (REPRO_FAULTS={args.faults}), "
          f"killing after {args.kill_after} journaled cells...")
    chaos_digest = out / "chaos.digest"
    child = subprocess.Popen(
        _child_command(args, journal, chaos_digest, resume=False),
        env=chaos_env,
    )
    killed = False
    deadline = time.monotonic() + args.phase_timeout
    while child.poll() is None:
        if _count_journal_cells(journal) >= args.kill_after:
            child.send_signal(signal.SIGKILL)
            killed = True
            break
        if time.monotonic() > deadline:
            child.send_signal(signal.SIGKILL)
            child.wait()
            raise SystemExit("[chaos] FAIL: faulted run hung past the "
                             f"{args.phase_timeout}s phase timeout")
        time.sleep(0.02)
    child.wait()
    summary["killed_mid_run"] = killed
    summary["cells_at_kill"] = _count_journal_cells(journal)
    if killed:
        print(f"[chaos] killed child with {summary['cells_at_kill']} "
              f"cells journaled")
    else:
        print("[chaos] child finished before the kill threshold "
              "(still resuming to verify the journal)")

    print("[chaos] resumed run (faults still on)...")
    resumed_file = out / "resumed.digest"
    subprocess.run(
        _child_command(args, journal, resumed_file, resume=True),
        env=chaos_env, check=True, timeout=args.phase_timeout,
    )
    resumed = resumed_file.read_text().strip()

    summary["golden_digest"] = golden
    summary["resumed_digest"] = resumed
    summary["identical"] = resumed == golden
    (out / "summary.json").write_text(json.dumps(summary, indent=2) + "\n")
    if resumed != golden:
        print(f"[chaos] FAIL: resumed digest {resumed[:16]}... != "
              f"golden {golden[:16]}...")
        return 1
    print(f"[chaos] PASS: resumed grid identical to golden "
          f"({golden[:16]}...), artefacts in {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.chaos",
        description="Kill-and-resume chaos drill for the sweep executor.",
    )
    parser.add_argument("--out", type=Path, default=Path("chaos-out"),
                        help="artefact directory (journal, digests, summary)")
    parser.add_argument("--records", type=int, default=40_000,
                        help="records per trace (2 traces)")
    parser.add_argument("--faults", default=DEFAULT_FAULTS,
                        help="REPRO_FAULTS spec for the chaos phases")
    parser.add_argument("--kill-after", type=int, default=3,
                        help="SIGKILL the faulted run after this many "
                             "journaled cells")
    parser.add_argument("--workers", type=int, default=2,
                        help="REPRO_SWEEP_WORKERS for the chaos phases "
                             "(0 keeps the environment's setting)")
    parser.add_argument("--phase-timeout", type=float, default=600.0,
                        help="wall-clock limit per phase (hang detector)")
    # Child-phase plumbing (not for interactive use).
    parser.add_argument("--phase", choices=["sweep"], default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--journal", type=Path, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--resume", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--digest-file", type=Path, default=None,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.phase == "sweep":
        return _run_sweep(args)
    return _orchestrate(args)


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    sys.exit(main())
