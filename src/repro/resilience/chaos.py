"""End-to-end chaos drill: sweep under injected faults, kill, resume.

This is the executable proof behind ``docs/resilience.md``::

    python -m repro.resilience.chaos --out /tmp/chaos

runs the same deterministic sweep three times:

1. **golden** -- a clean subprocess run (no faults) recording the grid
   digest an undisturbed sweep produces;
2. **chaos** -- a subprocess run with fault injection (``REPRO_FAULTS``),
   audit invariants (``REPRO_AUDIT=1``), telemetry recording
   (``REPRO_TELEMETRY=1``) and a checkpoint journal; the parent watches
   the journal grow and SIGKILLs the subprocess after a few cells have
   been checkpointed, then proves the surviving telemetry sink is
   parseable (``mlcache doctor`` trims any torn tail -- partial
   telemetry is valid telemetry);
3. **resume** -- the same command with ``--resume``, still under faults,
   which restores the journaled cells and completes the rest.

The drill passes only if the resumed grid digest is byte-identical to
the golden one -- same event counts *and* same nanosecond totals -- and
every phase's artefacts (digests, journal, summary) are left in the
output directory for inspection or CI upload.

The digest is a sha256 over a canonical rendering of every cell of both
grids (functional event counts and timing nanosecond totals), so any
lost, duplicated, corrupted or reordered cell changes it.

``--storage`` runs the *storage* variant of the drill, the executable
proof behind the durable artifact layer
(:mod:`repro.resilience.integrity`): the sweep reads its traces through
the on-disk workload cache (``REPRO_TRACE_CACHE``), the faulted phase
adds the disk faults (``torn_write``/``enospc``/``rename_fail``/
``bitflip``) to the storm and is SIGKILLed mid-run, and then the parent
*vandalises* the survivors -- flips a bit inside a cached trace store,
deletes another, appends torn journal lines, plants an orphaned tmp file
and a stale lock -- before running ``mlcache doctor --fix`` and
resuming.  The drill passes only if the doctor repairs everything it
found (corrupt artifacts quarantined, never silently read), and the
resumed grid digest is still byte-identical to the fault-free golden
run.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import List

from repro.resilience.integrity import atomic_write_text
from repro.sim.config import LevelConfig, SystemConfig
from repro.trace.multiprogram import MultiprogramScheduler, ProcessSpec
from repro.trace.record import Trace
from repro.trace.workload import SyntheticWorkload
from repro.units import KB

#: Default fault mix for the drill: every recovery path gets exercised,
#: and the aggregate per-attempt failure probability is about 32%.
DEFAULT_FAULTS = "worker_raise:0.2,corrupt_result:0.1,worker_kill:0.05"

#: Retries for the chaos phases.  Injection draws are a pure function of
#: (seed, fault, cell, attempt), so with the default workload, faults and
#: seed the whole drill is deterministic: the worst cell fails 4
#: consecutive attempts, comfortably inside this budget.
CHAOS_RETRIES = "6"

#: Fault mix for the storage drill's storm phase: the four disk faults
#: hammer the trace-cache publish path (each failed or poisoned save
#: degrades to a heap trace or quarantines, never aborts) on top of a
#: lighter worker-fault mix.
DEFAULT_STORAGE_FAULTS = (
    "torn_write:0.3,enospc:0.2,rename_fail:0.2,bitflip:0.2,"
    "worker_raise:0.15,worker_kill:0.05"
)

#: Worker-fault-only mix for the storage drill's resume phase: recovery
#: still runs under duress, but the parent-side journal/doctor artifacts
#: it depends on are not being re-damaged while it verifies them.
RESUME_FAULTS = "worker_raise:0.15"


def build_traces(records: int, count: int = 2) -> List[Trace]:
    """Deterministic multiprogramming traces (identical across runs)."""
    traces = []
    for t in range(count):
        processes = [
            ProcessSpec(
                name=f"p{i}",
                workload=SyntheticWorkload(
                    seed=1000 * t + 37 * i, address_base=i << 44
                ),
            )
            for i in range(1, 4)
        ]
        scheduler = MultiprogramScheduler(processes, switch_interval=4000, seed=t)
        traces.append(
            scheduler.trace(records, name=f"chaos{t}", warmup=records // 5)
        )
    return traces


def build_configs() -> List[SystemConfig]:
    """A small grid mixing functional and timing-only variation."""
    base = SystemConfig(
        levels=(
            LevelConfig(size_bytes=4 * KB, block_bytes=16, split=True,
                        cycle_cpu_cycles=1, write_hit_cycles=2),
            LevelConfig(size_bytes=64 * KB, block_bytes=32,
                        cycle_cpu_cycles=3, write_hit_cycles=2),
        )
    )
    configs = []
    for size in (2 * KB, 4 * KB, 8 * KB):
        sized = base.with_level(0, size_bytes=size)
        configs.append(sized)
        configs.append(sized.with_level(1, cycle_cpu_cycles=5))
    return configs


def grid_digest(functional_grid, timing_grid) -> str:
    """A canonical sha256 over every cell of both grids."""
    hasher = hashlib.sha256()
    for row in functional_grid:
        for cell in row:
            hasher.update(repr((
                cell.trace_name,
                cell.cpu_reads, cell.cpu_writes, cell.cpu_ifetches,
                tuple(
                    (s.reads, s.read_misses, s.writes, s.write_misses,
                     s.writebacks)
                    for s in cell.level_stats
                ),
                cell.memory_reads, cell.memory_writes,
            )).encode())
    for row in timing_grid:
        for cell in row:
            # repr of the float totals: byte-identical means
            # nanosecond-identical, the acceptance bar for resume.
            hasher.update(repr((
                cell.trace_name, cell.total_ns, cell.read_stall_ns,
                cell.write_stall_ns, cell.memory_reads, cell.memory_writes,
            )).encode())
    return hasher.hexdigest()


def _run_sweep(args) -> int:
    """Child phase: the actual sweep, optionally journaled/resumed."""
    from contextlib import nullcontext

    from repro.core.sweep import sweep_functional, sweep_timing
    from repro.resilience.journal import journaling

    if args.suite:
        # The storage drill sweeps through the on-disk workload cache
        # (REPRO_TRACE_CACHE in the environment) so the trace-store
        # publish/verify/quarantine paths are in the line of fire.
        from repro.experiments.workloads import paper_trace_suite

        traces = paper_trace_suite(records=args.records, count=2)
    else:
        traces = build_traces(args.records)
    configs = build_configs()
    context = (
        journaling(args.journal, resume=args.resume, name="chaos")
        if args.journal
        else nullcontext(None)
    )
    with context:
        functional_grid = sweep_functional(traces, configs)
        timing_grid = sweep_timing(traces, configs)
    digest = grid_digest(functional_grid, timing_grid)
    atomic_write_text(Path(args.digest_file), digest + "\n")
    print(f"digest {digest}")
    return 0


def _count_journal_cells(path: Path) -> int:
    if not path.exists():
        return 0
    count = 0
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                if '"t": "cell"' in line:
                    count += 1
    except OSError:
        return 0
    return count


def _child_command(
    args, journal: Path, digest_file: Path, resume: bool, suite: bool = False
) -> List[str]:
    command = [
        sys.executable, "-m", "repro.resilience.chaos",
        "--phase", "sweep",
        "--records", str(args.records),
        "--digest-file", str(digest_file),
    ]
    if journal is not None:
        command += ["--journal", str(journal)]
    if resume:
        command += ["--resume"]
    if suite:
        command += ["--suite"]
    return command


def _clean_env() -> dict:
    """The fault-free child environment (audit on, src importable)."""
    env = dict(os.environ)
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_TRACE_CACHE", None)
    env["REPRO_AUDIT"] = "1"
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [str(Path(__file__).resolve().parents[2]),
                    os.environ.get("PYTHONPATH", "")] if p
    )
    return env


def _kill_when_journaled(child, journal: Path, kill_after: int,
                         phase_timeout: float) -> bool:
    """Watch the journal grow; SIGKILL the child at ``kill_after`` cells.

    Returns whether the kill landed (the child may finish first on tiny
    grids); a hang past ``phase_timeout`` aborts the drill.
    """
    killed = False
    deadline = time.monotonic() + phase_timeout
    while child.poll() is None:
        if _count_journal_cells(journal) >= kill_after:
            child.send_signal(signal.SIGKILL)
            killed = True
            break
        if time.monotonic() > deadline:
            child.send_signal(signal.SIGKILL)
            child.wait()
            raise SystemExit("[chaos] FAIL: faulted run hung past the "
                             f"{phase_timeout}s phase timeout")
        time.sleep(0.02)
    child.wait()
    return killed


def _orchestrate(args) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    journal = out / "chaos.journal.jsonl"
    summary = {
        "faults": args.faults,
        "records": args.records,
        "kill_after_cells": args.kill_after,
    }

    clean_env = _clean_env()
    chaos_env = dict(clean_env)
    chaos_env["REPRO_FAULTS"] = args.faults
    chaos_env["REPRO_SWEEP_RETRIES"] = CHAOS_RETRIES
    # The killed phase records telemetry so the drill can prove a
    # SIGKILLed sink is still usable (torn tail at worst).
    telemetry_sink = out / "chaos.telemetry.jsonl"
    chaos_env["REPRO_TELEMETRY"] = "1"
    chaos_env["REPRO_TELEMETRY_PATH"] = str(telemetry_sink)
    if args.workers:
        chaos_env["REPRO_SWEEP_WORKERS"] = str(args.workers)

    print("[chaos] golden run (no faults)...")
    golden_file = out / "golden.digest"
    subprocess.run(
        _child_command(args, None, golden_file, resume=False),
        env=clean_env, check=True,
    )
    golden = golden_file.read_text().strip()

    print(f"[chaos] faulted run (REPRO_FAULTS={args.faults}), "
          f"killing after {args.kill_after} journaled cells...")
    chaos_digest = out / "chaos.digest"
    child = subprocess.Popen(
        _child_command(args, journal, chaos_digest, resume=False),
        env=chaos_env,
    )
    killed = _kill_when_journaled(
        child, journal, args.kill_after, args.phase_timeout
    )
    summary["killed_mid_run"] = killed
    summary["cells_at_kill"] = _count_journal_cells(journal)
    if killed:
        print(f"[chaos] killed child with {summary['cells_at_kill']} "
              f"cells journaled")
    else:
        print("[chaos] child finished before the kill threshold "
              "(still resuming to verify the journal)")

    # Partial telemetry is valid telemetry: the doctor trims any torn
    # tail the kill left, and the sink must then parse cleanly.
    import dataclasses

    from repro.resilience import doctor as doctor_mod
    from repro.telemetry.export import read_sink

    tele_findings = doctor_mod.scan([telemetry_sink])
    doctor_mod.repair(tele_findings)
    summary["telemetry_findings"] = [
        dataclasses.asdict(f) for f in tele_findings
    ]
    tele_unfixed = [f for f in tele_findings if f.fixed is None]
    summary["telemetry_doctor_unfixed"] = len(tele_unfixed)
    sink_content = (
        read_sink(telemetry_sink) if telemetry_sink.exists() else None
    )
    summary["telemetry_sink_lines"] = (
        sink_content.total_lines if sink_content else 0
    )
    summary["telemetry_span_lines"] = (
        len(sink_content.spans) if sink_content else 0
    )
    print(f"[chaos] telemetry sink: {summary['telemetry_sink_lines']} "
          f"line(s), {summary['telemetry_span_lines']} span(s), "
          f"{len(tele_findings)} doctor finding(s), "
          f"{len(tele_unfixed)} unfixed")

    print("[chaos] resumed run (faults still on)...")
    resumed_file = out / "resumed.digest"
    subprocess.run(
        _child_command(args, journal, resumed_file, resume=True),
        env=chaos_env, check=True, timeout=args.phase_timeout,
    )
    resumed = resumed_file.read_text().strip()

    summary["golden_digest"] = golden
    summary["resumed_digest"] = resumed
    summary["identical"] = resumed == golden
    atomic_write_text(out / "summary.json", json.dumps(summary, indent=2) + "\n")
    failures = []
    if resumed != golden:
        failures.append(f"resumed digest {resumed[:16]}... != "
                        f"golden {golden[:16]}...")
    if tele_unfixed:
        failures.append(f"{len(tele_unfixed)} telemetry doctor "
                        f"finding(s) unfixed")
    if sink_content is None:
        failures.append("the killed run left no telemetry sink")
    elif sink_content.bad_lines or sink_content.torn_tail_bytes:
        failures.append("telemetry sink still damaged after doctor --fix "
                        f"({sink_content.bad_lines} bad line(s), "
                        f"{sink_content.torn_tail_bytes} torn byte(s))")
    if failures:
        for failure in failures:
            print(f"[chaos] FAIL: {failure}")
        return 1
    print(f"[chaos] PASS: resumed grid identical to golden "
          f"({golden[:16]}...), artefacts in {out}")
    return 0


def _vandalise(
    cache: Path, golden_cache: Path, journal: Path, dead_pid: int
) -> dict:
    """Damage the storm's survivors the way real failures would.

    Flips one bit inside a cached trace store's data pages (bit rot the
    header cannot reveal), deletes another store outright (resume must
    fall back to re-deriving it from the generator), appends a block of
    torn lines to the journal (to force it past the compaction
    threshold), and plants an orphaned tmp file plus a stale lock
    recording the dead child as holder.  If the storm's disk faults
    prevented every store save (each degraded to a heap trace), healthy
    stores are first copied in from the golden cache -- the cache key is
    deterministic, so the filenames match -- to guarantee the bitflip
    victim exists.  Returns what was done, for the drill summary.
    """
    import shutil

    acts: dict = {"bitflipped": None, "deleted": None}
    stores = sorted(cache.glob("*.mlt"))
    if not stores:
        for source in sorted(golden_cache.glob("*.mlt")):
            shutil.copy2(source, cache / source.name)
        stores = sorted(cache.glob("*.mlt"))
        acts["reseeded_from_golden"] = [p.name for p in stores]
    if stores:
        victim = stores[0]
        size = victim.stat().st_size
        # Deliberate vandalism: the drill corrupts artifacts in place so the
        # doctor has something to catch.
        with open(victim, "r+b") as handle:  # repro: noqa RPR006
            handle.seek(size - 9)  # inside the addresses segment
            byte = handle.read(1)
            handle.seek(size - 9)
            handle.write(bytes([byte[0] ^ 0x40]))
        acts["bitflipped"] = victim.name
    if len(stores) > 1:
        stores[1].unlink()
        acts["deleted"] = stores[1].name
    # Torn-line injection must bypass the journal's own append path.
    with open(journal, "a", encoding="utf-8") as handle:  # repro: noqa RPR006
        handle.write('{"t": "cell", "kind": "functional", "torn\n' * 80)
    acts["torn_journal_lines"] = 80
    # Fake crash residue: a stale tmp file the doctor must sweep up.
    (cache / f"vandal.mlt.tmp-{dead_pid}-0").write_bytes(b"\x00" * 128)  # repro: noqa RPR006
    from repro.resilience.integrity import boot_id

    # Stale lock from a dead pid -- planted raw on purpose.
    (cache / "vandal.lock").write_text(json.dumps(
        {"pid": dead_pid, "boot_id": boot_id(), "name": "vandal"}
    ) + "\n")  # repro: noqa RPR006
    return acts


def _orchestrate_storage(args) -> int:
    """The storage drill: disk-fault storm -> vandalism -> doctor -> resume."""
    import dataclasses

    from repro.resilience import doctor as doctor_mod

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    cache = out / "storage-cache"
    journal = out / "storage.journal.jsonl"
    faults = (
        args.faults if args.faults != DEFAULT_FAULTS else DEFAULT_STORAGE_FAULTS
    )
    summary = {
        "drill": "storage",
        "faults": faults,
        "records": args.records,
        "kill_after_cells": args.kill_after,
    }

    clean_env = _clean_env()
    golden_env = dict(clean_env)
    golden_env["REPRO_TRACE_CACHE"] = str(out / "golden-cache")
    storm_env = dict(clean_env)
    storm_env["REPRO_TRACE_CACHE"] = str(cache)
    storm_env["REPRO_FAULTS"] = faults
    storm_env["REPRO_SWEEP_RETRIES"] = CHAOS_RETRIES
    resume_env = dict(storm_env)
    resume_env["REPRO_FAULTS"] = RESUME_FAULTS
    if args.workers:
        storm_env["REPRO_SWEEP_WORKERS"] = str(args.workers)
        resume_env["REPRO_SWEEP_WORKERS"] = str(args.workers)

    print("[storage] golden run (no faults, pristine cache)...")
    golden_file = out / "golden.digest"
    subprocess.run(
        _child_command(args, None, golden_file, resume=False, suite=True),
        env=golden_env, check=True,
    )
    golden = golden_file.read_text().strip()

    print(f"[storage] disk-fault storm (REPRO_FAULTS={faults}), "
          f"killing after {args.kill_after} journaled cells...")
    child = subprocess.Popen(
        _child_command(args, journal, out / "storm.digest", resume=False,
                       suite=True),
        env=storm_env,
    )
    killed = _kill_when_journaled(
        child, journal, args.kill_after, args.phase_timeout
    )
    summary["killed_mid_run"] = killed
    summary["cells_at_kill"] = _count_journal_cells(journal)
    print(f"[storage] storm over ({summary['cells_at_kill']} cells "
          f"journaled); vandalising survivors...")
    summary["vandalism"] = _vandalise(
        cache, out / "golden-cache", journal, dead_pid=child.pid
    )

    # The killed child's pool workers share its journal-lock file
    # description until they notice the reparent and exit; give them a
    # moment so the doctor sees a stale lock, not a held one.
    from repro.resilience.integrity import probe_lock

    lock_path = journal.with_name(journal.name + ".lock")
    orphan_deadline = time.monotonic() + 15.0
    while (probe_lock(lock_path) == "held"
           and time.monotonic() < orphan_deadline):
        time.sleep(0.1)

    print("[storage] mlcache doctor --fix over the wreckage...")
    findings = doctor_mod.scan([out])  # the cache dir nests under out
    doctor_mod.repair(findings)
    summary["doctor_findings"] = [dataclasses.asdict(f) for f in findings]
    unfixed = [
        f for f in findings if f.fixed is None and f.kind != "held_lock"
    ]
    summary["doctor_unfixed"] = len(unfixed)
    for finding in findings:
        print(f"[storage]   {finding.fixed or 'UNFIXED'}: "
              f"{finding.kind} {finding.path}")

    print("[storage] resumed run (worker faults only)...")
    resumed_file = out / "resumed.digest"
    subprocess.run(
        _child_command(args, journal, resumed_file, resume=True, suite=True),
        env=resume_env, check=True, timeout=args.phase_timeout,
    )
    resumed = resumed_file.read_text().strip()

    quarantined = sorted(
        str(p.relative_to(out))
        for p in out.rglob("quarantine/*")
        if not p.name.endswith(".reason.json")
    )
    summary["quarantined"] = quarantined
    summary["golden_digest"] = golden
    summary["resumed_digest"] = resumed
    summary["identical"] = resumed == golden
    atomic_write_text(
        out / "storage-summary.json",
        json.dumps(summary, indent=2, sort_keys=True) + "\n",
    )
    failures = []
    if resumed != golden:
        failures.append(f"resumed digest {resumed[:16]}... != golden "
                        f"{golden[:16]}...")
    if unfixed:
        failures.append(f"{len(unfixed)} doctor finding(s) unfixed")
    if not quarantined:
        failures.append("nothing was quarantined (the bitflipped store "
                        "must never be silently read)")
    if failures:
        for failure in failures:
            print(f"[storage] FAIL: {failure}")
        return 1
    print(f"[storage] PASS: doctor repaired {len(findings)} finding(s), "
          f"{len(quarantined)} artifact(s) quarantined, resumed grid "
          f"identical to golden ({golden[:16]}...), artefacts in {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.chaos",
        description="Kill-and-resume chaos drill for the sweep executor.",
    )
    parser.add_argument("--out", type=Path, default=Path("chaos-out"),
                        help="artefact directory (journal, digests, summary)")
    parser.add_argument("--records", type=int, default=40_000,
                        help="records per trace (2 traces)")
    parser.add_argument("--faults", default=DEFAULT_FAULTS,
                        help="REPRO_FAULTS spec for the chaos phases")
    parser.add_argument("--kill-after", type=int, default=3,
                        help="SIGKILL the faulted run after this many "
                             "journaled cells")
    parser.add_argument("--workers", type=int, default=2,
                        help="REPRO_SWEEP_WORKERS for the chaos phases "
                             "(0 keeps the environment's setting)")
    parser.add_argument("--phase-timeout", type=float, default=600.0,
                        help="wall-clock limit per phase (hang detector)")
    parser.add_argument("--storage", action="store_true",
                        help="run the storage drill instead: disk-fault "
                             "storm through the on-disk trace cache, "
                             "vandalism, mlcache doctor --fix, resume")
    # Child-phase plumbing (not for interactive use).
    parser.add_argument("--phase", choices=["sweep"], default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--journal", type=Path, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--resume", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--digest-file", type=Path, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--suite", action="store_true",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.phase == "sweep":
        return _run_sweep(args)
    if args.storage:
        return _orchestrate_storage(args)
    return _orchestrate(args)


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    sys.exit(main())
