"""Crash-tolerant sweep execution.

The paper's results are all produced by large design-space sweeps; at
production scale those sweeps must survive faults instead of restarting.
This package supplies the three layers the sweep executor
(:mod:`repro.core.sweep`) builds on:

* :mod:`repro.resilience.journal` -- an append-only, per-cell-fsynced
  JSONL checkpoint journal keyed by the memoisation keys of
  :mod:`repro.sim.memo`, so an interrupted sweep resumes exactly where it
  stopped and produces a grid identical to an uninterrupted run.
* :mod:`repro.resilience.executor` -- a supervised worker pool with
  per-cell fault isolation: bounded retries with exponential backoff and
  jitter, per-cell wall-clock timeouts, automatic worker re-creation
  after a death or hang, and graceful degradation to a partial grid plus
  structured :class:`~repro.resilience.policy.FailureReport` records.
* :mod:`repro.resilience.faults` -- a seeded probabilistic
  fault-injection harness (``REPRO_FAULTS``) used by the test suite and
  the CI chaos job to prove every recovery path.
* :mod:`repro.resilience.integrity` -- the durable artifact layer:
  atomic writes (tmp + fsync + rename) for every trusted file, corrupt-
  artifact quarantine, and pid+boot-id advisory locks for concurrent
  sweeps.  :mod:`repro.resilience.doctor` is its offline repair CLI
  (``mlcache doctor``).

See ``docs/resilience.md`` for the knobs, formats and grammar.
"""

from repro.resilience.faults import FaultPlan, InjectedFault
from repro.resilience.integrity import (
    AdvisoryLock,
    LockHeldError,
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    quarantine,
)
from repro.resilience.journal import SweepJournal, current_journal, journaling
from repro.resilience.policy import FailureReport, RetryPolicy, SweepFailure

__all__ = [
    "AdvisoryLock",
    "FailureReport",
    "FaultPlan",
    "InjectedFault",
    "LockHeldError",
    "RetryPolicy",
    "SweepFailure",
    "SweepJournal",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_writer",
    "current_journal",
    "journaling",
    "quarantine",
]
