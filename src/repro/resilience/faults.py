"""Seeded probabilistic fault injection for sweep workers.

Gated by the ``REPRO_FAULTS`` environment knob, whose grammar is a
comma-separated list of ``fault:probability`` pairs::

    REPRO_FAULTS="worker_raise:0.2,worker_hang:0.05,corrupt_result:0.1"

Faults:

* ``worker_raise`` -- the cell raises :class:`InjectedFault` before
  simulating (exercises retry-then-succeed and retry exhaustion).
* ``worker_hang`` -- the cell sleeps ``REPRO_FAULTS_HANG_S`` seconds
  (default 30) before simulating (exercises per-cell timeouts and the
  kill-and-requeue path; on the serial path the sleep simply elapses).
* ``worker_kill`` -- the worker process SIGKILLs itself mid-cell
  (exercises worker-death detection and pool re-creation; degraded to a
  raise on the serial path, which has no expendable process).
* ``corrupt_result`` -- the cell completes but its counters are
  perturbed in a way the audit invariants of :mod:`repro.audit` must
  catch (run chaos workloads with ``REPRO_AUDIT=1``).

Disk faults (consumed by the atomic-write primitive of
:mod:`repro.resilience.integrity`, not by the cell evaluator):

* ``torn_write`` -- the temporary file is truncated mid-payload and the
  write raises, modelling a crash between ``write`` and ``rename``;
* ``enospc`` -- the write raises ``OSError(ENOSPC)`` after a partial
  payload, modelling a full disk;
* ``rename_fail`` -- the payload lands completely but the commit rename
  raises, leaving an orphaned ``.tmp-`` file;
* ``bitflip`` -- one bit of the payload is silently flipped before the
  commit, modelling bit rot that only digest verification can catch.

Injection is *deterministic*: whether fault ``f`` fires for a given cell
on a given attempt is a pure function of ``(REPRO_FAULTS_SEED, f, cell
signature, attempt)``, hashed to a uniform draw.  The pattern is
therefore reproducible across runs and independent of worker scheduling,
while retries of the same cell still get fresh draws.  (Disk faults use
a per-process write sequence number as the attempt, so repeated writes
to the same path also get fresh draws.)
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Environment knobs (registered in :mod:`repro.core.envcfg`).
FAULTS_ENV = "REPRO_FAULTS"
SEED_ENV = "REPRO_FAULTS_SEED"
HANG_ENV = "REPRO_FAULTS_HANG_S"

#: Disk faults, applied inside the atomic-write primitive
#: (:mod:`repro.resilience.integrity`) rather than around cell
#: evaluation.
DISK_FAULT_KINDS = ("torn_write", "enospc", "rename_fail", "bitflip")

#: Recognised fault names.
FAULT_KINDS = (
    "worker_raise", "worker_hang", "worker_kill", "corrupt_result",
) + DISK_FAULT_KINDS

#: Defaults mirrored from the envcfg registry (kept as module constants
#: for the :meth:`FaultPlan.parse` signature, which is env-independent).
_DEFAULT_SEED = 20240613
_DEFAULT_HANG_S = 30.0


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault-injection harness."""


def _uniform_draw(seed: int, fault: str, signature: str, attempt: int) -> float:
    """A deterministic uniform [0, 1) draw for one injection decision."""
    digest = hashlib.sha256(
        f"{seed}|{fault}|{signature}|{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """Parsed injection rates plus the seed that makes them reproducible."""

    rates: Tuple[Tuple[str, float], ...]
    seed: int = _DEFAULT_SEED
    hang_seconds: float = _DEFAULT_HANG_S

    @classmethod
    def parse(
        cls,
        spec: str,
        seed: int = _DEFAULT_SEED,
        hang_seconds: float = _DEFAULT_HANG_S,
    ) -> Optional["FaultPlan"]:
        """Parse the ``fault:prob,...`` grammar; ``None`` for an empty spec."""
        spec = (spec or "").strip()
        if not spec:
            return None
        rates: Dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if ":" not in part:
                raise ValueError(
                    f"{FAULTS_ENV}: expected fault:probability, got {part!r}"
                )
            name, prob_text = part.split(":", 1)
            name = name.strip()
            if name not in FAULT_KINDS:
                raise ValueError(
                    f"{FAULTS_ENV}: unknown fault {name!r} "
                    f"(known: {', '.join(FAULT_KINDS)})"
                )
            try:
                prob = float(prob_text)
            except ValueError:
                raise ValueError(
                    f"{FAULTS_ENV}: unparseable probability {prob_text!r} "
                    f"for {name}"
                ) from None
            if not 0.0 <= prob <= 1.0:
                raise ValueError(
                    f"{FAULTS_ENV}: probability for {name} must be in "
                    f"[0, 1], got {prob}"
                )
            rates[name] = prob
        if not rates:
            return None
        return cls(
            rates=tuple(sorted(rates.items())),
            seed=seed,
            hang_seconds=hang_seconds,
        )

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        # Imported lazily: this module is pulled in while repro.core's
        # package init is still running, so a top-level envcfg import
        # would close an import cycle.
        from repro.core import envcfg

        return cls.parse(
            envcfg.get(FAULTS_ENV),
            seed=envcfg.get(SEED_ENV),
            hang_seconds=envcfg.get(HANG_ENV),
        )

    @property
    def spec(self) -> str:
        """Render back to the grammar (manifests record this)."""
        return ",".join(f"{name}:{prob:g}" for name, prob in self.rates)

    def rate(self, fault: str) -> float:
        for name, prob in self.rates:
            if name == fault:
                return prob
        return 0.0

    def decide(self, fault: str, signature: str, attempt: int) -> bool:
        """Whether ``fault`` fires for this (cell, attempt) -- deterministic."""
        rate = self.rate(fault)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return _uniform_draw(self.seed, fault, signature, attempt) < rate

    def inject_before(self, signature: str, attempt: int, in_worker: bool) -> None:
        """Apply pre-simulation faults (kill, hang, raise) for one cell."""
        if self.decide("worker_kill", signature, attempt):
            if in_worker:
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedFault(
                f"worker_kill injected (serial surrogate) for {signature} "
                f"attempt {attempt}"
            )
        if self.decide("worker_hang", signature, attempt):
            time.sleep(self.hang_seconds)
        if self.decide("worker_raise", signature, attempt):
            raise InjectedFault(
                f"worker_raise injected for {signature} attempt {attempt}"
            )

    def corrupt_after(self, signature: str, attempt: int, result):
        """Return ``result``, possibly replaced by a corrupted copy.

        The corruption breaks a conservation law -- a phantom L1 read
        (violating the CPU-boundary law) for count results, plus a torn
        time decomposition for timing results -- so ``REPRO_AUDIT=1``
        runs reject it at sweep intake.  For a stack-distance grid
        result (a bundle of member results) the first member is
        corrupted, modelling a histogram gone wrong for one derived
        associativity.  The copy leaves the original (and anything it
        shares, like memo cache payloads) untouched.
        """
        if not self.decide("corrupt_result", signature, attempt):
            return result
        if hasattr(result, "results") and not hasattr(result, "level_stats"):
            (ways, first), rest = result.results[0], result.results[1:]
            corrupted_member = self.corrupt_after(signature, attempt, first)
            if corrupted_member is first:  # pragma: no cover - decide is stable
                return result
            return dataclasses.replace(
                result, results=((ways, corrupted_member),) + tuple(rest)
            )
        stats = list(result.level_stats)
        stats[0] = dataclasses.replace(
            stats[0],
            reads=stats[0].reads + 1,
            read_misses=stats[0].read_misses + 1,
        )
        corrupted = dataclasses.replace(result, level_stats=stats)
        if hasattr(corrupted, "total_ns"):
            corrupted = dataclasses.replace(
                corrupted, total_ns=corrupted.total_ns + max(1.0, 1e-3 * corrupted.total_ns)
            )
        return corrupted


def cell_signature(kind: str, trace_index: int, projection) -> str:
    """A stable identity for one sweep cell, independent of scheduling.

    Hashing ``repr(projection)`` keeps the signature short while staying
    deterministic across processes and runs (the projection contains only
    ints, floats, bools, strings and enums with stable reprs).
    """
    digest = hashlib.sha256(repr(projection).encode()).hexdigest()[:16]
    return f"{kind}:{trace_index}:{digest}"
