"""``mlcache doctor``: scan artifact directories, report damage, repair.

The durable artifact layer (:mod:`repro.resilience.integrity`) makes
normal operation crash-safe, but crashes still leave *residue* -- an
orphaned ``.tmp-`` file from a rename that never committed, a stale lock
record from a SIGKILLed sweep, a journal bloated with superseded cells
-- and hardware can rot bytes no crash discipline prevents.  The doctor
is the offline sweep over that residue:

* **Trace stores** (``*.mlt``): header parse + full per-segment digest
  verification.  Corrupt stores are quarantined on ``--fix`` (the
  workload cache rebuilds them on next use; a corrupt store is *never*
  deleted, and never read again from its poisoned path).
* **Checkpoint journals** (``*.journal.jsonl``): live/dead cell counts
  via the same torn-line/checksum rules resume uses.  ``--fix``
  compacts journals whose dead records outnumber live cells.
* **JSON artifacts** (``*.json``): parseability.  Unparseable manifests
  and summaries are quarantined on ``--fix`` (atomic writes make these
  impossible to tear going forward; damage means bit rot or a legacy
  writer).
* **Telemetry sinks** (``*.telemetry.jsonl``): the span/counter stream
  :mod:`repro.telemetry` appends during a sweep.  A SIGKILL mid-write
  leaves a torn final line; ``--fix`` trims the sink to its longest
  clean prefix of complete JSON lines (partial telemetry is valid
  telemetry -- the tools already tolerate it, trimming just makes the
  file exactly clean).
* **Atomic-write orphans** (``*.tmp-*``): always junk by construction
  -- a committed write renames its tmp away.  Removed on ``--fix``.
* **Locks** (``*.lock``): classified via flock probe + holder record as
  held (a live sweep -- left alone), stale (holder died; removed on
  ``--fix``) or free residue (harmless, ignored).

Quarantine directories are never descended into.  Exit status: 0 when
the tree is healthy (or everything found was fixed), 1 when issues
remain.  ``--json`` emits the findings machine-readably; CI runs the
doctor over the repo's own ``results/`` as a smoke gate.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional

from repro.resilience.integrity import (
    QUARANTINE_DIR,
    LockHeldError,
    holder_record,
    is_tmp_artifact,
    probe_lock,
    quarantine,
)

__all__ = ["Finding", "scan", "repair", "main"]


@dataclass
class Finding:
    """One problem (or fix) the doctor has to report."""

    path: str
    #: corrupt_store | journal_bloat | corrupt_json | telemetry_torn |
    #: orphan_tmp | stale_lock | held_lock | unreadable
    kind: str
    detail: str
    #: Whether ``--fix`` knows a repair for this finding.
    fixable: bool = True
    #: Action taken by ``--fix`` (``quarantined``/``compacted``/
    #: ``trimmed``/``removed``), or ``None`` when unfixed.
    fixed: Optional[str] = None


def _walk(root: Path) -> Iterator[Path]:
    """Every file under ``root``, skipping quarantine directories."""
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        if QUARANTINE_DIR in path.parent.parts:
            continue
        yield path


def _journal_health(path: Path) -> tuple:
    """(live, dead) cell counts using resume's own tolerance rules."""
    # Local import to reuse the exact checksum logic.
    from repro.resilience.journal import _payload_checksum

    live: dict = {}
    dead = 0
    for line in path.read_text(encoding="utf-8", errors="replace").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            dead += 1
            continue
        if not isinstance(record, dict) or record.get("t") != "cell":
            continue
        payload_text = json.dumps(record.get("payload"), sort_keys=True)
        if record.get("sum") != _payload_checksum(payload_text):
            dead += 1
            continue
        if record.get("key") in live:
            dead += 1
        live[record.get("key")] = True
    return len(live), dead


def _telemetry_health(path: Path) -> tuple:
    """(good, trimmed, keep_bytes) for a telemetry sink.

    ``good`` counts the longest prefix of newline-terminated JSON
    object lines; ``trimmed`` counts everything after it (unparseable
    lines and a torn, unterminated tail); ``keep_bytes`` is where
    ``--fix`` truncates to leave exactly the clean prefix.
    """
    data = path.read_bytes()
    good = trimmed = 0
    keep = offset = 0
    clean = True
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            trimmed += 1  # torn tail: the writer died mid-line
            break
        line = data[offset:newline]
        offset = newline + 1
        try:
            parsed = json.loads(line.decode("utf-8"))
            ok = isinstance(parsed, dict) and "k" in parsed
        except (json.JSONDecodeError, UnicodeDecodeError):
            ok = False
        if ok and clean:
            good += 1
            keep = offset
        else:
            # First bad line ends the clean prefix; later lines --
            # even parseable ones -- go with it (per-line flushing
            # means mid-file damage is bit rot, not a crash, so the
            # whole suffix is suspect).
            clean = False
            trimmed += 1
    return good, trimmed, keep


def _examine(path: Path) -> Optional[Finding]:
    name = path.name
    if is_tmp_artifact(path):
        return Finding(
            str(path), "orphan_tmp",
            "orphaned atomic-write temporary (a committed write renames "
            "its tmp away; this one's writer died first)",
        )
    if name.endswith(".lock"):
        state = probe_lock(path)
        if state == "held":
            holder = holder_record(path) or {}
            return Finding(
                str(path), "held_lock",
                f"lock held by live pid {holder.get('pid')} "
                f"({holder.get('name') or 'unnamed'}) -- not an error, "
                f"another sweep is running",
                fixable=False,
            )
        if state == "stale":
            holder = holder_record(path) or {}
            return Finding(
                str(path), "stale_lock",
                f"holder pid {holder.get('pid')} is dead "
                f"(boot {str(holder.get('boot_id'))[:8]}); safe to remove",
            )
        return None
    if name.endswith(".mlt"):
        from repro.trace.store import StoreCorruptError, TraceStore

        try:
            TraceStore.open(path, verify=True)
        except StoreCorruptError as error:
            return Finding(str(path), "corrupt_store", str(error))
        except ValueError as error:  # unsupported version: report, no fix
            return Finding(str(path), "unreadable", str(error), fixable=False)
        except OSError as error:
            return Finding(str(path), "unreadable", str(error), fixable=False)
        return None
    if name.endswith(".journal.jsonl"):
        try:
            live, dead = _journal_health(path)
        except OSError as error:
            return Finding(str(path), "unreadable", str(error), fixable=False)
        if dead and dead >= max(1, live):
            return Finding(
                str(path), "journal_bloat",
                f"{dead} dead records vs {live} live cells "
                f"(torn lines, checksum failures, superseded duplicates); "
                f"compaction will drop them",
            )
        return None
    if name.endswith(".telemetry.jsonl"):
        try:
            good, trimmed, _ = _telemetry_health(path)
        except OSError as error:
            return Finding(str(path), "unreadable", str(error), fixable=False)
        if trimmed:
            return Finding(
                str(path), "telemetry_torn",
                f"{trimmed} torn/unparseable trailing line(s) after "
                f"{good} clean line(s); trimming keeps the clean prefix",
            )
        return None
    if name.endswith(".json"):
        try:
            json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            return Finding(
                str(path), "corrupt_json", f"unparseable JSON: {error}"
            )
        except OSError as error:
            return Finding(str(path), "unreadable", str(error), fixable=False)
        return None
    return None


def scan(roots: List[Path]) -> List[Finding]:
    """Examine every artifact under ``roots``; one finding per problem."""
    findings: List[Finding] = []
    for root in roots:
        if not root.exists():
            continue
        for path in _walk(root):
            finding = _examine(path)
            if finding is not None:
                findings.append(finding)
    return findings


def repair(findings: List[Finding]) -> None:
    """Apply the known repair for each fixable finding, in place."""
    for finding in findings:
        if not finding.fixable:
            continue
        path = Path(finding.path)
        try:
            if finding.kind in ("corrupt_store", "corrupt_json"):
                if quarantine(path, finding.detail) is not None:
                    finding.fixed = "quarantined"
            elif finding.kind == "journal_bloat":
                from repro.resilience.journal import SweepJournal

                journal = SweepJournal(path, resume=True)
                try:
                    # Resume may have auto-compacted already; compact()
                    # is then a cheap no-op rewrite of live cells.
                    journal.compact()
                finally:
                    journal.close()
                finding.fixed = "compacted"
            elif finding.kind == "telemetry_torn":
                _, _, keep = _telemetry_health(path)
                with open(path, "r+b") as handle:  # repro: noqa RPR006
                    handle.truncate(keep)
                finding.fixed = "trimmed"
            elif finding.kind in ("orphan_tmp", "stale_lock"):
                path.unlink(missing_ok=True)
                finding.fixed = "removed"
        except (OSError, LockHeldError) as error:
            # Fix failed (e.g. a sweep grabbed the journal between scan
            # and repair); leave the finding open rather than crash.
            finding.detail += f" (fix failed: {error})"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mlcache doctor",
        description=(
            "Scan artifact directories (trace stores, journals, "
            "manifests, locks, tmp files) for corruption and crash "
            "residue; repair with --fix."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, default=None,
        help="directories or files to scan (default: results/ and the "
        "workload trace cache, when present)",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="repair what can be repaired: quarantine corrupt stores and "
        "JSON, compact bloated journals, trim torn telemetry sinks, "
        "remove orphaned tmp files and stale locks",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as JSON on stdout",
    )
    args = parser.parse_args(argv)

    roots = list(args.paths or [])
    if not roots:
        roots = [Path("results")]
        from repro.experiments.workloads import trace_cache_dir

        cache = trace_cache_dir()
        if cache is not None:
            roots.append(cache)
    findings = scan(roots)
    if args.fix:
        repair(findings)

    unfixed = [
        f for f in findings
        if f.fixed is None and f.kind != "held_lock"
    ]
    if args.as_json:
        print(json.dumps(
            {
                "roots": [str(root) for root in roots],
                "findings": [dataclasses.asdict(f) for f in findings],
                "unfixed": len(unfixed),
            },
            indent=2, sort_keys=True,
        ))
    else:
        for finding in findings:
            status = finding.fixed or (
                "info" if not finding.fixable or finding.kind == "held_lock"
                else "UNFIXED"
            )
            print(f"[{status}] {finding.kind}: {finding.path}")
            print(f"    {finding.detail}")
        scanned = ", ".join(str(root) for root in roots)
        if not findings:
            print(f"doctor: scanned {scanned}: all artifacts healthy")
        else:
            print(
                f"doctor: scanned {scanned}: {len(findings)} finding(s), "
                f"{len(unfixed)} unfixed"
                + ("" if args.fix else " (re-run with --fix to repair)")
            )
    return 1 if unfixed else 0


if __name__ == "__main__":
    sys.exit(main())
