"""Retry policy and structured failure reporting for resilient sweeps.

A cell that fails -- a worker exception, a wall-clock timeout, a dead
worker process, or a result the audit invariants reject -- is retried
with exponential backoff and jitter up to a bounded attempt budget.
When the budget is exhausted the cell becomes a
:class:`FailureReport`: the sweep degrades to a partial grid (or
re-raises, the default) but the failure is never silent.

Knobs (see ``docs/resilience.md``):

* ``REPRO_SWEEP_RETRIES`` -- retries per cell after the first attempt
  (default 2, so 3 attempts total).  ``0`` disables retrying.
* ``REPRO_SWEEP_TIMEOUT`` -- per-cell wall-clock budget in seconds
  (float).  Unset disables timeouts.  Enforced on the pooled path, where
  a hung worker can be killed and replaced; the serial path cannot
  preempt a running simulation.
"""

from __future__ import annotations

import random
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Environment knobs (registered in :mod:`repro.core.envcfg`).
RETRIES_ENV = "REPRO_SWEEP_RETRIES"
TIMEOUT_ENV = "REPRO_SWEEP_TIMEOUT"

#: Backoff shape: ``base * factor**attempt * (1 + U(0, jitter))``, capped.
_BACKOFF_BASE_S = 0.05
_BACKOFF_FACTOR = 2.0
_BACKOFF_JITTER = 0.25
_BACKOFF_CAP_S = 2.0


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before a cell is declared failed."""

    #: Total attempts per cell (first try + retries); at least 1.
    max_attempts: int = 3
    #: Per-cell wall-clock budget in seconds; ``None`` disables timeouts.
    cell_timeout_s: Optional[float] = None
    #: Seed for backoff jitter (deterministic per executor instance).
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ValueError("cell_timeout_s must be positive")

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        # Imported lazily: this module is pulled in while repro.core's
        # package init is still running, so a top-level envcfg import
        # would close an import cycle.
        from repro.core import envcfg

        return cls(
            max_attempts=envcfg.get(RETRIES_ENV) + 1,
            cell_timeout_s=envcfg.get(TIMEOUT_ENV),
        )

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt`` (1-based retries)."""
        base = _BACKOFF_BASE_S * (_BACKOFF_FACTOR ** max(0, attempt - 1))
        return min(_BACKOFF_CAP_S, base * (1.0 + rng.uniform(0, _BACKOFF_JITTER)))

    def rng(self) -> random.Random:
        return random.Random(self.jitter_seed)


@dataclass
class FailureReport:
    """One permanently-failed sweep cell, with everything needed to act.

    ``reason`` is one of ``"exception"`` (the cell raised, in a worker or
    serially), ``"timeout"`` (the cell exceeded ``REPRO_SWEEP_TIMEOUT``
    and its worker was killed), ``"worker-death"`` (the worker process
    died while holding the cell) or ``"invalid-result"`` (the returned
    result violated the audit invariants -- e.g. an injected
    corruption).
    """

    kind: str  # "functional" or "timing"
    reason: str
    trace_index: int
    trace_name: str
    config_text: str
    attempts: int
    #: Position in the batch handed to the executor; lets the sweep map a
    #: failure back to its grid cell.  ``-1`` when unknown.
    cell_id: int = -1
    exception_type: str = ""
    message: str = ""
    traceback: str = ""
    #: The original exception object when it survived pickling; lets the
    #: default all-or-nothing mode re-raise exactly what the worker raised.
    exception: Optional[BaseException] = field(default=None, repr=False)
    wall_seconds: float = 0.0

    @classmethod
    def from_exception(
        cls,
        kind: str,
        reason: str,
        trace_index: int,
        trace_name: str,
        config_text: str,
        attempts: int,
        exc: Optional[BaseException],
        exception_type: str = "",
        message: str = "",
        traceback_text: str = "",
        started: Optional[float] = None,
        cell_id: int = -1,
    ) -> "FailureReport":
        if exc is not None:
            exception_type = exception_type or type(exc).__name__
            message = message or str(exc)
            if not traceback_text:
                traceback_text = "".join(
                    traceback_module.format_exception(type(exc), exc, exc.__traceback__)
                )
        return cls(
            kind=kind,
            reason=reason,
            trace_index=trace_index,
            trace_name=trace_name,
            config_text=config_text,
            attempts=attempts,
            cell_id=cell_id,
            exception_type=exception_type,
            message=message,
            traceback=traceback_text,
            exception=exc,
            wall_seconds=(time.monotonic() - started) if started else 0.0,
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-native rendering (manifests, CI artefacts)."""
        return {
            "kind": self.kind,
            "reason": self.reason,
            "trace_index": self.trace_index,
            "trace": self.trace_name,
            "config": self.config_text,
            "attempts": self.attempts,
            "cell_id": self.cell_id,
            "exception_type": self.exception_type,
            "message": self.message,
            "traceback": self.traceback,
            "wall_seconds": self.wall_seconds,
        }


class SweepFailure(RuntimeError):
    """Raised when cells failed permanently and no original exception
    object survived the trip back from the worker."""

    def __init__(self, failures) -> None:
        self.failures = list(failures)
        first = self.failures[0]
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed permanently; first: "
            f"{first.reason} on trace {first.trace_name!r} after "
            f"{first.attempts} attempt(s): "
            f"{first.exception_type}: {first.message}"
        )
