"""Shared unit constants and helpers.

The paper works in a small set of units: bytes for cache and block sizes
(words are 4 bytes), nanoseconds for physical latencies, and CPU cycles for
architectural costs.  Keeping the conversions in one place avoids the classic
off-by-4 errors between "4-word block" and "16-byte block".
"""

from __future__ import annotations

#: Bytes per machine word (the paper's VAX/R2000 context uses 4-byte words).
WORD_BYTES = 4

#: Convenience size multipliers.
KB = 1024
MB = 1024 * KB


def words(n_words: int) -> int:
    """Return the size in bytes of ``n_words`` machine words."""
    return n_words * WORD_BYTES


def is_power_of_two(value: int) -> bool:
    """True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact integer log2 of a power of two.

    Raises ``ValueError`` for values that are not positive powers of two so
    that misconfigured cache geometries fail loudly at construction time.
    """
    if not is_power_of_two(value):
        raise ValueError(f"expected a positive power of two, got {value!r}")
    return value.bit_length() - 1


def check_power_of_two(value: int, what: str) -> int:
    """Validate that ``value`` is a power of two, returning it unchanged.

    ``what`` names the parameter for the error message.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{what} must be a positive power of two, got {value}")
    return value
