"""Cache substrate: the building blocks of a cache hierarchy level.

This package implements a single level of caching with the full parameter
set the paper's simulator exposes (section 2): total size, set size
(associativity), block size, fetch size, write strategy and write buffering.

* :mod:`repro.cache.geometry` -- cache geometry (size/associativity/block
  size) with address decomposition.
* :mod:`repro.cache.replacement` -- LRU / FIFO / random replacement.
* :mod:`repro.cache.policy` -- write strategies (write-back/write-through,
  allocate/no-allocate) and fetch policy.
* :mod:`repro.cache.cache` -- the cache itself (functional behaviour plus
  hit/miss/traffic statistics).
* :mod:`repro.cache.write_buffer` -- the timing model of the 4-entry write
  buffers sitting between hierarchy levels.
* :mod:`repro.cache.stats` -- per-cache counters and derived ratios.
"""

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import (
    FIFOReplacement,
    LRUReplacement,
    RandomReplacement,
    ReplacementPolicy,
    make_replacement,
)
from repro.cache.policy import FetchPolicy, WritePolicy
from repro.cache.cache import AccessOutcome, Cache
from repro.cache.write_buffer import WriteBuffer
from repro.cache.stats import CacheStats

__all__ = [
    "CacheGeometry",
    "ReplacementPolicy",
    "LRUReplacement",
    "FIFOReplacement",
    "RandomReplacement",
    "make_replacement",
    "WritePolicy",
    "FetchPolicy",
    "Cache",
    "AccessOutcome",
    "WriteBuffer",
    "CacheStats",
]
