"""Per-cache event counters and derived ratios.

Counters distinguish demand traffic from prefetch traffic and reads from
writes, because the paper defines its miss ratios over *reads only*
(section 2): loads plus instruction fetches.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Event counts for one cache."""

    #: Read (load/ifetch) accesses presented to this cache.
    reads: int = 0
    #: Read accesses that missed.
    read_misses: int = 0
    #: Write (store) accesses presented to this cache.
    writes: int = 0
    #: Write accesses that missed.
    write_misses: int = 0
    #: Dirty blocks evicted (write-back traffic toward the next level).
    writebacks: int = 0
    #: Blocks fetched from the next level (demand + prefetch).
    blocks_fetched: int = 0
    #: Blocks fetched beyond the demand block (fetch size > block size).
    prefetched_blocks: int = 0
    #: Writes forwarded downstream immediately (write-through traffic).
    writes_forwarded: int = 0
    #: Prefetch reads presented to this cache by an upstream prefetcher.
    prefetch_reads: int = 0
    #: Prefetch reads that missed here.
    prefetch_read_misses: int = 0
    #: Prefetches this cache issued (blocks brought in speculatively).
    prefetches_issued: int = 0
    #: Prefetched blocks that later served a demand access.
    useful_prefetches: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches that served a demand access."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.useful_prefetches / self.prefetches_issued

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def read_miss_ratio(self) -> float:
        """Local read miss ratio: misses over reads *arriving at this cache*."""
        if self.reads == 0:
            return 0.0
        return self.read_misses / self.reads

    @property
    def write_miss_ratio(self) -> float:
        if self.writes == 0:
            return 0.0
        return self.write_misses / self.writes

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum (for aggregating across traces)."""
        return CacheStats(
            reads=self.reads + other.reads,
            read_misses=self.read_misses + other.read_misses,
            writes=self.writes + other.writes,
            write_misses=self.write_misses + other.write_misses,
            writebacks=self.writebacks + other.writebacks,
            blocks_fetched=self.blocks_fetched + other.blocks_fetched,
            prefetched_blocks=self.prefetched_blocks + other.prefetched_blocks,
            writes_forwarded=self.writes_forwarded + other.writes_forwarded,
            prefetch_reads=self.prefetch_reads + other.prefetch_reads,
            prefetch_read_misses=self.prefetch_read_misses
            + other.prefetch_read_misses,
            prefetches_issued=self.prefetches_issued + other.prefetches_issued,
            useful_prefetches=self.useful_prefetches + other.useful_prefetches,
        )

    def reset(self) -> None:
        """Zero every counter (used at the warmup boundary)."""
        self.reads = 0
        self.read_misses = 0
        self.writes = 0
        self.write_misses = 0
        self.writebacks = 0
        self.blocks_fetched = 0
        self.prefetched_blocks = 0
        self.writes_forwarded = 0
        self.prefetch_reads = 0
        self.prefetch_read_misses = 0
        self.prefetches_issued = 0
        self.useful_prefetches = 0
