"""Replacement policies.

Each set is represented by the :class:`~repro.cache.cache.Cache` as a list
of ``[tag, dirty]`` entries.  The policy owns the *meaning of list order*:

* LRU keeps the list in recency order (index 0 = most recently used);
* FIFO keeps it in insertion order (index 0 = newest);
* Random ignores order.

The victim is always the last entry, so eviction code in the cache is
policy-agnostic; policies reorder on touch/insert instead.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List


class ReplacementPolicy(ABC):
    """Strategy controlling per-set entry ordering."""

    name: str = "abstract"

    @abstractmethod
    def on_hit(self, entries: List[list], index: int) -> None:
        """Called when ``entries[index]`` is referenced."""

    @abstractmethod
    def on_insert(self, entries: List[list], entry: list) -> None:
        """Insert ``entry`` into a set with spare capacity."""

    def select_victim(self, entries: List[list]) -> int:
        """Index of the entry to evict from a full set."""
        return len(entries) - 1


class LRUReplacement(ReplacementPolicy):
    """Least-recently-used: list is kept in recency order."""

    name = "lru"

    def on_hit(self, entries: List[list], index: int) -> None:
        if index:
            entries.insert(0, entries.pop(index))

    def on_insert(self, entries: List[list], entry: list) -> None:
        entries.insert(0, entry)


class FIFOReplacement(ReplacementPolicy):
    """First-in-first-out: hits do not reorder."""

    name = "fifo"

    def on_hit(self, entries: List[list], index: int) -> None:
        pass

    def on_insert(self, entries: List[list], entry: list) -> None:
        entries.insert(0, entry)


class RandomReplacement(ReplacementPolicy):
    """Random victim selection (deterministic given the seed)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def on_hit(self, entries: List[list], index: int) -> None:
        pass

    def on_insert(self, entries: List[list], entry: list) -> None:
        entries.append(entry)

    def select_victim(self, entries: List[list]) -> int:
        return self._rng.randrange(len(entries))


_POLICIES = {
    "lru": LRUReplacement,
    "fifo": FIFOReplacement,
    "random": RandomReplacement,
}


def make_replacement(name: str, **kwargs) -> ReplacementPolicy:
    """Build a replacement policy by name ("lru", "fifo", "random")."""
    try:
        factory = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return factory(**kwargs)
