"""Timing model of the inter-level write buffers.

The base machine places a 4-entry write buffer between each pair of levels,
each entry one upstream block wide (paper, section 2).  Buffers are why
write effects are second-order in the paper's analysis: writes are absorbed
by the buffer and drained while the downstream level is otherwise idle, so
they rarely stall the processor.

The model is lazy rather than event-driven: the buffer records, for each
pending entry, how long its drain will occupy the downstream level, and the
simulator calls :meth:`drain_until` with the current time before using the
downstream level.  Three situations create visible delay:

* a push into a full buffer stalls until the oldest entry finishes draining;
* a read that matches a buffered address must wait for entries up to and
  including the match to drain (the paper's simulator enforces the same
  read-around-write correctness);
* entries still draining when a read arrives delay that read (the drain in
  progress completes first).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple


class WriteBuffer:
    """A FIFO write buffer in front of a downstream level.

    Parameters
    ----------
    capacity:
        Number of entries (4 in the base machine).
    service_time:
        Time the downstream level is busy per drained entry, in the same
        (arbitrary) unit the simulator uses -- nanoseconds here.
    downstream_block:
        Byte granularity at which addresses are stored and matched.  Read
        fences compare at the downstream level's block size so that a read
        of a big downstream block conflicts with a buffered write of any
        smaller upstream block inside it.
    """

    def __init__(
        self,
        capacity: int = 4,
        service_time: float = 1.0,
        downstream_block: int = 1,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if service_time <= 0:
            raise ValueError("service_time must be positive")
        if downstream_block < 1:
            raise ValueError("downstream_block must be at least 1")
        self.capacity = capacity
        self.service_time = service_time
        self.downstream_block = downstream_block
        # Entries are (block_address, enqueue_time).
        self._entries: Deque[Tuple[int, float]] = deque()
        #: Time until which the downstream level is busy draining.
        self._drain_busy_until = 0.0
        #: Total entries that ever passed through (for statistics).
        self.total_pushes = 0
        #: Pushes that found the buffer full and stalled.
        self.full_stalls = 0
        #: Reads that matched a buffered entry and had to wait.
        self.read_matches = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def drain_until(self, now: float) -> None:
        """Retire entries whose drain completes by ``now``.

        Draining is opportunistic: an entry starts draining as soon as the
        previous one finishes, provided the buffer was non-empty.
        """
        while self._entries:
            start = max(self._drain_busy_until, self._entries[0][1])
            finish = start + self.service_time
            if finish > now:
                break
            self._entries.popleft()
            self._drain_busy_until = finish

    def busy_until(self, now: float) -> float:
        """Time at which the downstream level stops being occupied by a
        drain that is already in progress at ``now``.

        A buffered entry occupies the downstream level from the moment its
        drain starts; a drain that has not started yet does not block a
        read, because reads have priority over buffered writes.
        """
        self.drain_until(now)
        if self._entries:
            start = max(self._drain_busy_until, self._entries[0][1])
            if start < now:
                return start + self.service_time
        return now

    def block_until(self, when: float) -> None:
        """Forbid drains before ``when``.

        The timing simulator calls this while a demand access occupies the
        downstream level, so buffered writes cannot drain into a busy cache.
        """
        if when > self._drain_busy_until:
            self._drain_busy_until = when

    def push(self, block_address: int, now: float) -> float:
        """Enqueue a write at time ``now``.

        Returns the time at which the processor-side push completes: ``now``
        if a slot is free, later if the buffer was full and had to drain one
        entry first.
        """
        self.drain_until(now)
        self.total_pushes += 1
        completion = now
        if len(self._entries) >= self.capacity:
            self.full_stalls += 1
            # Wait for the oldest entry to finish draining; its drain may
            # already be under way.
            start = max(self._drain_busy_until, self._entries[0][1])
            completion = max(start + self.service_time, now)
            self._entries.popleft()
            self._drain_busy_until = completion
        self._entries.append((block_address, completion))
        return completion

    def read_fence(self, block_address: int, now: float) -> float:
        """Time at which a read of ``block_address`` may safely proceed.

        If the address matches a buffered entry, all entries up to and
        including the match drain first.  Unrelated reads bypass the buffer
        but still wait out a drain already occupying the downstream level.
        """
        self.drain_until(now)
        match_index = None
        for i, (address, _when) in enumerate(self._entries):
            if address == block_address:
                match_index = i
        if match_index is None:
            return self.busy_until(now)
        self.read_matches += 1
        time = self._drain_busy_until
        for _ in range(match_index + 1):
            _address, enqueued = self._entries.popleft()
            time = max(time, enqueued) + self.service_time
        self._drain_busy_until = time
        return max(time, now)

    def flush(self, now: float) -> float:
        """Drain everything; returns the completion time."""
        self.drain_until(now)
        time = self._drain_busy_until
        while self._entries:
            _address, enqueued = self._entries.popleft()
            time = max(time, enqueued) + self.service_time
        self._drain_busy_until = time
        return max(time, now)
