"""Write and fetch policies."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.units import check_power_of_two


class WritePolicy(enum.Enum):
    """Write strategy of a cache level.

    The paper's base machine uses write-back caches at both levels with deep
    write buffers, which is what makes write effects second-order (footnote
    2); write-through is implemented for completeness and for the
    write-strategy ablation.
    """

    #: Writes update the cache; dirty blocks go downstream on eviction.
    WRITE_BACK = "write-back"
    #: Writes propagate downstream immediately; blocks are never dirty.
    WRITE_THROUGH = "write-through"

    @classmethod
    def parse(cls, value) -> "WritePolicy":
        """Accept enum instances or their string values."""
        if isinstance(value, cls):
            return value
        for member in cls:
            if member.value == value:
                return member
        raise ValueError(
            f"unknown write policy {value!r}; choose from "
            f"{[m.value for m in cls]}"
        )


class PrefetchKind(enum.Enum):
    """Hardware sequential-prefetch strategies (Smith's taxonomy).

    The paper's simulator "must be able to model realistic systems,
    including write buffering, prefetching, ..." (section 2); these are the
    classic sequential schemes of its era.
    """

    #: Demand fetching only.
    NONE = "none"
    #: Prefetch the next block(s) on every demand miss.
    ON_MISS = "on-miss"
    #: Prefetch on a miss, and again on the first demand reference to a
    #: block that arrived by prefetch (Gindele's tagged prefetch).
    TAGGED = "tagged"
    #: Prefetch the next block(s) on every demand reference.
    ALWAYS = "always"

    @classmethod
    def parse(cls, value) -> "PrefetchKind":
        if isinstance(value, cls):
            return value
        for member in cls:
            if member.value == value:
                return member
        raise ValueError(
            f"unknown prefetch kind {value!r}; choose from "
            f"{[m.value for m in cls]}"
        )


@dataclass(frozen=True)
class PrefetchPolicy:
    """Sequential prefetching configuration.

    ``distance`` is how many consecutive next blocks each trigger brings in.
    """

    kind: PrefetchKind = PrefetchKind.NONE
    distance: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", PrefetchKind.parse(self.kind))
        if self.distance < 1:
            raise ValueError("prefetch distance must be at least 1")

    @property
    def enabled(self) -> bool:
        return self.kind is not PrefetchKind.NONE

    def candidates(self, block_address: int) -> range:
        """Blocks to prefetch after a trigger on ``block_address``."""
        return range(block_address + 1, block_address + 1 + self.distance)


@dataclass(frozen=True)
class FetchPolicy:
    """What to bring into the cache on a miss.

    ``fetch_blocks`` is the fetch size in blocks: the miss block's aligned
    group of that many blocks is fetched (fetch size = block size when 1,
    the paper's default).  ``write_allocate`` controls whether write misses
    allocate a block; the paper's write-back caches allocate on write.
    """

    fetch_blocks: int = 1
    write_allocate: bool = True

    def __post_init__(self) -> None:
        check_power_of_two(self.fetch_blocks, "fetch_blocks")

    def fetch_group(self, block_address: int) -> range:
        """Block addresses fetched when ``block_address`` misses."""
        if self.fetch_blocks == 1:
            return range(block_address, block_address + 1)
        start = block_address & ~(self.fetch_blocks - 1)
        return range(start, start + self.fetch_blocks)
