"""Cache geometry: size, set size, block size and address decomposition."""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import check_power_of_two, log2_int


@dataclass(frozen=True)
class CacheGeometry:
    """Physical organisation of one cache.

    Follows Smith's terminology as the paper does: *set size* is the
    associativity (number of blocks per set); a set size of 1 is a
    direct-mapped cache.

    Parameters
    ----------
    size_bytes:
        Total data capacity.
    block_bytes:
        Block (line) size.
    associativity:
        Blocks per set.  ``size_bytes / (block_bytes * associativity)``
        must be a power-of-two number of sets.
    """

    size_bytes: int
    block_bytes: int
    associativity: int = 1

    def __post_init__(self) -> None:
        check_power_of_two(self.size_bytes, "size_bytes")
        check_power_of_two(self.block_bytes, "block_bytes")
        check_power_of_two(self.associativity, "associativity")
        if self.block_bytes > self.size_bytes:
            raise ValueError(
                f"block_bytes ({self.block_bytes}) cannot exceed size_bytes "
                f"({self.size_bytes})"
            )
        if self.associativity * self.block_bytes > self.size_bytes:
            raise ValueError(
                f"associativity {self.associativity} with {self.block_bytes}-byte "
                f"blocks does not fit in {self.size_bytes} bytes"
            )

    @property
    def blocks(self) -> int:
        """Total number of blocks in the cache."""
        return self.size_bytes // self.block_bytes

    @property
    def sets(self) -> int:
        """Number of sets."""
        return self.blocks // self.associativity

    @property
    def offset_bits(self) -> int:
        return log2_int(self.block_bytes)

    @property
    def index_bits(self) -> int:
        return log2_int(self.sets)

    @property
    def is_direct_mapped(self) -> bool:
        return self.associativity == 1

    @property
    def is_fully_associative(self) -> bool:
        return self.sets == 1

    def block_address(self, address: int) -> int:
        """Block-aligned identifier for ``address`` (address without offset)."""
        return address >> self.offset_bits

    def set_index(self, address: int) -> int:
        """Set selected by ``address``."""
        return (address >> self.offset_bits) & (self.sets - 1)

    def tag(self, address: int) -> int:
        """Tag bits of ``address``."""
        return address >> (self.offset_bits + self.index_bits)

    def rebuild_address(self, tag: int, set_index: int) -> int:
        """Inverse of (:meth:`tag`, :meth:`set_index`): a block-aligned byte
        address.  Used to reconstruct victim addresses for write-backs."""
        return ((tag << self.index_bits) | set_index) << self.offset_bits

    def scaled(self, size_bytes: int = None, associativity: int = None) -> "CacheGeometry":
        """A copy with some fields replaced -- convenient for design-space
        sweeps that vary one parameter at a time."""
        return CacheGeometry(
            size_bytes=size_bytes if size_bytes is not None else self.size_bytes,
            block_bytes=self.block_bytes,
            associativity=associativity if associativity is not None else self.associativity,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.size_bytes % 1024 == 0:
            size = f"{self.size_bytes // 1024}KB"
        else:
            size = f"{self.size_bytes}B"
        return f"{size}/{self.block_bytes}B/{self.associativity}-way"
