"""A single cache level: functional behaviour and event counting.

The cache is *functional*: it decides hits, fills and evictions, and reports
what traffic it generates toward the next level.  Timing lives in
:mod:`repro.sim.timing` and :mod:`repro.cache.write_buffer`; keeping the two
concerns separate lets the fast design-space sweeps reuse the same
behavioural model that the nanosecond-accurate simulator uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.policy import FetchPolicy, PrefetchKind, PrefetchPolicy, WritePolicy
from repro.cache.replacement import ReplacementPolicy, make_replacement
from repro.cache.stats import CacheStats


@dataclass
class AccessOutcome:
    """Externally visible consequences of one cache access.

    Addresses are block-aligned byte addresses, directly usable as accesses
    to the next level of the hierarchy.
    """

    hit: bool
    #: Blocks fetched from downstream (demand block first).
    fetched: List[int] = field(default_factory=list)
    #: Dirty victim blocks that must be written downstream.
    writebacks: List[int] = field(default_factory=list)
    #: A write forwarded downstream (write-through, or non-allocating miss).
    forwarded_write: Optional[int] = None
    #: Blocks brought in speculatively by the prefetcher (also need
    #: fetching from downstream, but never stall the processor).
    prefetched: List[int] = field(default_factory=list)
    #: Every victim block dropped by this access, clean or dirty (the
    #: dirty ones also appear in ``writebacks``).  Inclusion enforcement
    #: uses this to back-invalidate upstream copies.
    evicted: List[int] = field(default_factory=list)


class Cache:
    """A set-associative cache with configurable policies.

    Parameters
    ----------
    geometry:
        Size / block size / associativity.
    replacement:
        A :class:`~repro.cache.replacement.ReplacementPolicy` or policy name.
    write_policy:
        Write-back (default, as in the paper) or write-through.
    fetch:
        Fetch size and write-allocation behaviour.
    name:
        Label used in reports ("L1I", "L2", ...).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        replacement="lru",
        write_policy: WritePolicy = WritePolicy.WRITE_BACK,
        fetch: Optional[FetchPolicy] = None,
        prefetch: Optional[PrefetchPolicy] = None,
        name: str = "cache",
    ) -> None:
        self.geometry = geometry
        if isinstance(replacement, ReplacementPolicy):
            self.replacement = replacement
        else:
            self.replacement = make_replacement(replacement)
        self.write_policy = WritePolicy.parse(write_policy)
        self.fetch = fetch if fetch is not None else FetchPolicy()
        self.prefetch = prefetch if prefetch is not None else PrefetchPolicy()
        if self.fetch.fetch_blocks > geometry.sets:
            # A fetch group must not wrap around the index space.
            raise ValueError(
                f"fetch_blocks cannot exceed the number of sets ({geometry.sets})"
            )
        self.name = name
        self.stats = CacheStats()
        #: When False, accesses update state but not counters (cold start).
        self.counting = True
        # Per-set entry lists; each entry is a mutable [tag, dirty] pair.
        self._sets: List[List[list]] = [[] for _ in range(geometry.sets)]
        self._offset_bits = geometry.offset_bits
        self._index_mask = geometry.sets - 1
        self._index_bits = geometry.index_bits

    # -- behavioural core ----------------------------------------------------

    def read(self, address: int, bucket: str = "read") -> AccessOutcome:
        """Present a read (load or instruction fetch) to the cache.

        ``bucket`` selects the statistics bucket and prefetch behaviour:

        * ``"read"`` -- a demand read (loads and instruction fetches); the
          only bucket that counts toward the paper's read miss ratios, and
          the only one that triggers prefetching.
        * ``"write"`` -- a fetch on behalf of an upstream write-allocate
          miss; behaves as a read but counts as store-induced traffic so
          the read ratios stay clean.
        * ``"prefetch"`` -- a speculative fetch issued by an upstream
          prefetcher; counted separately and never re-triggers prefetching.
        """
        is_demand_read = bucket == "read"
        outcome = self._lookup(
            address, is_write=False, allow_prefetch=is_demand_read
        )
        if self.counting:
            if is_demand_read:
                self.stats.reads += 1
                if not outcome.hit:
                    self.stats.read_misses += 1
            elif bucket == "write":
                self.stats.writes += 1
                if not outcome.hit:
                    self.stats.write_misses += 1
            elif bucket == "prefetch":
                self.stats.prefetch_reads += 1
                if not outcome.hit:
                    self.stats.prefetch_read_misses += 1
            else:
                raise ValueError(f"unknown access bucket {bucket!r}")
        return outcome

    def write(self, address: int) -> AccessOutcome:
        """Present a write (store) to the cache."""
        outcome = self._lookup(address, is_write=True, allow_prefetch=False)
        if self.counting:
            self.stats.writes += 1
            if not outcome.hit:
                self.stats.write_misses += 1
            if outcome.forwarded_write is not None:
                self.stats.writes_forwarded += 1
        return outcome

    def _lookup(
        self, address: int, is_write: bool, allow_prefetch: bool
    ) -> AccessOutcome:
        block = address >> self._offset_bits
        set_index = block & self._index_mask
        tag = block >> self._index_bits
        entries = self._sets[set_index]
        for i, entry in enumerate(entries):
            if entry[0] == tag:
                self.replacement.on_hit(entries, i)
                first_demand_touch = entry[2]
                if first_demand_touch and allow_prefetch:
                    entry[2] = False
                    if self.counting:
                        self.stats.useful_prefetches += 1
                forwarded = None
                if is_write:
                    if self.write_policy is WritePolicy.WRITE_BACK:
                        entry[1] = True
                    else:
                        forwarded = block << self._offset_bits
                outcome = AccessOutcome(hit=True, forwarded_write=forwarded)
                if allow_prefetch and (
                    self.prefetch.kind is PrefetchKind.ALWAYS
                    or (
                        self.prefetch.kind is PrefetchKind.TAGGED
                        and first_demand_touch
                    )
                ):
                    self._issue_prefetches(block, outcome)
                return outcome

        # Miss.
        outcome = AccessOutcome(hit=False)
        allocate = (not is_write) or self.fetch.write_allocate
        if allocate:
            self._fill_group(block, outcome)
            if is_write:
                if self.write_policy is WritePolicy.WRITE_BACK:
                    self._mark_dirty(block)
                else:
                    outcome.forwarded_write = block << self._offset_bits
        else:
            # No allocation: the write bypasses the cache entirely.
            outcome.forwarded_write = block << self._offset_bits
        if allow_prefetch and self.prefetch.enabled:
            self._issue_prefetches(block, outcome)
        return outcome

    def _issue_prefetches(self, block: int, outcome: AccessOutcome) -> None:
        """Bring in the sequential successors of ``block``."""
        for candidate in self.prefetch.candidates(block):
            if self._present(candidate):
                continue
            self._insert(candidate, outcome, fresh=True)
            if self.counting:
                self.stats.prefetches_issued += 1
            outcome.prefetched.append(candidate << self._offset_bits)

    def _fill_group(self, demand_block: int, outcome: AccessOutcome) -> None:
        """Fetch the demand block and its fetch-group companions."""
        for candidate in self.fetch.fetch_group(demand_block):
            if candidate != demand_block and self._present(candidate):
                continue
            self._insert(candidate, outcome)
            if self.counting:
                self.stats.blocks_fetched += 1
                if candidate != demand_block:
                    self.stats.prefetched_blocks += 1
            outcome.fetched.append(candidate << self._offset_bits)

    def _present(self, block: int) -> bool:
        entries = self._sets[block & self._index_mask]
        tag = block >> self._index_bits
        return any(entry[0] == tag for entry in entries)

    def _insert(self, block: int, outcome: AccessOutcome, fresh: bool = False) -> None:
        set_index = block & self._index_mask
        tag = block >> self._index_bits
        entries = self._sets[set_index]
        if len(entries) >= self.geometry.associativity:
            victim_index = self.replacement.select_victim(entries)
            victim = entries.pop(victim_index)
            victim_address = self.geometry.rebuild_address(victim[0], set_index)
            outcome.evicted.append(victim_address)
            if victim[1]:
                outcome.writebacks.append(victim_address)
                if self.counting:
                    self.stats.writebacks += 1
        # Entries are [tag, dirty, fresh]: ``fresh`` marks a prefetched
        # block that has not yet served a demand access.
        self.replacement.on_insert(entries, [tag, False, fresh])

    def _mark_dirty(self, block: int) -> None:
        entries = self._sets[block & self._index_mask]
        tag = block >> self._index_bits
        for entry in entries:
            if entry[0] == tag:
                entry[1] = True
                return
        raise AssertionError("block just inserted is missing from its set")

    # -- inspection and maintenance -------------------------------------------

    def contains(self, address: int) -> bool:
        """True if the block holding ``address`` is resident."""
        return self._present(address >> self._offset_bits)

    def is_dirty(self, address: int) -> bool:
        """True if the block holding ``address`` is resident and dirty."""
        block = address >> self._offset_bits
        entries = self._sets[block & self._index_mask]
        tag = block >> self._index_bits
        return any(entry[0] == tag and entry[1] for entry in entries)

    def resident_blocks(self) -> List[int]:
        """Block-aligned byte addresses of all resident blocks."""
        addresses = []
        for set_index, entries in enumerate(self._sets):
            for tag, _dirty, _fresh in entries:
                addresses.append(self.geometry.rebuild_address(tag, set_index))
        return addresses

    def flush(self) -> List[int]:
        """Write back and drop every block; returns dirty block addresses."""
        dirty = []
        for set_index, entries in enumerate(self._sets):
            for tag, is_dirty, _fresh in entries:
                if is_dirty:
                    dirty.append(self.geometry.rebuild_address(tag, set_index))
            entries.clear()
        if self.counting:
            self.stats.writebacks += len(dirty)
        return dirty

    def invalidate(self, address: int) -> str:
        """Drop the block holding ``address`` if resident.

        Returns ``"absent"``, ``"clean"`` or ``"dirty"`` describing what was
        found; a dirty invalidation means the caller owns the only copy of
        the data and must write it downstream (inclusion enforcement).
        """
        block = address >> self._offset_bits
        entries = self._sets[block & self._index_mask]
        tag = block >> self._index_bits
        for i, entry in enumerate(entries):
            if entry[0] == tag:
                was_dirty = entry[1]
                del entries[i]
                return "dirty" if was_dirty else "clean"
        return "absent"

    def invalidate_all(self) -> None:
        """Drop every block without writing back (power-on reset)."""
        for entries in self._sets:
            entries.clear()

    def occupancy(self) -> float:
        """Fraction of the cache's block frames currently valid."""
        used = sum(len(entries) for entries in self._sets)
        return used / self.geometry.blocks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cache({self.name!r}, {self.geometry}, "
            f"{self.replacement.name}, {self.write_policy.value})"
        )
