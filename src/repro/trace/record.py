"""In-memory trace representation.

A trace is a sequence of (kind, address) records.  Kinds follow the paper's
read/write split: *reads* are loads **and instruction fetches**; miss ratios
throughout the repository are defined over reads only (paper, section 2).

Traces are stored as parallel numpy arrays (``uint8`` kinds, ``uint64`` byte
addresses) so multi-million-reference traces stay compact and can be saved
and loaded without translation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

#: Instruction fetch (a read for miss-ratio purposes).
IFETCH = 0
#: Data load.
READ = 1
#: Data store.
WRITE = 2

KIND_NAMES = {IFETCH: "ifetch", READ: "read", WRITE: "write"}

_VALID_KINDS = frozenset(KIND_NAMES)


def _derived_free_metadata(metadata: dict) -> dict:
    """Copy ``metadata`` without derived (underscore-prefixed) entries.

    By convention, metadata keys starting with ``_`` hold values derived
    from the trace's *content* -- e.g. the memoisation layer's cached
    trace fingerprint (:mod:`repro.sim.memo`).  Any operation that builds
    a trace with different records or a different warmup boundary must
    drop them, or the derived value would describe the wrong trace (a
    sliced trace carrying its parent's fingerprint aliases the parent's
    memoised simulation results).
    """
    return {
        key: value
        for key, value in metadata.items()
        if not (isinstance(key, str) and key.startswith("_"))
    }


def strip_derived_metadata(metadata: dict) -> None:
    """Delete derived (underscore-prefixed) entries from ``metadata`` in place.

    The in-place twin of :func:`_derived_free_metadata`, for call sites that
    mutate an existing trace (:func:`repro.trace.warmup.mark_warmup`) rather
    than build a new one: rebinding ``trace.metadata`` would strand any
    caller already holding the dict.
    """
    for key in [k for k in metadata if isinstance(k, str) and k.startswith("_")]:
        del metadata[key]


@dataclass
class Trace:
    """An address trace.

    Parameters
    ----------
    kinds:
        ``uint8`` array of record kinds (:data:`IFETCH`, :data:`READ`,
        :data:`WRITE`).
    addresses:
        ``uint64`` array of byte addresses, parallel to ``kinds``.
    name:
        Human-readable label ("vms-like-0", ...), used in experiment output.
    warmup:
        Number of leading records considered cold-start; metric collection
        may ignore them (see :mod:`repro.trace.warmup`).
    """

    kinds: np.ndarray
    addresses: np.ndarray
    name: str = "trace"
    warmup: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.kinds = np.asarray(self.kinds, dtype=np.uint8)
        self.addresses = np.asarray(self.addresses, dtype=np.uint64)
        if self.kinds.shape != self.addresses.shape:
            raise ValueError(
                f"kinds and addresses must be parallel arrays, got shapes "
                f"{self.kinds.shape} and {self.addresses.shape}"
            )
        if self.kinds.ndim != 1:
            raise ValueError("trace arrays must be one-dimensional")
        if self.kinds.size and not _VALID_KINDS.issuperset(np.unique(self.kinds).tolist()):
            bad = sorted(set(np.unique(self.kinds).tolist()) - _VALID_KINDS)
            raise ValueError(f"invalid record kinds in trace: {bad}")
        if not 0 <= self.warmup <= len(self.kinds):
            raise ValueError(
                f"warmup must be within the trace length ({len(self.kinds)}), "
                f"got {self.warmup}"
            )

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return int(self.kinds.size)

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step < 0:
                raise ValueError(
                    "trace slices must have a positive step: reversing a "
                    "trace has no warmup semantics"
                )
            # Records selected by the slice that fall before the original
            # warmup boundary: original indices start, start+step, ... that
            # are < min(warmup, stop).  Clamping through slice.indices keeps
            # out-of-range starts (trace[-200:] on a 100-record trace) from
            # inflating the residual warmup past the boundary itself.
            bounded = min(self.warmup, stop)
            warmup = (bounded - start + step - 1) // step if bounded > start else 0
            sliced = Trace(
                self.kinds[index],
                self.addresses[index],
                name=self.name,
                metadata=_derived_free_metadata(self.metadata),
            )
            sliced.warmup = min(warmup, len(sliced))
            return sliced
        return int(self.kinds[index]), int(self.addresses[index])

    def chunks(self, records: int) -> Iterator["Trace"]:
        """Yield contiguous chunk views of at most ``records`` records each.

        Chunks are zero-copy: their arrays are views of this trace's arrays
        (basic slicing), so streaming a memmap-backed trace
        (:mod:`repro.trace.store`) touches only one chunk of pages at a
        time.  Each chunk carries the residual warmup for its range, per
        the slicing rules above.  An empty trace yields no chunks.
        """
        if records <= 0:
            raise ValueError(f"chunk size must be positive, got {records}")
        for start in range(0, len(self), records):
            yield self[start : start + records]

    def records(self) -> Iterator[Tuple[int, int]]:
        """Iterate (kind, address) pairs as plain Python ints.

        ``tolist`` conversion makes per-record iteration several times faster
        than indexing the numpy arrays directly, which matters for the
        simulators' hot loop.
        """
        return zip(self.kinds.tolist(), self.addresses.tolist())

    # -- derived counts ----------------------------------------------------

    @property
    def read_count(self) -> int:
        """Number of reads (loads + instruction fetches)."""
        return int(np.count_nonzero(self.kinds != WRITE))

    @property
    def write_count(self) -> int:
        """Number of stores."""
        return int(np.count_nonzero(self.kinds == WRITE))

    @property
    def ifetch_count(self) -> int:
        return int(np.count_nonzero(self.kinds == IFETCH))

    @property
    def load_count(self) -> int:
        return int(np.count_nonzero(self.kinds == READ))

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Iterable[Tuple[int, int]],
        name: str = "trace",
        warmup: int = 0,
    ) -> "Trace":
        """Build a trace from an iterable of (kind, address) pairs."""
        pairs = list(records)
        if pairs:
            kinds, addresses = zip(*pairs)
        else:
            kinds, addresses = (), ()
        return cls(
            np.array(kinds, dtype=np.uint8),
            np.array(addresses, dtype=np.uint64),
            name=name,
            warmup=warmup,
        )

    @classmethod
    def trusted(
        cls,
        kinds: np.ndarray,
        addresses: np.ndarray,
        name: str,
        warmup: int,
        metadata: dict,
    ) -> "Trace":
        """Build a trace from pre-validated arrays without the content scan.

        ``__post_init__`` reads every record to validate kinds -- an O(n)
        pass that would defeat the O(1) open of a memmap-backed store
        (:mod:`repro.trace.store`).  Callers guarantee the arrays hold only
        valid kinds (the store format is raw dumps of already-validated
        traces); dtype, shape and warmup bounds are still checked because
        they are O(1).
        """
        if kinds.dtype != np.uint8 or addresses.dtype != np.uint64:
            raise ValueError(
                f"trusted trace arrays must be uint8/uint64, got "
                f"{kinds.dtype}/{addresses.dtype}"
            )
        if kinds.ndim != 1 or kinds.shape != addresses.shape:
            raise ValueError(
                f"kinds and addresses must be parallel 1-d arrays, got shapes "
                f"{kinds.shape} and {addresses.shape}"
            )
        if not 0 <= warmup <= kinds.size:
            raise ValueError(
                f"warmup must be within the trace length ({kinds.size}), "
                f"got {warmup}"
            )
        trace = object.__new__(cls)
        trace.kinds = kinds
        trace.addresses = addresses
        trace.name = name
        trace.warmup = int(warmup)
        trace.metadata = dict(metadata)
        return trace

    def save(self, path) -> None:
        """Persist the trace to an ``.npz`` file.

        Non-derived metadata rides along as a JSON document; derived
        (underscore-prefixed) entries describe in-memory cache state, not
        the trace, and are dropped.  Metadata must therefore be
        JSON-serialisable -- workload provenance (strings, numbers) is.
        The write is atomic, preserving numpy's append-``.npz`` naming.
        """
        from repro.resilience.integrity import atomic_writer

        target = Path(path)
        if target.suffix != ".npz":
            target = target.with_name(target.name + ".npz")
        with atomic_writer(target) as handle:
            np.savez_compressed(
                handle,
                kinds=self.kinds,
                addresses=self.addresses,
                name=np.array(self.name),
                warmup=np.array(self.warmup),
                metadata=np.array(
                    json.dumps(_derived_free_metadata(self.metadata))
                ),
            )

    @classmethod
    def load(cls, path) -> "Trace":
        """Load a trace previously stored with :meth:`save`.

        Files written before metadata persistence load with empty metadata.
        """
        with np.load(path, allow_pickle=False) as data:
            metadata = (
                json.loads(str(data["metadata"])) if "metadata" in data else {}
            )
            return cls(
                data["kinds"],
                data["addresses"],
                name=str(data["name"]),
                warmup=int(data["warmup"]),
                metadata=metadata,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trace(name={self.name!r}, records={len(self)}, "
            f"reads={self.read_count}, writes={self.write_count}, "
            f"warmup={self.warmup})"
        )


def concat_traces(traces: Sequence[Trace], name: str = "concat") -> Trace:
    """Concatenate traces end to end.

    The warmup region of the result is the first trace's warmup; later
    traces' warmup markers are ignored (concatenation is used to build long
    runs of an already-warm workload).  The first trace's metadata carries
    over, minus derived (underscore-prefixed) entries such as the cached
    memoisation fingerprint, which describe the original records only.
    """
    if not traces:
        raise ValueError("need at least one trace to concatenate")
    kinds = np.concatenate([t.kinds for t in traces])
    addresses = np.concatenate([t.addresses for t in traces])
    return Trace(
        kinds,
        addresses,
        name=name,
        warmup=traces[0].warmup,
        metadata=_derived_free_metadata(traces[0].metadata),
    )
