"""Dinero-style ``.din`` trace file I/O.

The classic Dinero trace format is one record per line::

    <label> <hex-address>

where label 0 is a data read, 1 a data write and 2 an instruction fetch.
Supporting it lets traces produced here be checked against other cache
simulators, and lets externally captured ``.din`` traces drive this
simulator.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

import numpy as np

from repro.trace.record import IFETCH, READ, WRITE, Trace

#: Dinero label -> internal record kind.
_DIN_TO_KIND = {0: READ, 1: WRITE, 2: IFETCH}
#: Internal record kind -> Dinero label.
_KIND_TO_DIN = {READ: 0, WRITE: 1, IFETCH: 2}


def write_dinero(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` in Dinero ``.din`` format.

    The write is atomic (tmp file + fsync + rename): an exported trace
    is either complete or absent, never torn.
    """
    from repro.resilience.integrity import atomic_writer

    with atomic_writer(Path(path)) as raw:
        handle = io.TextIOWrapper(raw, encoding="ascii")
        _write_dinero_stream(trace, handle)
        handle.flush()
        handle.detach()  # atomic_writer fsyncs and closes the raw handle


def _write_dinero_stream(trace: Trace, handle: io.TextIOBase) -> None:
    labels = _KIND_TO_DIN
    lines = [
        f"{labels[kind]} {address:x}\n" for kind, address in trace.records()
    ]
    handle.writelines(lines)


def read_dinero(path: Union[str, Path], name: str = None) -> Trace:
    """Read a Dinero ``.din`` trace from ``path``.

    Blank lines are ignored.  Malformed lines raise ``ValueError`` with the
    offending line number.
    """
    kinds = []
    addresses = []
    with open(path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: expected 'label address', got {line!r}")
            try:
                label = int(parts[0])
                address = int(parts[1], 16)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: unparseable record {line!r}") from exc
            if label not in _DIN_TO_KIND:
                raise ValueError(f"{path}:{lineno}: unknown Dinero label {label}")
            kinds.append(_DIN_TO_KIND[label])
            addresses.append(address)
    trace_name = name if name is not None else Path(path).stem
    return Trace(
        np.array(kinds, dtype=np.uint8),
        np.array(addresses, dtype=np.uint64),
        name=trace_name,
    )
