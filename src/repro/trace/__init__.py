"""Address-trace substrate.

The paper drives its simulator with eight large multiprogramming address
traces (four ATUM VAX traces and four interleaved MIPS R2000 traces).  Those
traces are proprietary, so this package provides:

* :mod:`repro.trace.record` -- the in-memory trace representation
  (:class:`~repro.trace.record.Trace`, reference kinds).
* :mod:`repro.trace.synthetic` -- synthetic data-reference generators whose
  locality is calibrated to the paper's own characterisation of its traces
  (solo miss ratio falls by ~0.69 per cache-size doubling).
* :mod:`repro.trace.instr` -- an instruction-fetch stream model (sequential
  runs, loops, function calls over a code footprint).
* :mod:`repro.trace.multiprogram` -- interleaves per-process streams at
  geometric context-switch intervals, recreating the multiprogramming
  structure of the VAX traces.
* :mod:`repro.trace.dinero` -- Dinero-style ``.din`` text trace I/O for
  interoperability with classic cache simulators.
* :mod:`repro.trace.stats` -- trace statistics (read/write mix, footprints,
  stack-distance profiles).
* :mod:`repro.trace.warmup` -- cold-start handling.
"""

from repro.trace.record import IFETCH, READ, WRITE, KIND_NAMES, Trace, concat_traces
from repro.trace.store import TraceStore
from repro.trace.synthetic import (
    ParetoStackDistanceModel,
    StackDistanceGenerator,
    ZipfGenerator,
)
from repro.trace.instr import InstructionStreamGenerator
from repro.trace.multiprogram import MultiprogramScheduler, ProcessSpec
from repro.trace.workload import SyntheticWorkload
from repro.trace.dinero import read_dinero, write_dinero
from repro.trace.stats import TraceStatistics, stack_distance_profile
from repro.trace.transforms import (
    concatenate_measured,
    data_references,
    filter_kinds,
    instruction_fetches,
    interleave_round_robin,
    remap_compact,
    split_by_process,
    to_block_granularity,
)
from repro.trace.warmup import skip_warmup, warmup_boundary

__all__ = [
    "IFETCH",
    "READ",
    "WRITE",
    "KIND_NAMES",
    "Trace",
    "TraceStore",
    "concat_traces",
    "ParetoStackDistanceModel",
    "StackDistanceGenerator",
    "ZipfGenerator",
    "InstructionStreamGenerator",
    "MultiprogramScheduler",
    "ProcessSpec",
    "SyntheticWorkload",
    "read_dinero",
    "write_dinero",
    "TraceStatistics",
    "stack_distance_profile",
    "skip_warmup",
    "warmup_boundary",
    "filter_kinds",
    "data_references",
    "instruction_fetches",
    "split_by_process",
    "to_block_granularity",
    "remap_compact",
    "interleave_round_robin",
    "concatenate_measured",
]
