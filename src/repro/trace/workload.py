"""Per-process CPU reference stream composition.

The paper's CPU model executes one instruction fetch and zero or one data
accesses per non-stall cycle; about 50% of non-stall cycles contain a data
reference (section 2).  :class:`SyntheticWorkload` composes an instruction
stream and a data stream into a single CPU-order record stream with exactly
that structure.

The paper's sentence "roughly 35% of those are reads" is internally
inconsistent with its RISC framing (see DESIGN.md section 2); we default to a
65% load / 35% store data mix and expose the ratio as a parameter.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.trace.instr import InstructionStreamGenerator
from repro.trace.record import IFETCH, READ, WRITE, Trace
from repro.trace.synthetic import StackDistanceGenerator

#: Fraction of non-stall cycles carrying a data reference (paper section 2).
DEFAULT_DATA_REF_FRACTION = 0.5
#: Fraction of data references that are loads (see module docstring).
DEFAULT_DATA_READ_FRACTION = 0.65


class SyntheticWorkload:
    """A single process's reference stream.

    The workload is a *stream*: successive :meth:`records` calls continue
    where the previous one stopped, so the multiprogramming scheduler can
    pull quantum-sized slices without resetting locality state.

    Parameters
    ----------
    data:
        Data-address generator (anything with an ``addresses(count)``
        method); defaults to a paper-calibrated
        :class:`~repro.trace.synthetic.StackDistanceGenerator`.
    instructions:
        Instruction-fetch generator; defaults to
        :class:`~repro.trace.instr.InstructionStreamGenerator`.
    data_ref_fraction:
        Probability that an instruction is accompanied by a data access.
    data_read_fraction:
        Fraction of data accesses that are loads (rest are stores).
    seed:
        Seed for the interleaving decisions (independent of the generators'
        own seeds).
    """

    def __init__(
        self,
        data=None,
        instructions=None,
        data_ref_fraction: float = DEFAULT_DATA_REF_FRACTION,
        data_read_fraction: float = DEFAULT_DATA_READ_FRACTION,
        seed: int = 0,
        address_base: int = 0,
    ) -> None:
        if not 0.0 <= data_ref_fraction <= 1.0:
            raise ValueError("data_ref_fraction must be in [0, 1]")
        if not 0.0 <= data_read_fraction <= 1.0:
            raise ValueError("data_read_fraction must be in [0, 1]")
        # Code and data live in disjoint regions of the process address space.
        self.data = data if data is not None else StackDistanceGenerator(
            address_base=address_base + (1 << 32), seed=seed + 1
        )
        self.instructions = (
            instructions
            if instructions is not None
            else InstructionStreamGenerator(address_base=address_base, seed=seed + 2)
        )
        self.data_ref_fraction = data_ref_fraction
        self.data_read_fraction = data_read_fraction
        self._rng = np.random.default_rng(seed)

    def records(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Produce the next ``count`` records as (kinds, addresses) arrays.

        Records follow CPU issue order: each instruction fetch is followed by
        its data access, if any.
        """
        if count <= 0:
            return np.empty(0, dtype=np.uint8), np.empty(0, dtype=np.uint64)
        parts = [self._records_batch(count)]
        produced = len(parts[0][0])
        while produced < count:
            batch = self._records_batch(count - produced)
            parts.append(batch)
            produced += len(batch[0])
        kinds = np.concatenate([p[0] for p in parts])[:count]
        addresses = np.concatenate([p[1] for p in parts])[:count]
        return kinds, addresses

    def _records_batch(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Produce approximately ``count`` records (may fall slightly short
        when the random data-reference draw lands below its mean)."""
        # Estimate the instruction count that yields ~count records, then
        # trim; a workload slice need not end exactly on a cycle boundary.
        per_instr = 1.0 + self.data_ref_fraction
        n_instr = max(1, int(count / per_instr) + 2)
        has_data = self._rng.random(n_instr) < self.data_ref_fraction
        n_data = int(has_data.sum())
        instr_addrs = self.instructions.addresses(n_instr)
        data_addrs = self.data.addresses(n_data)
        is_load = self._rng.random(n_data) < self.data_read_fraction

        total = n_instr + n_data
        kinds = np.empty(total, dtype=np.uint8)
        addresses = np.empty(total, dtype=np.uint64)
        data_before = np.concatenate(([0], np.cumsum(has_data)[:-1]))
        instr_slots = np.arange(n_instr) + data_before
        data_slots = instr_slots[has_data] + 1
        kinds[instr_slots] = IFETCH
        addresses[instr_slots] = instr_addrs
        kinds[data_slots] = np.where(is_load, READ, WRITE).astype(np.uint8)
        addresses[data_slots] = data_addrs
        return kinds[:count], addresses[:count]

    def trace(self, count: int, name: str = "workload", warmup: int = 0) -> Trace:
        """Materialise ``count`` records as a :class:`Trace`."""
        kinds, addresses = self.records(count)
        return Trace(kinds, addresses, name=name, warmup=min(warmup, count))
