"""Trace statistics and locality profiling.

Two kinds of measurement live here:

* :class:`TraceStatistics` -- cheap whole-trace counts (read/write mix,
  footprints) used to sanity-check generated workloads against the paper's
  section 2 characterisation.
* :func:`stack_distance_profile` -- an exact LRU stack-distance profile
  computed with the classic Fenwick-tree algorithm.  The survival function
  of the profile *is* the fully-associative LRU miss-ratio-versus-size
  curve, which is how the generator calibration (0.69 per doubling) is
  validated empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.trace.record import IFETCH, READ, WRITE, Trace


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of a trace."""

    records: int
    ifetches: int
    loads: int
    stores: int
    unique_blocks: int
    block_bytes: int

    @property
    def reads(self) -> int:
        """Reads in the paper's sense: loads plus instruction fetches."""
        return self.ifetches + self.loads

    @property
    def data_references(self) -> int:
        return self.loads + self.stores

    @property
    def data_read_fraction(self) -> float:
        """Fraction of data references that are loads."""
        if self.data_references == 0:
            return 0.0
        return self.loads / self.data_references

    @property
    def data_ref_per_ifetch(self) -> float:
        """Data references per instruction fetch (~0.5 for the base CPU)."""
        if self.ifetches == 0:
            return 0.0
        return self.data_references / self.ifetches

    @property
    def footprint_bytes(self) -> int:
        return self.unique_blocks * self.block_bytes

    @classmethod
    def measure(cls, trace: Trace, block_bytes: int = 16) -> "TraceStatistics":
        """Compute statistics for ``trace`` at ``block_bytes`` granularity."""
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        kinds = trace.kinds
        blocks = trace.addresses // np.uint64(block_bytes)
        return cls(
            records=len(trace),
            ifetches=int(np.count_nonzero(kinds == IFETCH)),
            loads=int(np.count_nonzero(kinds == READ)),
            stores=int(np.count_nonzero(kinds == WRITE)),
            unique_blocks=int(np.unique(blocks).size),
            block_bytes=block_bytes,
        )


class _FenwickTree:
    """Prefix-sum tree over reference timestamps (1-based)."""

    def __init__(self, size: int) -> None:
        self._tree = np.zeros(size + 1, dtype=np.int64)
        self._size = size

    def add(self, index: int, delta: int) -> None:
        index += 1
        tree = self._tree
        while index <= self._size:
            tree[index] += delta
            index += index & -index

    def prefix_sum(self, index: int) -> int:
        """Sum of entries [0, index)."""
        total = 0
        tree = self._tree
        while index > 0:
            total += tree[index]
            index -= index & -index
        return int(total)


@dataclass
class StackDistanceProfile:
    """Result of :func:`stack_distance_profile`.

    ``distances`` holds one entry per *reuse* (references to never-seen
    blocks are counted separately in ``cold_references``).
    """

    distances: np.ndarray
    cold_references: int
    block_bytes: int

    @property
    def reuse_references(self) -> int:
        return int(self.distances.size)

    @property
    def total_references(self) -> int:
        return self.reuse_references + self.cold_references

    def miss_ratio_at(self, capacity_blocks: int) -> float:
        """Fully-associative LRU miss ratio for a ``capacity_blocks`` cache.

        A reuse reference misses when its stack distance exceeds the
        capacity; cold references always miss.
        """
        if self.total_references == 0:
            return 0.0
        misses = int(np.count_nonzero(self.distances > capacity_blocks))
        return (misses + self.cold_references) / self.total_references

    def survival(self, depths: np.ndarray) -> np.ndarray:
        """``P(distance > depth)`` over reuse references, per depth."""
        if self.reuse_references == 0:
            return np.zeros(len(depths))
        sorted_distances = np.sort(self.distances)
        counts = len(sorted_distances) - np.searchsorted(
            sorted_distances, depths, side="right"
        )
        return counts / len(sorted_distances)


def stack_distance_profile(
    trace: Trace,
    block_bytes: int = 16,
    max_references: Optional[int] = None,
) -> StackDistanceProfile:
    """Exact LRU stack distances for every reference in ``trace``.

    Uses the Fenwick-tree formulation: keep, for each distinct block, a mark
    at the timestamp of its most recent use; the stack distance of a reuse at
    time ``t`` of a block last used at time ``s`` is the number of marks in
    ``(s, t)``, i.e. the number of distinct blocks touched in between.

    ``max_references`` truncates the analysis (profiles are O(n log n)).
    """
    blocks = (trace.addresses // np.uint64(block_bytes)).tolist()
    if max_references is not None:
        blocks = blocks[:max_references]
    n = len(blocks)
    tree = _FenwickTree(n)
    last_use: Dict[int, int] = {}
    distances = np.empty(n, dtype=np.int64)
    n_reuse = 0
    cold = 0
    for t, block in enumerate(blocks):
        prev = last_use.get(block)
        if prev is None:
            cold += 1
        else:
            # Marks strictly after prev and strictly before t, plus the
            # referenced block itself (distance 1 = immediate reuse).
            between = tree.prefix_sum(t) - tree.prefix_sum(prev + 1)
            distances[n_reuse] = between + 1
            n_reuse += 1
            tree.add(prev, -1)
        tree.add(t, +1)
        last_use[block] = t
    return StackDistanceProfile(
        distances=distances[:n_reuse].copy(),
        cold_references=cold,
        block_bytes=block_bytes,
    )
