"""Synthetic data-reference generators.

The paper characterises its (proprietary) traces by a single robust property:
*doubling the cache size multiplies the solo read miss ratio by ~0.69* over
the 4 KB - 4 MB range (section 4).  Every analytical result in the paper is a
functional of that miss-rate-versus-size curve, so a generator that
reproduces it exercises the same code paths and produces the same tradeoff
shapes.

:class:`StackDistanceGenerator` achieves the curve *by construction*: it
draws LRU stack distances from a discrete Pareto distribution with tail
exponent ``theta``.  A fully-associative LRU cache of ``C`` blocks misses
exactly when the distance exceeds ``C``, so its miss ratio is
``P(D > C) ~ C**-theta`` and each size doubling multiplies the miss ratio by
``2**-theta``.  The paper's 0.69 factor corresponds to
``theta = -log2(0.69) ~ 0.535``.

:class:`ZipfGenerator` is a faster, vectorised independent-reference-model
alternative used for ablations (DESIGN.md section 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.trace.mtf import IndexableMTFList

#: The paper's measured per-doubling miss-ratio factor for its trace suite.
PAPER_DOUBLING_FACTOR = 0.69


def theta_for_doubling_factor(factor: float) -> float:
    """Pareto tail exponent giving a per-doubling miss-ratio ``factor``.

    ``factor`` is the multiplier applied to the miss ratio when the cache
    size doubles (0.69 in the paper); smaller factors mean steeper miss-rate
    curves and require a heavier-tailed exponent.
    """
    if not 0.0 < factor < 1.0:
        raise ValueError(f"doubling factor must be in (0, 1), got {factor}")
    return -math.log2(factor)


@dataclass(frozen=True)
class ParetoStackDistanceModel:
    """Discrete Pareto stack-distance distribution.

    ``P(D >= d) = d ** -theta`` for integer ``d >= 1``.  ``theta`` defaults
    to the paper-calibrated value (0.69 miss ratio per size doubling).
    """

    theta: float = theta_for_doubling_factor(PAPER_DOUBLING_FACTOR)

    def __post_init__(self) -> None:
        if self.theta <= 0:
            raise ValueError(f"theta must be positive, got {self.theta}")

    def ccdf(self, distance: float) -> float:
        """``P(D >= distance)`` for integer ``distance >= 1``."""
        if distance <= 1:
            return 1.0
        return distance ** -self.theta

    def survival(self, distance: float) -> float:
        """``P(D > distance)``, i.e. ``ccdf(distance + 1)``."""
        return self.ccdf(distance + 1)

    def miss_ratio(self, capacity_blocks: int) -> float:
        """Expected fully-associative LRU reuse miss ratio at
        ``capacity_blocks``: a reuse misses when its distance exceeds the
        capacity."""
        return self.survival(capacity_blocks)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` stack distances (``int64`` array, all >= 1).

        Inverse-CDF sampling: ``D = floor(u ** (-1/theta))`` gives exactly
        ``P(D >= k) = k ** -theta``.
        """
        u = rng.random(count)
        # Guard against u == 0 which would overflow the power.
        np.maximum(u, 1e-15, out=u)
        raw = np.floor(u ** (-1.0 / self.theta))
        # Cap at a value far beyond any simulated footprint to keep int64 safe.
        return np.minimum(raw, 2**60).astype(np.int64)


class StackDistanceGenerator:
    """Data-reference generator with Pareto-distributed LRU stack distances.

    Each call to :meth:`addresses` continues the stream: the generator keeps
    its LRU stack between calls, so a long trace can be produced in batches.
    Sampled distances beyond the current footprint allocate a fresh block
    (a compulsory miss), which is also how the footprint grows.

    Parameters
    ----------
    model:
        The stack-distance distribution (defaults to the paper calibration).
    block_bytes:
        Granularity at which locality is generated.  The default matches the
        base machine's L1 block (16 bytes) so that cache-block effects are
        neither hidden nor double-counted.
    address_base:
        Added to every emitted address; used by the multiprogramming
        scheduler to give each process a disjoint address space.
    sequential_fraction:
        Probability that a reference touches the block following the
        previous one instead of consulting the stack model -- an optional
        spatial-locality knob (default off; used in generator ablations).
    new_block_fraction:
        Probability that a reference touches a never-seen block regardless
        of the sampled distance.  This adds a compulsory-miss floor and,
        more importantly, controls footprint growth: real multiprogramming
        traces touch fresh pages (I/O buffers, new allocations) far faster
        than a stationary stack-distance process would, and the paper's
        multi-megabyte L2 sweep needs multi-megabyte footprints.
    seed:
        Seed for the internal :class:`numpy.random.Generator`.
    """

    def __init__(
        self,
        model: Optional[ParetoStackDistanceModel] = None,
        block_bytes: int = 16,
        address_base: int = 0,
        sequential_fraction: float = 0.0,
        new_block_fraction: float = 0.0,
        seed: int = 0,
    ) -> None:
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        if not 0.0 <= sequential_fraction < 1.0:
            raise ValueError("sequential_fraction must be in [0, 1)")
        if not 0.0 <= new_block_fraction < 1.0:
            raise ValueError("new_block_fraction must be in [0, 1)")
        self.model = model if model is not None else ParetoStackDistanceModel()
        self.block_bytes = block_bytes
        self.address_base = address_base
        self.sequential_fraction = sequential_fraction
        self.new_block_fraction = new_block_fraction
        self._rng = np.random.default_rng(seed)
        self._stack = IndexableMTFList()
        self._next_block = 0
        self._last_block = -1

    @property
    def footprint_blocks(self) -> int:
        """Number of distinct blocks referenced so far."""
        return self._next_block

    def _fresh_block(self) -> int:
        block = self._next_block
        self._next_block += 1
        return block

    def blocks(self, count: int) -> np.ndarray:
        """Generate ``count`` block identifiers (``int64`` array)."""
        distances = self.model.sample(self._rng, count).tolist()
        if self.sequential_fraction:
            seq_mask = (self._rng.random(count) < self.sequential_fraction).tolist()
        else:
            seq_mask = None
        if self.new_block_fraction:
            new_mask = (self._rng.random(count) < self.new_block_fraction).tolist()
        else:
            new_mask = None
        out = np.empty(count, dtype=np.int64)
        stack = self._stack
        last = self._last_block
        for i in range(count):
            if new_mask is not None and new_mask[i]:
                block = self._fresh_block()
                stack.push_front(block)
            elif seq_mask is not None and seq_mask[i] and last >= 0:
                # Spatial step: next sequential block; it may be new.
                block = last + 1
                if block >= self._next_block:
                    block = self._fresh_block()
                    stack.push_front(block)
                # Note: sequential steps intentionally skip the stack update
                # for already-seen blocks; they model streaming accesses.
            else:
                depth = distances[i]
                if depth > len(stack):
                    block = self._fresh_block()
                    stack.push_front(block)
                else:
                    block = stack.pop_at(depth - 1)
                    stack.push_front(block)
            out[i] = block
            last = block
        self._last_block = last
        return out

    def addresses(self, count: int) -> np.ndarray:
        """Generate ``count`` byte addresses (``uint64`` array)."""
        blocks = self.blocks(count)
        return (blocks * self.block_bytes + self.address_base).astype(np.uint64)


class ZipfGenerator:
    """Independent-reference-model generator with Zipf block popularity.

    A fast, fully vectorised alternative to :class:`StackDistanceGenerator`.
    Under the IRM with Zipf exponent ``alpha > 1`` the LRU miss ratio also
    follows an approximate power law in cache size, but the exponent is tied
    to ``alpha`` rather than controlled directly; the generator-comparison
    ablation quantifies the difference.
    """

    def __init__(
        self,
        population_blocks: int = 1 << 20,
        alpha: float = 1.3,
        block_bytes: int = 16,
        address_base: int = 0,
        seed: int = 0,
    ) -> None:
        if population_blocks < 2:
            raise ValueError("population_blocks must be at least 2")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.population_blocks = population_blocks
        self.alpha = alpha
        self.block_bytes = block_bytes
        self.address_base = address_base
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, population_blocks + 1, dtype=np.float64)
        weights = ranks ** -alpha
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        # Scatter popular blocks across the address space so that popularity
        # rank does not correlate with cache-set index.
        self._permutation = self._rng.permutation(population_blocks)

    def blocks(self, count: int) -> np.ndarray:
        """Generate ``count`` block identifiers (``int64`` array)."""
        u = self._rng.random(count)
        ranks = np.searchsorted(self._cdf, u, side="left")
        return self._permutation[ranks].astype(np.int64)

    def addresses(self, count: int) -> np.ndarray:
        """Generate ``count`` byte addresses (``uint64`` array)."""
        blocks = self.blocks(count)
        return (blocks * self.block_bytes + self.address_base).astype(np.uint64)
