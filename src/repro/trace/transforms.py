"""Trace transformations.

Utilities for slicing, merging and reshaping traces -- the operations a
user needs when adapting externally captured traces (or the synthetic
suite) to new experiments: extracting a data-reference stream, pulling one
process out of a multiprogramming mix, compacting a sparse address space,
or re-interleaving uniprocessor traces the way the paper's MIPS traces
were.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.trace.record import IFETCH, READ, WRITE, Trace
from repro.units import check_power_of_two


def filter_kinds(trace: Trace, kinds: Sequence[int], name: str = None) -> Trace:
    """Keep only records whose kind is in ``kinds``.

    The warmup marker is remapped to the number of surviving warmup
    records, preserving the cold-start boundary's meaning.
    """
    if not kinds:
        raise ValueError("need at least one record kind to keep")
    mask = np.isin(trace.kinds, np.array(list(kinds), dtype=np.uint8))
    warmup = int(np.count_nonzero(mask[: trace.warmup]))
    return Trace(
        trace.kinds[mask],
        trace.addresses[mask],
        name=name if name is not None else f"{trace.name}-filtered",
        warmup=warmup,
    )


def data_references(trace: Trace) -> Trace:
    """The load/store substream (drops instruction fetches)."""
    return filter_kinds(trace, [READ, WRITE], name=f"{trace.name}-data")


def instruction_fetches(trace: Trace) -> Trace:
    """The instruction-fetch substream."""
    return filter_kinds(trace, [IFETCH], name=f"{trace.name}-ifetch")


def split_by_process(trace: Trace, pid_shift: int = 44) -> Dict[int, Trace]:
    """De-interleave a multiprogramming trace by address-space id.

    The suite generators place each process's id in the address bits at
    ``pid_shift`` and above; externally captured traces can pass whatever
    shift matches their layout.  Returns ``{pid: per-process trace}``;
    per-process warmup markers count each process's own warmup records.
    """
    if not 0 <= pid_shift < 64:
        raise ValueError("pid_shift must be a bit position below 64")
    pids = (trace.addresses >> np.uint64(pid_shift)).astype(np.int64)
    result = {}
    for pid in np.unique(pids):
        mask = pids == pid
        warmup = int(np.count_nonzero(mask[: trace.warmup]))
        result[int(pid)] = Trace(
            trace.kinds[mask],
            trace.addresses[mask],
            name=f"{trace.name}-p{int(pid)}",
            warmup=warmup,
        )
    return result


def to_block_granularity(trace: Trace, block_bytes: int) -> Trace:
    """Align every address down to a ``block_bytes`` boundary.

    Useful before exporting to tools that work on block identifiers, or to
    measure how much a metric owes to sub-block offsets.
    """
    check_power_of_two(block_bytes, "block_bytes")
    mask = np.uint64(~(block_bytes - 1) & (2**64 - 1))
    return Trace(
        trace.kinds.copy(),
        trace.addresses & mask,
        name=f"{trace.name}-{block_bytes}B",
        warmup=trace.warmup,
    )


def remap_compact(trace: Trace, block_bytes: int = 16) -> Tuple[Trace, int]:
    """Compact a sparse address space into dense block numbers.

    Every distinct ``block_bytes`` block is renumbered in order of first
    appearance (addresses become ``block_number * block_bytes``).  Returns
    the remapped trace and the number of distinct blocks.  Cache behaviour
    is *not* generally preserved (set conflicts change); this is for
    footprint analysis and for anonymising traces before export.
    """
    check_power_of_two(block_bytes, "block_bytes")
    blocks = trace.addresses // np.uint64(block_bytes)
    unique, inverse = np.unique(blocks, return_inverse=True)
    # np.unique sorts; renumber by first appearance instead.
    first_position = np.full(len(unique), len(trace), dtype=np.int64)
    np.minimum.at(first_position, inverse, np.arange(len(trace), dtype=np.int64))
    rank = np.argsort(np.argsort(first_position, kind="stable"), kind="stable")
    dense = rank[inverse].astype(np.uint64) * np.uint64(block_bytes)
    remapped = Trace(
        trace.kinds.copy(),
        dense,
        name=f"{trace.name}-compact",
        warmup=trace.warmup,
    )
    return remapped, int(len(unique))


def interleave_round_robin(
    traces: Sequence[Trace],
    quantum: int,
    name: str = "interleaved",
    pid_shift: int = 44,
) -> Trace:
    """Deterministically interleave traces in fixed quanta.

    This is the paper's construction for its MIPS traces ("randomly
    interleaved to match the context switch intervals seen in the VAX
    traces"), in its deterministic round-robin form; each input is moved
    into its own address space at ``pid_shift``.  Traces that run out stop
    participating; every record of every input appears exactly once.
    """
    if not traces:
        raise ValueError("need at least one trace")
    if quantum < 1:
        raise ValueError("quantum must be at least 1")
    kinds_parts: List[np.ndarray] = []
    addr_parts: List[np.ndarray] = []
    positions = [0] * len(traces)
    remaining = [len(t) for t in traces]
    while any(remaining):
        for i, trace in enumerate(traces):
            if not remaining[i]:
                continue
            take = min(quantum, remaining[i])
            start = positions[i]
            kinds_parts.append(trace.kinds[start : start + take])
            base = np.uint64((i + 1) << pid_shift)
            addr_parts.append(trace.addresses[start : start + take] + base)
            positions[i] += take
            remaining[i] -= take
    return Trace(
        np.concatenate(kinds_parts),
        np.concatenate(addr_parts),
        name=name,
    )


def concatenate_measured(trace: Trace, repeats: int) -> Trace:
    """Repeat a trace's measured region to lengthen a run.

    The warmup prefix appears once; the post-warmup region is repeated
    ``repeats`` times.  Useful for stretching a short captured trace so a
    timing simulation reaches steady state.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    head_kinds = trace.kinds[: trace.warmup]
    head_addrs = trace.addresses[: trace.warmup]
    tail_kinds = trace.kinds[trace.warmup :]
    tail_addrs = trace.addresses[trace.warmup :]
    kinds = np.concatenate([head_kinds] + [tail_kinds] * repeats)
    addresses = np.concatenate([head_addrs] + [tail_addrs] * repeats)
    return Trace(kinds, addresses, name=f"{trace.name}-x{repeats}",
                 warmup=trace.warmup)
