"""Zero-copy, memmap-backed trace storage and worker handoff.

The paper's sweeps run long address traces -- "data collected only after
the caches had left the cold start region" (section 2) -- and the
roadmap scale is far past the point where every worker-pool restart can
afford to re-ship (or copy-on-write re-touch) whole heap traces.  This
module keeps trace bytes out of process heaps in three layers:

**On-disk store format** (``TraceStore``).  A trace is saved as a small
JSON header followed by the raw ``uint8`` kinds segment and the aligned
raw ``uint64`` addresses segment::

    offset 0   magic ``MLCTRACE`` (8 bytes)
    offset 8   header length (uint64, little-endian)
    offset 16  header JSON: version, records, warmup, name,
               derived-free metadata, content digest, segment offsets
    ...        kinds segment  (records x uint8)
    ...        addresses segment (records x uint8 x 8, 8-byte aligned)

No compression and no parsing means :meth:`TraceStore.open` is O(header)
and :meth:`TraceStore.as_trace` returns a :class:`~repro.trace.record.Trace`
whose arrays are read-only ``np.memmap`` views -- a multi-million-record
trace "loads" without touching its data pages.

**Content digests** (:func:`trace_content_digest`).  The store records a
SHA-256 of the raw segments, computed in fixed-size chunks so hashing a
memmap never materialises the whole trace.  The memoisation layer
(:mod:`repro.sim.memo`) builds its trace fingerprint from this digest
and trusts the recorded value on open -- fingerprinting a store-backed
trace is O(1).  The digest rides in ``trace.metadata`` under a derived
(underscore-prefixed) slot, so any mutation that changes the records
drops it automatically.

**Worker handoff** (:func:`export_traces` / :func:`resolve_traces`).
The resilient sweep executor hands workers *handles* -- a store path for
store-backed traces, a ``multiprocessing.shared_memory`` segment name
for heap traces -- instead of the traces themselves.  Workers reopen the
memmap (or attach the segment) after fork/spawn, so pool restarts ship
kilobytes of handles rather than gigabytes of records, and the executor
works under any start method.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, List, NamedTuple, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:
    from multiprocessing.shared_memory import SharedMemory

import numpy as np

from repro import telemetry
from repro.trace.record import Trace, _derived_free_metadata

__all__ = [
    "STORE_SUFFIX",
    "StoreCorruptError",
    "TraceStore",
    "trace_content_digest",
    "replay_chunk_records",
    "TraceHandle",
    "ShmLease",
    "export_traces",
    "resolve_traces",
]

#: Conventional file suffix for store files ("mlcache trace").
STORE_SUFFIX = ".mlt"

_MAGIC = b"MLCTRACE"
_VERSION = 1

#: Metadata slot holding a trace's cached content digest (derived:
#: underscore-prefixed, so every mutation path strips it).
CONTENT_DIGEST_SLOT = "_content_digest"

#: Metadata slot holding the store path a trace's arrays are mapped from.
STORE_PATH_SLOT = "_store_path"

#: Records hashed per update when digesting trace content; bounds hashing
#: residency to ~9 MB regardless of trace length.
_HASH_CHUNK_RECORDS = 1 << 20

#: Upper bound on a plausible header length; anything larger means the
#: length field itself is damaged (reading it as a size would try to
#: allocate garbage).
_MAX_HEADER_BYTES = 1 << 20


class StoreCorruptError(ValueError):
    """A store file is damaged: torn header, truncated segments, bad
    digest, or not a store at all.

    Subclasses :class:`ValueError` so callers of the original untyped
    errors keep working; integrity-aware callers (the workload disk
    cache, ``mlcache doctor``) catch this type specifically to
    quarantine the file and rebuild instead of crashing the sweep.
    ``FileNotFoundError`` and "unsupported store version" are *not*
    corruption and stay distinct.
    """


def _align(offset: int, boundary: int) -> int:
    return (offset + boundary - 1) // boundary * boundary


def _hash_array(array: np.ndarray) -> str:
    """Chunked SHA-256 of one raw segment (memmap-safe residency)."""
    hasher = hashlib.sha256()
    for start in range(0, len(array), _HASH_CHUNK_RECORDS):
        hasher.update(array[start : start + _HASH_CHUNK_RECORDS].tobytes())
    return hasher.hexdigest()


def content_digest(kinds: np.ndarray, addresses: np.ndarray) -> str:
    """SHA-256 over the raw kind and address segments, chunk by chunk.

    Fixed-size chunks keep peak residency bounded when the arrays are
    memmaps; the result is identical to hashing ``tobytes()`` of each
    whole array.
    """
    hasher = hashlib.sha256()
    for array in (kinds, addresses):
        for start in range(0, len(array), _HASH_CHUNK_RECORDS):
            hasher.update(array[start : start + _HASH_CHUNK_RECORDS].tobytes())
    return hasher.hexdigest()


def trace_content_digest(trace: Trace) -> str:
    """The trace's content digest, cached in its metadata.

    Store-opened traces carry the digest recorded at save time, so this
    is O(1) for them; heap traces pay one chunked hashing pass, once.
    """
    cached = trace.metadata.get(CONTENT_DIGEST_SLOT)
    if cached is not None:
        return cached
    digest = content_digest(trace.kinds, trace.addresses)
    trace.metadata[CONTENT_DIGEST_SLOT] = digest
    return digest


def replay_chunk_records() -> Optional[int]:
    """The configured streaming-replay chunk size, or ``None`` for off.

    Reads ``REPRO_TRACE_CHUNK`` through the central registry.  The sim
    kernels call this at dispatch time (not inside the memo-pure kernel
    functions) so chunked and whole-array replay stay interchangeable.
    """
    from repro.core import envcfg  # lazy: core package-init cycle

    chunk = int(envcfg.get("REPRO_TRACE_CHUNK"))  # type: ignore[arg-type]
    return chunk if chunk > 0 else None


@dataclass(frozen=True)
class TraceStore:
    """An opened (or just-written) store file's header."""

    path: Path
    records: int
    warmup: int
    name: str
    metadata: dict
    digest: str
    kinds_offset: int
    addresses_offset: int
    #: Per-segment digests; ``None`` on stores written before they were
    #: recorded (verification then falls back to the combined digest).
    kinds_digest: Optional[str] = None
    addresses_digest: Optional[str] = None

    @classmethod
    def save(cls, trace: Trace, path: Union[str, Path]) -> "TraceStore":
        """Write ``trace`` to ``path`` in the store format, atomically.

        Derived metadata is dropped (as with :meth:`Trace.save`) except
        for the content digest, which the format records explicitly --
        reusing a cached digest when the trace carries one.  The bytes
        land via the atomic-write primitive (tmp + fsync + rename), so a
        crash mid-save never leaves a torn store at ``path``.
        """
        # Lazy: the resilience package init pulls in sim modules; a
        # top-level import here would close that cycle.
        from repro.resilience.integrity import atomic_writer

        path = Path(path)
        digest = trace_content_digest(trace)
        kinds_digest = _hash_array(trace.kinds)
        addresses_digest = _hash_array(trace.addresses)
        metadata = _derived_free_metadata(trace.metadata)
        header = {
            "version": _VERSION,
            "records": len(trace),
            "warmup": trace.warmup,
            "name": trace.name,
            "metadata": metadata,
            "digest": digest,
            "kinds_digest": kinds_digest,
            "addresses_digest": addresses_digest,
        }
        # Two-pass header sizing: offsets depend on the header length,
        # which depends on the offsets' digit count.  The first pass uses
        # placeholder offsets plus slack covering any digit growth; the
        # second pass pads with spaces to the reserved length.
        header["kinds_offset"] = 0
        header["addresses_offset"] = 0
        blob = json.dumps(header).encode()
        kinds_offset = _align(16 + len(blob) + 40, 8)
        addresses_offset = _align(kinds_offset + len(trace), 8)
        header["kinds_offset"] = kinds_offset
        header["addresses_offset"] = addresses_offset
        blob = json.dumps(header).encode()
        if len(blob) > kinds_offset - 16:
            raise AssertionError("store header overflowed its reserved space")
        blob += b" " * (kinds_offset - 16 - len(blob))
        with telemetry.span("store.save", records=len(trace)):
            with atomic_writer(path) as handle:
                handle.write(_MAGIC)
                handle.write(len(blob).to_bytes(8, "little"))
                handle.write(blob)
                trace.kinds.tofile(handle)
                handle.write(
                    b"\0" * (addresses_offset - kinds_offset - len(trace))
                )
                trace.addresses.tofile(handle)
        telemetry.counter_add("store.saves")
        return cls(
            path=path,
            records=len(trace),
            warmup=trace.warmup,
            name=trace.name,
            metadata=metadata,
            digest=digest,
            kinds_offset=kinds_offset,
            addresses_offset=addresses_offset,
            kinds_digest=kinds_digest,
            addresses_digest=addresses_digest,
        )

    @classmethod
    def open(cls, path: Union[str, Path], verify: bool = False) -> "TraceStore":
        """Parse a store file's header; O(1) in the trace length.

        Any damage -- wrong magic, torn or unparseable header, segment
        offsets pointing past end of file -- raises
        :class:`StoreCorruptError`.  ``verify=True`` additionally
        re-hashes the data segments against the recorded digests (O(n),
        the only way to catch bit rot inside the segments).
        ``FileNotFoundError`` propagates unchanged, and a parseable
        header with an unknown version raises plain :class:`ValueError`
        (that file is healthy, just newer than this reader).
        """
        path = Path(path)
        with open(path, "rb") as handle:
            magic = handle.read(8)
            if magic != _MAGIC:
                raise StoreCorruptError(
                    f"{path} is not a trace store (bad magic)"
                )
            raw_length = handle.read(8)
            if len(raw_length) < 8:
                raise StoreCorruptError(f"{path}: truncated store header")
            length = int.from_bytes(raw_length, "little")
            if length > _MAX_HEADER_BYTES:
                raise StoreCorruptError(
                    f"{path}: implausible header length {length}"
                )
            blob = handle.read(length)
            if len(blob) < length:
                raise StoreCorruptError(f"{path}: truncated store header")
        try:
            header = json.loads(blob)
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise StoreCorruptError(
                f"{path}: corrupt store header (unparseable JSON)"
            ) from None
        if not isinstance(header, dict):
            raise StoreCorruptError(
                f"{path}: corrupt store header (not an object)"
            )
        if header.get("version") != _VERSION:
            raise ValueError(
                f"{path}: unsupported store version {header.get('version')!r}"
            )
        try:
            records = int(header["records"])
            warmup = int(header["warmup"])
            name = str(header["name"])
            metadata = dict(header["metadata"])
            digest = str(header["digest"])
            kinds_offset = int(header["kinds_offset"])
            addresses_offset = int(header["addresses_offset"])
        except (KeyError, TypeError, ValueError):
            raise StoreCorruptError(
                f"{path}: corrupt store header (missing or malformed fields)"
            ) from None
        if (
            records < 0
            or kinds_offset < 16
            or addresses_offset < kinds_offset + records
        ):
            raise StoreCorruptError(
                f"{path}: corrupt store header (inconsistent layout)"
            )
        expected = addresses_offset + 8 * records
        actual = path.stat().st_size
        if actual < expected:
            raise StoreCorruptError(
                f"{path}: truncated store ({actual} bytes, need {expected})"
            )
        store = cls(
            path=path,
            records=records,
            warmup=warmup,
            name=name,
            metadata=metadata,
            digest=digest,
            kinds_offset=kinds_offset,
            addresses_offset=addresses_offset,
            kinds_digest=header.get("kinds_digest"),
            addresses_digest=header.get("addresses_digest"),
        )
        if verify:
            store.verify()
        return store

    def verify(self) -> None:
        """Re-hash the data segments against the recorded digests.

        Per-segment digests (recorded by current writers) pinpoint which
        segment rotted; legacy stores without them fall back to the
        combined content digest.  Raises :class:`StoreCorruptError`
        naming the first mismatching segment.  Chunked hashing over the
        memmaps keeps residency bounded.
        """
        with telemetry.span("store.verify", records=self.records):
            self._verify()
        telemetry.counter_add("store.verifies")

    def _verify(self) -> None:
        kinds = np.memmap(
            self.path, dtype=np.uint8, mode="r",
            offset=self.kinds_offset, shape=(self.records,),
        )
        addresses = np.memmap(
            self.path, dtype=np.uint64, mode="r",
            offset=self.addresses_offset, shape=(self.records,),
        )
        if self.kinds_digest is not None and self.addresses_digest is not None:
            if _hash_array(kinds) != self.kinds_digest:
                raise StoreCorruptError(
                    f"{self.path}: kinds segment digest mismatch "
                    f"(bit rot or torn write)"
                )
            if _hash_array(addresses) != self.addresses_digest:
                raise StoreCorruptError(
                    f"{self.path}: addresses segment digest mismatch "
                    f"(bit rot or torn write)"
                )
        elif content_digest(kinds, addresses) != self.digest:
            raise StoreCorruptError(
                f"{self.path}: content digest mismatch "
                f"(legacy store, combined digest)"
            )

    def as_trace(self) -> Trace:
        """A trace whose arrays are read-only memmap views of the file.

        The recorded content digest is seeded into the trace's metadata
        (so fingerprinting never reads the data pages), together with the
        store path (so the sweep executor can hand workers the path
        instead of the bytes).  Both slots are derived metadata: slicing
        or re-marking warmup strips them, keeping stale handles from
        outliving the records they describe.
        """
        kinds = np.memmap(
            self.path, dtype=np.uint8, mode="r",
            offset=self.kinds_offset, shape=(self.records,),
        )
        addresses = np.memmap(
            self.path, dtype=np.uint64, mode="r",
            offset=self.addresses_offset, shape=(self.records,),
        )
        metadata = dict(self.metadata)
        metadata[CONTENT_DIGEST_SLOT] = self.digest
        metadata[STORE_PATH_SLOT] = str(self.path)
        # 1 kinds byte + 8 address bytes per record land as array views.
        telemetry.counter_add("store.bytes_mapped", self.records * 9)
        return Trace.trusted(kinds, addresses, self.name, self.warmup, metadata)


# -- worker handoff ----------------------------------------------------------


class TraceHandle(NamedTuple):
    """A picklable reference to one trace, resolvable in any process.

    ``kind`` selects the payload shape:

    * ``"store"`` -- ``(path,)``: reopen the store file as memmaps.
    * ``"shm"`` -- ``(segment_name, records, name, warmup, metadata)``:
      attach the shared-memory segment (kinds then 8-byte-aligned
      addresses, same layout as the store's data segments).
    * ``"inline"`` -- ``(trace,)``: the trace itself, for empty traces
      and as the fallback when shared memory is unavailable.
    """

    kind: str
    payload: tuple


class ShmLease(object):
    """Owns shared-memory segments exported to workers.

    The exporting (parent) process must keep the lease alive while any
    worker may attach, and call :meth:`release` when the pool is done --
    segments are named kernel objects that outlive processes until
    unlinked.  ``release`` is idempotent.
    """

    def __init__(self) -> None:
        self.segments: list = []

    def release(self) -> None:
        for segment in self.segments:
            try:
                segment.close()
                segment.unlink()
            except (BufferError, FileNotFoundError, OSError):  # pragma: no cover - racy cleanup
                pass
        self.segments = []


def _shm_layout(records: int) -> Tuple[int, int]:
    """(addresses offset, total size) of a shared trace segment."""
    addresses_offset = _align(records, 8)
    return addresses_offset, addresses_offset + 8 * records


def export_traces(traces: Sequence[Trace]) -> Tuple[List[TraceHandle], ShmLease]:
    """Build picklable handles for ``traces``, copying bytes at most once.

    Store-backed traces (opened via :meth:`TraceStore.as_trace`, path
    still present) export as path handles -- zero bytes copied.  Heap
    traces are copied once into a shared-memory segment that every
    worker attaches for the pool's lifetime; pool *restarts* then cost
    nothing.  Empty traces, and environments without working shared
    memory, fall back to inline handles (the pre-store behaviour).
    """
    lease = ShmLease()
    handles: List[TraceHandle] = []
    for trace in traces:
        path = trace.metadata.get(STORE_PATH_SLOT)
        if path is not None and Path(path).is_file():
            handles.append(TraceHandle("store", (str(path),)))
            continue
        if len(trace) == 0:
            handles.append(TraceHandle("inline", (trace,)))
            continue
        try:
            from multiprocessing import shared_memory

            addresses_offset, size = _shm_layout(len(trace))
            segment = shared_memory.SharedMemory(create=True, size=size)
        except (ImportError, OSError, ValueError):
            handles.append(TraceHandle("inline", (trace,)))
            continue
        lease.segments.append(segment)
        kinds = np.frombuffer(segment.buf, dtype=np.uint8, count=len(trace))
        addresses = np.frombuffer(
            segment.buf, dtype=np.uint64, count=len(trace),
            offset=addresses_offset,
        )
        kinds[:] = trace.kinds
        addresses[:] = trace.addresses
        # Keep derived slots that stay valid for identical records (the
        # digest and fingerprint), so workers skip re-hashing.
        metadata = {
            key: value
            for key, value in trace.metadata.items()
            if not (isinstance(key, str) and key.startswith("_"))
            or key in (CONTENT_DIGEST_SLOT, "_functional_fingerprint")
        }
        handles.append(
            TraceHandle(
                "shm",
                (segment.name, len(trace), trace.name, trace.warmup, metadata),
            )
        )
    return handles, lease


#: Worker-side keepalive: attached segments must outlive the numpy views
#: into their buffers for the rest of the worker process's life.
_ATTACHED: list = []


def _attach_untracked(segment_name: str) -> "SharedMemory":
    """Attach a shared-memory segment without resource-tracker tracking.

    On this Python, ``SharedMemory.__init__`` registers the segment with
    the resource tracker even for plain attaches.  The tracker's cache is
    a per-name *set*, so an attach-then-unregister from a worker would
    silently erase the exporting process's own registration (fork shares
    one tracker) and turn the final unlink into a tracker error.
    Suppressing shared-memory registration for the duration of the
    attach keeps ownership where it belongs: the :class:`ShmLease` in
    the exporting process.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register

    def _skip_shared_memory(name: str, rtype: str) -> None:
        if rtype != "shared_memory":  # pragma: no cover - defensive
            original(name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=segment_name)
    finally:
        resource_tracker.register = original


def resolve_traces(handles: Sequence[TraceHandle]) -> List[Trace]:
    """Materialise handles back into traces (worker side).

    Store handles reopen as memmaps; shm handles attach the segment and
    view it zero-copy.  Safe under fork and spawn alike -- nothing here
    depends on inherited state.
    """
    traces: List[Trace] = []
    for handle in handles:
        if handle.kind == "store":
            traces.append(TraceStore.open(handle.payload[0]).as_trace())
        elif handle.kind == "shm":
            segment_name, records, name, warmup, metadata = handle.payload
            segment = _attach_untracked(segment_name)
            _ATTACHED.append(segment)
            addresses_offset, _ = _shm_layout(records)
            kinds = np.frombuffer(segment.buf, dtype=np.uint8, count=records)
            addresses = np.frombuffer(
                segment.buf, dtype=np.uint64, count=records,
                offset=addresses_offset,
            )
            traces.append(Trace.trusted(kinds, addresses, name, warmup, metadata))
        elif handle.kind == "inline":
            traces.append(handle.payload[0])
        else:
            raise ValueError(f"unknown trace handle kind {handle.kind!r}")
    return traces
