"""Instruction-fetch stream model.

Instruction references are far more sequential than data references: code
executes in straight-line runs broken by branches, and control transfers
cluster in a small set of hot functions.  The generator models exactly that
structure:

* a program is ``function_count`` functions laid out contiguously in a code
  segment, each ``function_words`` instructions long;
* control visits functions with Zipf popularity (hot loops dominate);
* each visit executes a geometric-length sequential run starting at a random
  point inside the function, fetching one 4-byte instruction per record.

The result is a stream whose miss ratio falls quickly with cache size until
the hot-code working set fits, mirroring the instruction-cache behaviour of
the paper's traces.  Everything is vectorised; generation is O(records).
"""

from __future__ import annotations

import numpy as np

from repro.units import WORD_BYTES


class InstructionStreamGenerator:
    """Generates instruction-fetch byte addresses.

    Parameters
    ----------
    function_count:
        Number of functions in the synthetic program.
    function_words:
        Length of each function in instructions (4-byte words).
    zipf_alpha:
        Popularity skew across functions; larger values concentrate fetches
        in fewer hot functions.
    mean_run_length:
        Mean sequential run (instructions fetched between control
        transfers).  The paper's RISC context suggests short runs; the
        default of 12 is typical of branch-every-6-to-15-instruction code.
    address_base:
        Base address of the code segment.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        function_count: int = 2048,
        function_words: int = 64,
        zipf_alpha: float = 1.2,
        mean_run_length: float = 12.0,
        address_base: int = 0,
        seed: int = 0,
    ) -> None:
        if function_count < 1:
            raise ValueError("function_count must be positive")
        if function_words < 1:
            raise ValueError("function_words must be positive")
        if mean_run_length < 1.0:
            raise ValueError("mean_run_length must be at least 1")
        self.function_count = function_count
        self.function_words = function_words
        self.mean_run_length = mean_run_length
        self.address_base = address_base
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, function_count + 1, dtype=np.float64)
        weights = ranks ** -zipf_alpha
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        self._permutation = self._rng.permutation(function_count)

    @property
    def footprint_bytes(self) -> int:
        """Total size of the code segment."""
        return self.function_count * self.function_words * WORD_BYTES

    def addresses(self, count: int) -> np.ndarray:
        """Generate at least ``count`` fetch addresses, truncated to ``count``.

        Returns a ``uint64`` array of byte addresses.
        """
        if count <= 0:
            return np.empty(0, dtype=np.uint64)
        rng = self._rng
        chunks = []
        produced = 0
        while produced < count:
            batch = max(256, int((count - produced) / self.mean_run_length) + 1)
            # Which function does each run execute in?
            u = rng.random(batch)
            funcs = self._permutation[np.searchsorted(self._cdf, u, side="left")]
            # Where inside the function does the run start, and how long is it?
            starts = rng.integers(0, self.function_words, size=batch)
            runs = rng.geometric(1.0 / self.mean_run_length, size=batch)
            # A run cannot fall off the end of its function.
            runs = np.minimum(runs, self.function_words - starts)
            total = int(runs.sum())
            # Expand runs into per-fetch word offsets.
            ends = np.cumsum(runs)
            visit = np.repeat(np.arange(batch), runs)
            within = np.arange(total) - np.repeat(ends - runs, runs)
            words = funcs[visit] * self.function_words + starts[visit] + within
            chunks.append(words)
            produced += total
        words = np.concatenate(chunks)[:count]
        return (words * WORD_BYTES + self.address_base).astype(np.uint64)
