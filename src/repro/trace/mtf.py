"""Indexable move-to-front list (the LRU stack behind the trace generator).

Generating references with a prescribed LRU stack-distance distribution
requires a structure that supports two operations efficiently:

* ``push_front(item)`` -- a new or re-referenced block becomes most recent;
* ``pop_at(depth)``    -- remove and return the block at recency ``depth``.

A plain Python list makes ``pop_at`` O(n) in interpreter steps.  We use a
chunked list instead: chunks are contiguous Python lists of bounded size, so
locating a depth walks the (short) chunk directory and the deletion inside a
chunk is a C-level ``memmove``.  Because the paper-calibrated stack-distance
distribution is heavy at small depths, the walk almost always stops within
the first chunk or two, giving near-O(1) amortised behaviour even for
million-block footprints.
"""

from __future__ import annotations

from typing import Iterator, List


class IndexableMTFList:
    """A move-to-front list supporting indexed removal.

    Index 0 is the most recently used item.
    """

    def __init__(self, chunk_size: int = 1024) -> None:
        if chunk_size < 2:
            raise ValueError("chunk_size must be at least 2")
        self._chunk_size = chunk_size
        self._chunks: List[List[int]] = [[]]
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def push_front(self, item: int) -> None:
        """Insert ``item`` as the most recently used element."""
        head = self._chunks[0]
        head.insert(0, item)
        self._length += 1
        if len(head) > 2 * self._chunk_size:
            # Split the head chunk so front insertion stays cheap.
            self._chunks[0] = head[: self._chunk_size]
            self._chunks.insert(1, head[self._chunk_size :])

    def pop_at(self, depth: int) -> int:
        """Remove and return the element at recency ``depth`` (0-based)."""
        if not 0 <= depth < self._length:
            raise IndexError(f"depth {depth} out of range for length {self._length}")
        remaining = depth
        chunks = self._chunks
        for i, chunk in enumerate(chunks):
            size = len(chunk)
            if remaining < size:
                item = chunk.pop(remaining)
                self._length -= 1
                if not chunk and len(chunks) > 1:
                    del chunks[i]
                return item
            remaining -= size
        raise AssertionError("unreachable: length accounting is broken")

    def peek_at(self, depth: int) -> int:
        """Return (without removing) the element at recency ``depth``."""
        if not 0 <= depth < self._length:
            raise IndexError(f"depth {depth} out of range for length {self._length}")
        remaining = depth
        for chunk in self._chunks:
            size = len(chunk)
            if remaining < size:
                return chunk[remaining]
            remaining -= size
        raise AssertionError("unreachable: length accounting is broken")

    def touch(self, depth: int) -> int:
        """Move the element at ``depth`` to the front and return it."""
        item = self.pop_at(depth)
        self.push_front(item)
        return item

    def __iter__(self) -> Iterator[int]:
        for chunk in self._chunks:
            yield from chunk

    def to_list(self) -> List[int]:
        """Return the contents in recency order (most recent first)."""
        return [item for chunk in self._chunks for item in chunk]
