"""Multiprogramming trace composition.

The paper's eight traces are multiprogramming workloads: four ATUM VAX
traces with real context switching and operating-system references, and four
uniprocessor MIPS traces "randomly interleaved to match the context switch
intervals seen in the VAX traces" (section 2).

:class:`MultiprogramScheduler` reproduces that structure synthetically: it
round-robins between per-process workload streams at geometric quantum
lengths, and can inject an operating-system reference burst at each switch
(system-call / scheduler activity) drawn from a shared kernel workload --
the feature that distinguishes the "VMS-like" traces from the plain
interleaved ones.

Context switches matter to the paper's results: they are what disturb the L2
reference stream enough that the global and solo miss ratios only converge
once L2 is much larger than L1 (Figures 3-1 and 3-2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.trace.record import Trace
from repro.trace.workload import SyntheticWorkload

#: Default mean context-switch interval in references.  ATUM-era VAX systems
#: switched every ten-to-twenty thousand references; the value is a knob.
DEFAULT_SWITCH_INTERVAL = 20_000


@dataclass
class ProcessSpec:
    """One process in a multiprogramming mix."""

    name: str
    workload: SyntheticWorkload
    #: Relative share of quanta this process receives.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"process weight must be positive, got {self.weight}")


class MultiprogramScheduler:
    """Interleaves process streams at geometric context-switch intervals.

    Parameters
    ----------
    processes:
        The process mix; each process's generators should use a disjoint
        ``address_base`` so address spaces do not collide.
    switch_interval:
        Mean quantum length in references.
    kernel:
        Optional shared kernel workload; when given, every context switch
        emits a burst of kernel references (mean ``kernel_burst``),
        modelling OS activity as captured by the ATUM traces.
    kernel_burst:
        Mean kernel records injected per switch.
    seed:
        RNG seed for quantum lengths and process selection.
    """

    def __init__(
        self,
        processes: Sequence[ProcessSpec],
        switch_interval: int = DEFAULT_SWITCH_INTERVAL,
        kernel: Optional[SyntheticWorkload] = None,
        kernel_burst: int = 500,
        seed: int = 0,
    ) -> None:
        if not processes:
            raise ValueError("need at least one process")
        if switch_interval < 1:
            raise ValueError("switch_interval must be at least 1")
        if kernel_burst < 1:
            raise ValueError("kernel_burst must be at least 1")
        self.processes = list(processes)
        self.switch_interval = switch_interval
        self.kernel = kernel
        self.kernel_burst = kernel_burst
        self._rng = np.random.default_rng(seed)
        weights = np.array([p.weight for p in self.processes], dtype=np.float64)
        self._probabilities = weights / weights.sum()

    def _next_process_order(self, quanta: int) -> np.ndarray:
        """Choose which process runs in each quantum.

        Weighted random selection with the constraint that the same process
        never runs two consecutive quanta when more than one exists (a
        context *switch* must switch).
        """
        order = self._rng.choice(len(self.processes), size=quanta, p=self._probabilities)
        if len(self.processes) > 1:
            for i in range(1, quanta):
                if order[i] == order[i - 1]:
                    candidates = [
                        j for j in range(len(self.processes)) if j != order[i - 1]
                    ]
                    order[i] = self._rng.choice(candidates)
        return order

    def trace(self, count: int, name: str = "multiprogram", warmup: int = 0) -> Trace:
        """Generate a ``count``-record multiprogramming trace."""
        if count <= 0:
            raise ValueError("count must be positive")
        kinds_parts: List[np.ndarray] = []
        addr_parts: List[np.ndarray] = []
        produced = 0
        # Over-provision the quantum plan slightly; trim at the end.
        est_quanta = max(4, int(count / self.switch_interval) + 4)
        order = self._next_process_order(est_quanta)
        quantum_lengths = self._rng.geometric(1.0 / self.switch_interval, size=est_quanta)
        idx = 0
        while produced < count:
            if idx >= len(order):
                more = self._next_process_order(est_quanta)
                order = np.concatenate([order, more])
                quantum_lengths = np.concatenate(
                    [
                        quantum_lengths,
                        self._rng.geometric(1.0 / self.switch_interval, size=est_quanta),
                    ]
                )
            process = self.processes[order[idx]]
            quantum = int(quantum_lengths[idx])
            idx += 1
            if self.kernel is not None:
                burst = int(self._rng.geometric(1.0 / self.kernel_burst))
                k_kinds, k_addrs = self.kernel.records(burst)
                kinds_parts.append(k_kinds)
                addr_parts.append(k_addrs)
                produced += len(k_kinds)
            p_kinds, p_addrs = process.workload.records(quantum)
            kinds_parts.append(p_kinds)
            addr_parts.append(p_addrs)
            produced += len(p_kinds)
        kinds = np.concatenate(kinds_parts)[:count]
        addresses = np.concatenate(addr_parts)[:count]
        return Trace(kinds, addresses, name=name, warmup=min(warmup, count))
