"""Cold-start handling.

The paper is explicit that "care was taken to collect data only after the
caches had left the cold start region" (section 2).  We reproduce that by
carrying a ``warmup`` marker on every trace: simulators run the full trace
(so cache state is realistic) but metric collection begins after the marker.
"""

from __future__ import annotations

from repro.trace.record import Trace, strip_derived_metadata


def warmup_boundary(
    trace: Trace,
    largest_cache_bytes: int,
    block_bytes: int = 16,
    fill_factor: float = 4.0,
) -> int:
    """Heuristic cold-start boundary for ``trace``.

    A cache of ``largest_cache_bytes`` holds ``largest_cache_bytes /
    block_bytes`` blocks; seeing ``fill_factor`` times that many references
    gives every set a fair chance to fill.  The boundary is capped at half
    the trace so that short traces still yield measurements.
    """
    if largest_cache_bytes <= 0 or block_bytes <= 0:
        raise ValueError("sizes must be positive")
    if fill_factor <= 0:
        raise ValueError("fill_factor must be positive")
    blocks = largest_cache_bytes // block_bytes
    boundary = int(blocks * fill_factor)
    return min(boundary, len(trace) // 2)


def mark_warmup(trace: Trace, records: int) -> Trace:
    """Return ``trace`` with its warmup marker set to ``records``.

    Moving the marker changes the trace's functional identity -- the
    memoisation fingerprint hashes the warmup boundary -- so any cached
    derived metadata (underscore-prefixed entries such as
    ``_functional_fingerprint``) is dropped when the marker actually
    moves.  A no-op re-mark keeps the cache.
    """
    marker = min(max(0, records), len(trace))
    if marker != trace.warmup:
        trace.warmup = marker
        strip_derived_metadata(trace.metadata)
    return trace


def skip_warmup(trace: Trace) -> Trace:
    """Return the post-warmup suffix of ``trace`` as a new trace.

    Useful when a consumer cannot honour warmup markers itself.  Note that
    simulating only the suffix differs from simulating the whole trace and
    ignoring warm-up *measurements*: the caches start cold at the suffix.
    The simulators in :mod:`repro.sim` honour the marker directly, which
    matches the paper's method; this helper exists for external tools.
    """
    return trace[trace.warmup :]
