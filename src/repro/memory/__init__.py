"""Main-memory and bus timing models (the bottom of the hierarchy).

* :mod:`repro.memory.bus` -- a words-wide synchronous bus; transfer times
  are whole bus cycles.
* :mod:`repro.memory.main_memory` -- DRAM timing with read/write operation
  times and an inter-operation recovery (refresh) constraint, as specified
  for the paper's base machine (section 2).
"""

from repro.memory.bus import Bus
from repro.memory.main_memory import MainMemory, MemoryTiming

__all__ = ["Bus", "MainMemory", "MemoryTiming"]
