"""Synchronous bus model.

Both busses in the base machine are 4 words wide and run at the cycle time
of the downstream side (the L2 cache clocks the CPU-L2 bus; the backplane
clocks the memory bus at the L2 rate).  Transfers take whole bus cycles: one
cycle carries the address, and each data cycle moves up to ``width_words``
words.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import WORD_BYTES


@dataclass
class Bus:
    """A words-wide synchronous bus.

    Parameters
    ----------
    width_words:
        Words moved per data cycle (4 in the base machine).
    cycle_ns:
        Bus cycle time in nanoseconds.
    """

    width_words: int
    cycle_ns: float

    def __post_init__(self) -> None:
        if self.width_words < 1:
            raise ValueError("width_words must be at least 1")
        if self.cycle_ns <= 0:
            raise ValueError("cycle_ns must be positive")
        #: Time until which the bus is carrying a transfer (for contention).
        self.busy_until = 0.0

    @property
    def width_bytes(self) -> int:
        return self.width_words * WORD_BYTES

    def data_cycles(self, size_bytes: int) -> int:
        """Bus cycles needed to move ``size_bytes`` of data."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        return math.ceil(size_bytes / self.width_bytes)

    def address_time(self) -> float:
        """Time to transmit an address (one bus cycle)."""
        return self.cycle_ns

    def data_time(self, size_bytes: int) -> float:
        """Time to move ``size_bytes`` of data."""
        return self.data_cycles(size_bytes) * self.cycle_ns

    def acquire(self, now: float, duration: float) -> float:
        """Occupy the bus for ``duration`` starting no earlier than ``now``.

        Returns the completion time; queues behind an in-flight transfer.
        """
        start = max(now, self.busy_until)
        self.busy_until = start + duration
        return self.busy_until

    def reset(self) -> None:
        self.busy_until = 0.0
