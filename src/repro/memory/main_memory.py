"""Main-memory (DRAM) timing model.

The paper's memory model (section 2) decomposes an access into three
components: a read operation takes 180 ns from address available to 8 words
of data available; a write takes 100 ns from address-and-data available to
write complete; and at least 120 ns of refresh and cycle time must elapse
between successive data operations.

We model the recovery constraint as a minimum gap between the *end* of one
data operation and the *start* of the next.  With the base machine's 30 ns
backplane cycle this yields an 8-word L2 fetch penalty between 270 ns (idle
memory: address cycle 30 + read 180 + two data cycles 60) and 390 ns (the
request arrives just as a previous operation completes); the paper quotes
270-370 ns, the small difference coming from unspecified overlap between
the address cycle and the recovery window.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryTiming:
    """DRAM operation latencies in nanoseconds."""

    read_ns: float = 180.0
    write_ns: float = 100.0
    recovery_ns: float = 120.0

    def __post_init__(self) -> None:
        if self.read_ns <= 0 or self.write_ns <= 0:
            raise ValueError("operation times must be positive")
        if self.recovery_ns < 0:
            raise ValueError("recovery_ns cannot be negative")

    def scaled(self, factor: float) -> "MemoryTiming":
        """Uniformly slower/faster memory (Figure 4-4 doubles everything)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return MemoryTiming(
            read_ns=self.read_ns * factor,
            write_ns=self.write_ns * factor,
            recovery_ns=self.recovery_ns * factor,
        )


class MainMemory:
    """Stateful DRAM with the recovery constraint between operations."""

    def __init__(self, timing: MemoryTiming = MemoryTiming()) -> None:
        self.timing = timing
        #: End time of the most recent data operation.
        self._last_end = float("-inf")
        self.reads = 0
        self.writes = 0
        #: Total time spent waiting out recovery windows (for reporting).
        self.recovery_wait_ns = 0.0

    def _start_after(self, ready: float) -> float:
        earliest = self._last_end + self.timing.recovery_ns
        start = max(ready, earliest)
        self.recovery_wait_ns += start - ready
        return start

    def read(self, ready: float) -> float:
        """Perform a read whose address arrives at ``ready``.

        Returns the time data becomes available at the memory pins.
        """
        start = self._start_after(ready)
        end = start + self.timing.read_ns
        self._last_end = end
        self.reads += 1
        return end

    def write(self, ready: float) -> float:
        """Perform a write whose address and data arrive at ``ready``.

        Returns the write completion time.
        """
        start = self._start_after(ready)
        end = start + self.timing.write_ns
        self._last_end = end
        self.writes += 1
        return end

    def reset(self) -> None:
        self._last_end = float("-inf")
        self.reads = 0
        self.writes = 0
        self.recovery_wait_ns = 0.0
