"""The miss-ratio triad of section 3: local, global and solo.

* The **local** miss ratio divides a cache's misses by the references
  reaching *it*.
* The **global** miss ratio divides the same misses by the *CPU's* read
  references.
* The **solo** miss ratio is what the cache would show if it were alone in
  the system (the single-level miss ratio we have intuition for).

The paper's section 3 result is that global ~ solo once a cache is much
(>= ~8x) larger than its predecessor: the layers can be designed almost
independently.  Measuring the triad needs two simulations per
configuration: the full hierarchy, and the same machine with the upstream
levels removed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.sweep import sweep_functional
from repro.sim.config import SystemConfig
from repro.sim.functional import FunctionalResult
from repro.trace.record import Trace


@dataclass(frozen=True)
class MissRatioTriad:
    """Local/global/solo read miss ratios of one cache level."""

    level: int
    local: float
    global_: float
    solo: float
    #: Fraction of CPU reads that reach this level (the filtering effect).
    traffic: float

    @property
    def filtering(self) -> float:
        """Fraction of CPU reads absorbed upstream (1 - traffic)."""
        return 1.0 - self.traffic

    @property
    def global_solo_gap(self) -> float:
        """Relative deviation of the global from the solo miss ratio --
        the layer-independence figure of merit (small means independent)."""
        if self.solo == 0:
            return 0.0
        return abs(self.global_ - self.solo) / self.solo


def _solo_config(config: SystemConfig, level: int) -> SystemConfig:
    """The configuration with every level above ``level`` removed."""
    solo = config
    for _ in range(level - 1):
        solo = solo.without_level(0)
    return solo


def _aggregate(
    results: Sequence[FunctionalResult], level: int
) -> Dict[str, float]:
    """Count-weighted ratios across traces (sums of misses over sums of
    reads, not averages of ratios)."""
    misses = sum(r.level_stats[level - 1].read_misses for r in results)
    arriving = sum(r.level_stats[level - 1].reads for r in results)
    cpu_reads = sum(r.cpu_reads for r in results)
    return {
        "local": misses / arriving if arriving else 0.0,
        "global": misses / cpu_reads if cpu_reads else 0.0,
        "traffic": arriving / cpu_reads if cpu_reads else 0.0,
    }


def _triad_from_rows(
    full_row: Sequence[FunctionalResult],
    solo_row: Optional[Sequence[FunctionalResult]],
    level: int,
) -> MissRatioTriad:
    """Assemble a triad from one hierarchy row and its solo companion."""
    ratios = _aggregate(full_row, level)
    if solo_row is None:
        solo_ratio = ratios["global"]  # L1 is already alone at the top
    else:
        solo_ratio = _aggregate(solo_row, 1)["global"]
    return MissRatioTriad(
        level=level,
        local=ratios["local"],
        global_=ratios["global"],
        solo=solo_ratio,
        traffic=ratios["traffic"],
    )


def measure_triad(
    traces: Sequence[Trace], config: SystemConfig, level: int = 2
) -> MissRatioTriad:
    """Measure the local/global/solo triad of ``level`` over ``traces``.

    Runs the full hierarchy and the solo machine on every trace (through
    the shared sweep executor) and aggregates by counts.
    """
    if not 1 <= level <= config.depth:
        raise ValueError(f"level {level} outside the hierarchy (depth {config.depth})")
    return sweep_triads(traces, config, [config.levels[level - 1].size_bytes],
                        level)[0]


def sweep_triads(
    traces: Sequence[Trace],
    config: SystemConfig,
    sizes: Sequence[int],
    level: int = 2,
) -> List[MissRatioTriad]:
    """Measure the triad for each ``level`` size in ``sizes``.

    This regenerates the data behind Figures 3-1 and 3-2 (with the level's
    other parameters held at the base configuration).  The whole
    (hierarchy + solo) x sizes grid goes through the sweep executor in one
    fan-out.
    """
    if not traces:
        raise ValueError("need at least one trace")
    if not 1 <= level <= config.depth:
        raise ValueError(f"level {level} outside the hierarchy (depth {config.depth})")
    if not sizes:
        raise ValueError("need at least one size")
    full_configs = [
        config.with_level(level - 1, size_bytes=size) for size in sizes
    ]
    solo_configs = []
    if level > 1:
        solo_configs = [_solo_config(c, level) for c in full_configs]
    results = sweep_functional(traces, full_configs + solo_configs)
    full_rows = results[:len(full_configs)]
    solo_rows = results[len(full_configs):] or [None] * len(full_configs)
    return [
        _triad_from_rows(full_row, solo_row, level)
        for full_row, solo_row in zip(full_rows, solo_rows)
    ]
