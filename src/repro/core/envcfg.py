"""Central registry of every ``REPRO_*`` environment variable.

Before this module, each knob was parsed wherever it happened to be
read: ``core/sweep.py`` parsed ``REPRO_SWEEP_WORKERS``,
``resilience/policy.py`` parsed ``REPRO_SWEEP_RETRIES`` and
``REPRO_SWEEP_TIMEOUT``, ``resilience/faults.py`` parsed the fault
knobs, and so on.  Scattered reads meant scattered parsing rules,
undocumented defaults, and no single place to answer "what knobs does
this system have?".

Now every variable is *registered* here exactly once -- name, type,
default, documentation -- and every read goes through :func:`get` (typed,
parsed, defaulted) or :func:`raw` (the uninterpreted string, for
manifests that record what the environment literally said).  The static
analysis pass (:mod:`repro.lint`, rule RPR003) enforces the discipline:
a direct ``os.environ`` read of a ``REPRO_*`` name anywhere else in the
tree is a lint error, and so is an :func:`get` call naming a variable
with no registration below.

The registry also renders itself to a markdown reference table
(:func:`markdown_table`); the tables in ``docs/resilience.md`` and
``docs/observability.md`` are generated from it and kept in sync by
``python -m repro.core.envcfg --check`` (run in CI) -- see
``docs/static-analysis.md``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "EnvVar",
    "register",
    "var",
    "get",
    "raw",
    "registered_names",
    "all_vars",
    "markdown_table",
    "rewrite_doc_tables",
]

#: Values (lower-cased, stripped) a boolean knob reads as *off*.
FALSY = frozenset(("", "0", "false", "off", "no"))


@dataclass(frozen=True)
class EnvVar:
    """One registered environment variable: name, type, default, docs."""

    name: str
    #: Human-readable type shown in the generated reference ("int",
    #: "float", "flag", ...).
    kind: str
    default: object
    #: One-line description for the generated docs table.
    doc: str
    #: ``(self, raw) -> value``; raises ``ValueError`` with a message that
    #: names the variable when ``raw`` does not parse.
    parse: Callable[["EnvVar", str], object]
    #: Docs grouping: the generated tables are per-section.
    section: str
    #: Whether a set-but-blank value means "unset" (most knobs) rather
    #: than being handed to the parser (``REPRO_AUDIT``, where blank is
    #: an explicit *off*).
    blank_is_unset: bool = True

    def raw(self) -> Optional[str]:
        """The uninterpreted environment string (``None`` when unset)."""
        return os.environ.get(self.name)

    def get(self) -> object:
        """The parsed, defaulted value of this variable right now."""
        value = os.environ.get(self.name)
        if value is None:
            return self.default
        if self.blank_is_unset and not value.strip():
            return self.default
        return self.parse(self, value)

    @property
    def default_text(self) -> str:
        """The default as shown in the generated reference."""
        if self.default is None:
            return "unset"
        if isinstance(self.default, str) and not self.default:
            return "empty"
        return repr(self.default)


# -- parsers -----------------------------------------------------------------
#
# Parsers raise ValueError messages that name the variable; several are
# pinned by tests (tests/resilience/test_workers_env.py and the
# isolation/fault suites), so the phrasing here is a compatibility
# surface, not a style choice.


def parse_int(minimum: Optional[int] = None) -> Callable[[EnvVar, str], int]:
    def parse(variable: EnvVar, text: str) -> int:
        try:
            value = int(text.strip())
        except ValueError:
            raise ValueError(
                f"{variable.name} must be an integer, got {text!r}"
            ) from None
        if minimum is not None and value < minimum:
            raise ValueError(
                f"{variable.name} must be >= {minimum}, got {text!r}"
            )
        return value

    return parse


def parse_float(positive: bool = False) -> Callable[[EnvVar, str], float]:
    def parse(variable: EnvVar, text: str) -> float:
        try:
            value = float(text.strip())
        except ValueError:
            raise ValueError(
                f"{variable.name} must be a number, got {text!r}"
            ) from None
        if positive and value <= 0:
            raise ValueError(
                f"{variable.name} must be positive, got {text!r}"
            )
        return value

    return parse


def parse_bool(variable: EnvVar, text: str) -> bool:
    """Truthy unless the value reads as off (see :data:`FALSY`)."""
    return text.strip().lower() not in FALSY


def parse_str(variable: EnvVar, text: str) -> str:
    return text


def parse_choice(*options: str) -> Callable[[EnvVar, str], str]:
    def parse(variable: EnvVar, text: str) -> str:
        value = text.strip().lower()
        if value not in options:
            choices = "/".join(options)
            raise ValueError(
                f"{variable.name} must be one of {choices}, got {text!r}"
            )
        return value

    return parse


# -- the registry ------------------------------------------------------------

_REGISTRY: Dict[str, EnvVar] = {}


def register(
    name: str,
    *,
    kind: str,
    default: object,
    doc: str,
    parse: Callable[[EnvVar, str], object],
    section: str,
    blank_is_unset: bool = True,
) -> EnvVar:
    """Register one variable; exactly one registration per name."""
    if not name.startswith("REPRO_"):
        raise ValueError(
            f"envcfg registers REPRO_* variables only, got {name!r}"
        )
    if name in _REGISTRY:
        raise ValueError(f"{name} is registered twice in repro/core/envcfg.py")
    variable = EnvVar(
        name=name,
        kind=kind,
        default=default,
        doc=doc,
        parse=parse,
        section=section,
        blank_is_unset=blank_is_unset,
    )
    _REGISTRY[name] = variable
    return variable


def var(name: str) -> EnvVar:
    """The registration for ``name``; unregistered names fail loudly."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"{name} is not a registered environment variable; "
            f"add a register() entry in repro/core/envcfg.py"
        ) from None


def get(name: str) -> object:
    """The parsed, defaulted value of a registered variable."""
    return var(name).get()


def raw(name: str) -> Optional[str]:
    """The uninterpreted string of a registered variable (manifests)."""
    return var(name).raw()


def registered_names() -> frozenset:
    """Every registered variable name (the RPR003 lint rule reads this)."""
    return frozenset(_REGISTRY)


def all_vars(section: Optional[str] = None) -> List[EnvVar]:
    """Registrations, name-sorted, optionally filtered to one section."""
    selected = [
        variable
        for variable in _REGISTRY.values()
        if section is None or variable.section == section
    ]
    return sorted(selected, key=lambda variable: variable.name)


# -- registrations -----------------------------------------------------------
#
# One entry per variable.  The modules that consume these values import
# this registry; defaults live here and nowhere else.

AUDIT = register(
    "REPRO_AUDIT",
    kind="tri-state flag",
    default=None,
    doc=(
        "Force the conservation-law audits on (truthy) or off "
        "(`0`/`false`/`off`/`no`/blank); unset defers to \"running "
        "under pytest\"."
    ),
    parse=parse_bool,
    section="audit",
    blank_is_unset=False,
)

RECORDS = register(
    "REPRO_RECORDS",
    kind="int",
    default=250_000,
    doc="Records per synthetic trace in the standard workload suite.",
    parse=parse_int(minimum=1),
    section="workload",
)

TRACES = register(
    "REPRO_TRACES",
    kind="int",
    default=4,
    doc="Number of traces in the suite (clamped to 1..8; 8 = full paper suite).",
    parse=parse_int(),
    section="workload",
)

TRACE_CACHE = register(
    "REPRO_TRACE_CACHE",
    kind="path",
    default=None,
    doc="Directory for on-disk trace caching; unset disables it.",
    parse=parse_str,
    section="workload",
)

FULL = register(
    "REPRO_FULL",
    kind="flag",
    default=False,
    doc=(
        "Sweep the paper's full 4 KB - 4 MB L2 size axis instead of the "
        "benchmark-scale 512 KB cutoff."
    ),
    parse=parse_bool,
    section="workload",
)

SWEEP_WORKERS = register(
    "REPRO_SWEEP_WORKERS",
    kind="int",
    default=None,
    doc=(
        "Worker processes for the sweep executor (`0`/`1` force serial, "
        "values above 64 clamp); unset uses the CPU count."
    ),
    parse=parse_int(),
    section="sweep",
)

SWEEP_RETRIES = register(
    "REPRO_SWEEP_RETRIES",
    kind="int",
    default=2,
    doc=(
        "Retries per sweep cell after the first attempt "
        "(`0` disables retrying)."
    ),
    parse=parse_int(minimum=0),
    section="sweep",
)

SWEEP_TIMEOUT = register(
    "REPRO_SWEEP_TIMEOUT",
    kind="float (seconds)",
    default=None,
    doc=(
        "Per-cell wall-clock budget; a cell past it has its worker "
        "killed and is retried.  Unset disables timeouts."
    ),
    parse=parse_float(positive=True),
    section="sweep",
)

STACKDIST = register(
    "REPRO_STACKDIST",
    kind="flag",
    default=True,
    doc=(
        "Grid-batch eligible functional sweep cells through the "
        "single-pass stack-distance engine (one trace replay per set "
        "count); `0` forces one simulation per cell."
    ),
    parse=parse_bool,
    section="sweep",
)

TRACE_CHUNK = register(
    "REPRO_TRACE_CHUNK",
    kind="int",
    default=0,
    doc=(
        "Records per chunk for streaming trace replay in the fast and "
        "stack-distance kernels (bounds peak residency, count-identical); "
        "`0` replays whole-array."
    ),
    parse=parse_int(minimum=0),
    section="sweep",
)

SWEEP_CONTEXT = register(
    "REPRO_SWEEP_CONTEXT",
    kind="choice",
    default=None,
    doc=(
        "Multiprocessing start method for the sweep pool (`fork`, "
        "`spawn` or `forkserver`); unset prefers fork where available."
    ),
    parse=parse_choice("fork", "spawn", "forkserver"),
    section="sweep",
)

FAULTS = register(
    "REPRO_FAULTS",
    kind="spec",
    default="",
    doc=(
        "Fault-injection spec, `fault:probability` pairs, comma-separated "
        "(e.g. `worker_raise:0.2,corrupt_result:0.1`); empty disables "
        "injection."
    ),
    parse=parse_str,
    section="resilience",
)

FAULTS_SEED = register(
    "REPRO_FAULTS_SEED",
    kind="int",
    default=20240613,
    doc="Seed for the deterministic fault-injection draws.",
    parse=parse_int(),
    section="resilience",
)

FAULTS_HANG_S = register(
    "REPRO_FAULTS_HANG_S",
    kind="float (seconds)",
    default=30.0,
    doc="How long an injected `worker_hang` fault sleeps.",
    parse=parse_float(positive=True),
    section="resilience",
)

STORE_VERIFY = register(
    "REPRO_STORE_VERIFY",
    kind="flag",
    default=True,
    doc=(
        "Re-hash trace-store data segments against their recorded "
        "digests when the workload disk cache opens them (catches bit "
        "rot; corrupt stores quarantine and rebuild); `0` trusts the "
        "header alone."
    ),
    parse=parse_bool,
    section="storage",
)

LOCK_TIMEOUT_S = register(
    "REPRO_LOCK_TIMEOUT_S",
    kind="float (seconds)",
    default=600.0,
    doc=(
        "How long a sweep waits for another process's advisory lock on "
        "a shared trace-cache entry before failing with the holder's "
        "identity (the journal lock never waits)."
    ),
    parse=parse_float(positive=True),
    section="storage",
)

TELEMETRY = register(
    "REPRO_TELEMETRY",
    kind="flag",
    default=False,
    doc=(
        "Record sweep telemetry: timing spans and counters from the "
        "planner, kernels, memo, journal, store and worker pool stream "
        "to a JSONL sink (see REPRO_TELEMETRY_PATH). Off by default; "
        "disabled spans are no-ops."
    ),
    parse=parse_bool,
    section="telemetry",
)

TELEMETRY_PATH = register(
    "REPRO_TELEMETRY_PATH",
    kind="path",
    default="run.telemetry.jsonl",
    doc=(
        "Where the telemetry sink is written when REPRO_TELEMETRY is "
        "on. Only the supervisor process writes it; `mlcache telemetry "
        "report`/`export` and `mlcache doctor` read it."
    ),
    parse=parse_str,
    section="telemetry",
)


# -- generated documentation -------------------------------------------------

#: Marker lines bracketing a generated table inside a docs file.
_BEGIN = "<!-- envcfg:begin {section} -->"
_END = "<!-- envcfg:end {section} -->"


def markdown_table(section: Optional[str] = None) -> str:
    """A markdown reference table of the registered variables."""
    rows = [
        "| Variable | Type | Default | Meaning |",
        "| --- | --- | --- | --- |",
    ]
    for variable in all_vars(section):
        rows.append(
            f"| `{variable.name}` | {variable.kind} "
            f"| {variable.default_text} | {variable.doc} |"
        )
    return "\n".join(rows)


def rewrite_doc_tables(text: str) -> str:
    """Regenerate every ``envcfg:begin``/``envcfg:end`` block in ``text``.

    Each block names a section; its contents are replaced by the
    generated table for that section.  Unknown sections raise so a typo
    in a marker cannot silently produce an empty table.
    """
    lines = text.split("\n")
    output: List[str] = []
    i = 0
    while i < len(lines):
        line = lines[i]
        output.append(line)
        stripped = line.strip()
        if stripped.startswith("<!-- envcfg:begin ") and stripped.endswith(" -->"):
            section = stripped[len("<!-- envcfg:begin "):-len(" -->")].strip()
            if not any(v.section == section for v in _REGISTRY.values()):
                raise ValueError(f"unknown envcfg section {section!r} in docs")
            end_marker = _END.format(section=section)
            j = i + 1
            while j < len(lines) and lines[j].strip() != end_marker:
                j += 1
            if j >= len(lines):
                raise ValueError(
                    f"unterminated envcfg block for section {section!r}"
                )
            output.extend(markdown_table(section).split("\n"))
            output.append(lines[j])
            i = j + 1
            continue
        i += 1
    return "\n".join(output)


def _run_cli(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.core.envcfg``: print, update or check the docs."""
    import argparse
    from pathlib import Path

    parser = argparse.ArgumentParser(
        prog="python -m repro.core.envcfg",
        description="Generated REPRO_* environment-variable reference.",
    )
    parser.add_argument("--section", default=None,
                        help="limit the printed table to one section")
    parser.add_argument("--update", nargs="*", type=Path, default=None,
                        help="rewrite the envcfg blocks in these docs files")
    parser.add_argument("--check", nargs="*", type=Path, default=None,
                        help="fail (exit 1) if any docs file is stale")
    args = parser.parse_args(argv)
    if args.update is None and args.check is None:
        print(markdown_table(args.section))
        return 0
    stale: List[str] = []
    for path in list(args.update or []) + list(args.check or []):
        text = path.read_text()
        regenerated = rewrite_doc_tables(text)
        if regenerated != text:
            if args.update is not None and path in args.update:
                # Atomic: a crash mid-update must not tear a docs file
                # the CI freshness gate then misreads as stale garbage.
                from repro.resilience.integrity import atomic_write_text

                atomic_write_text(path, regenerated)
                print(f"updated {path}")
            else:
                stale.append(str(path))
        else:
            print(f"ok {path}")
    for path_text in stale:
        print(f"STALE {path_text}: regenerate with "
              f"python -m repro.core.envcfg --update {path_text}")
    return 1 if stale else 0


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    raise SystemExit(_run_cli())
