"""Speed-size design-space sweeps (section 4).

Execution time over a (L2 size x L2 cycle time) grid is the raw material of
Figures 4-1 through 4-4.  Sweeping the grid with the timing simulator would
re-run the trace for every cycle time even though the *event counts* do not
depend on it; instead we exploit the paper's own Equation 1: given the
counts, total time is **affine in the L2 cycle time**, because an L2 cycle
enters the time once per L2-served event (hits pay one cycle, misses pay
the backplane cycles of the memory fetch).

``AffineTimeModel`` captures that closed form; ``execution_time_grid``
builds one model per (size, trace) from a single functional run and
evaluates the whole cycle-time axis for free.  The approximation (write
stalls and DRAM recovery folded into per-event constants) is validated
against the timing simulator in ``tests/core/test_design_space.py`` and the
affine-vs-timing ablation benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.sweep import sweep_functional
from repro.sim.config import SystemConfig
from repro.sim.functional import FunctionalResult
from repro.trace.record import Trace


@dataclass(frozen=True)
class AffineTimeModel:
    """``total_cpu_cycles(c) = base + events_per_cycle * c`` where ``c`` is
    the L2 cycle time in CPU cycles.

    ``base`` collects everything independent of the L2 cycle: the
    instruction stream's base cycles, the DRAM operation time of L2 misses,
    and the store-side costs.  ``events_per_cycle`` counts how many L2
    cycles the program pays per unit of ``c``: one per L2 access (demand
    reads and store-induced traffic) plus the backplane cycles of each
    memory fetch.
    """

    base: float
    events_per_cycle: float
    #: Bookkeeping for reporting.
    cpu_reads: int
    cpu_writes: int

    def total_cycles(self, l2_cycle_cpu_cycles: float) -> float:
        if l2_cycle_cpu_cycles <= 0:
            raise ValueError("cycle time must be positive")
        return self.base + self.events_per_cycle * l2_cycle_cpu_cycles

    def cycle_for_total(self, total_cycles: float) -> float:
        """Invert the model: the L2 cycle time that yields
        ``total_cycles`` (may be non-physical/negative if unreachable)."""
        if self.events_per_cycle == 0:
            raise ValueError("model does not depend on the L2 cycle time")
        return (total_cycles - self.base) / self.events_per_cycle


def affine_model_for(
    result: FunctionalResult, config: SystemConfig
) -> AffineTimeModel:
    """Build the affine model from one functional run.

    Only two-level systems are supported here (the paper's sweeps vary a
    single downstream level); deeper systems use the timing simulator.
    """
    if config.depth != 2:
        raise ValueError("the affine sweep method models two-level systems")
    l1, l2 = result.level_stats
    cpu_cycle = config.cpu.cycle_ns
    # The memory path (backplane address cycle, DRAM read, data transfer)
    # is priced at the configuration's effective backplane and therefore
    # lands in the cycle-time-independent base -- exactly the paper's
    # sweep protocol, which keeps "the main memory access portion of the
    # second-level cache miss penalty ... constant" while varying the L2
    # SRAM time.
    data_cycles = math.ceil(
        config.levels[1].block_bytes / (config.bus_width_words * 4)
    )
    backplane = config.effective_backplane_ns
    memory_fetch_cycles = (
        (1 + data_cycles) * backplane + config.memory.read_ns
    ) / cpu_cycle
    # Events that pay L2 cycles: every access the L2 serves for the CPU
    # (L1 read misses and L1 store-allocate fetches pay one cycle each);
    # drained writebacks occupy the L2 for its write-hit time.  Charging
    # writebacks at full occupancy approximates the bandwidth congestion
    # the timing simulator shows at large cycle times, at the cost of
    # slight pessimism when the buffers hide them completely.
    l2_accesses = (
        l1.read_misses
        + l1.write_misses
        + config.levels[1].write_hit_cycles * l1.writebacks
    )
    memory_fetches = l2.blocks_fetched
    # Store-side base cost: the second cycle of each write hit is exposed
    # only when the next data access collides; treat the average exposure
    # as one extra cycle per (write_hit_cycles - 1) for half the stores
    # that are followed by a data reference.  This is a small constant that
    # cancels in relative-time comparisons; its accuracy is covered by the
    # affine-vs-timing validation.
    store_base = 0.5 * (config.levels[0].write_hit_cycles - 1) * result.cpu_writes
    base = result.cpu_ifetches + memory_fetches * memory_fetch_cycles + store_base
    events = l2_accesses
    return AffineTimeModel(
        base=float(base),
        events_per_cycle=float(events),
        cpu_reads=result.cpu_reads,
        cpu_writes=result.cpu_writes,
    )


@dataclass
class SpeedSizeGrid:
    """Execution time over the (size, cycle time) design plane.

    ``total_cycles[i, j]`` is the CPU-cycle count for ``sizes[i]`` and
    ``cycle_times[j]`` summed over the trace set; ``relative[i, j]``
    normalises by the best point in the grid (the paper's "relative
    execution time").
    """

    sizes: List[int]
    cycle_times: List[float]
    total_cycles: np.ndarray
    models: List[AffineTimeModel]

    @property
    def relative(self) -> np.ndarray:
        return self.total_cycles / self.total_cycles.min()

    def relative_to_point(self, size: int, cycle_time: float) -> np.ndarray:
        """Relative execution time against a chosen reference point."""
        i = self.sizes.index(size)
        j = self.cycle_times.index(cycle_time)
        return self.total_cycles / self.total_cycles[i, j]

    def column(self, cycle_time: float) -> np.ndarray:
        """Execution times across sizes at one cycle time (a Figure 4-1
        curve)."""
        return self.total_cycles[:, self.cycle_times.index(cycle_time)]


def execution_time_grid(
    traces: Sequence[Trace],
    config: SystemConfig,
    sizes: Sequence[int],
    cycle_times: Sequence[float],
    level: int = 2,
) -> SpeedSizeGrid:
    """Sweep the (size, cycle time) plane of ``level`` (1-based).

    At most one functional simulation per (size, trace) -- the grid goes
    through the shared sweep executor, so cells cached by earlier sweeps
    (or duplicated across figure variants) are not re-simulated -- and the
    cycle-time axis is evaluated through the affine model for free.
    """
    if not traces:
        raise ValueError("need at least one trace")
    if not sizes or not cycle_times:
        raise ValueError("need at least one size and one cycle time")
    if any(c <= 0 for c in cycle_times):
        raise ValueError("cycle times must be positive")
    grid = np.zeros((len(sizes), len(cycle_times)))
    models: List[AffineTimeModel] = []
    sized_configs = [
        config.with_level(level - 1, size_bytes=size) for size in sizes
    ]
    results = sweep_functional(traces, sized_configs)
    for i, (sized, row) in enumerate(zip(sized_configs, results)):
        base_sum = 0.0
        events_sum = 0.0
        reads = writes = 0
        for result in row:
            model = affine_model_for(result, sized)
            base_sum += model.base
            events_sum += model.events_per_cycle
            reads += model.cpu_reads
            writes += model.cpu_writes
        combined = AffineTimeModel(
            base=base_sum,
            events_per_cycle=events_sum,
            cpu_reads=reads,
            cpu_writes=writes,
        )
        models.append(combined)
        for j, cycle in enumerate(cycle_times):
            grid[i, j] = combined.total_cycles(cycle)
    return SpeedSizeGrid(
        sizes=list(sizes),
        cycle_times=list(cycle_times),
        total_cycles=grid,
        models=models,
    )
