"""Performance-optimal hierarchy search (the paper's design question made
executable).

Given an implementation-technology model -- how a cache's cycle time grows
with its size and associativity -- and a trace set, the optimiser finds the
configuration minimising execution time.  It makes the paper's two framing
results demonstrable:

* the **single-level performance ceiling**: past a point, no single-level
  configuration improves, because bigger means slower;
* breaking the ceiling with a second level, whose optimal size/associativity
  sits at larger-and-slower coordinates than a single-level analysis would
  pick.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.design_space import affine_model_for
from repro.core.sweep import sweep_functional, sweep_timing
from repro.sim.config import SystemConfig
from repro.trace.record import Trace


@dataclass(frozen=True)
class TechnologyModel:
    """Cycle time (ns) of a cache as implemented, by size and set size.

    ``base_ns`` is the cycle time of a ``base_size`` direct-mapped cache;
    each size doubling adds ``ns_per_doubling``; each associativity
    doubling adds ``ns_per_way_doubling`` (the paper's TTL context puts the
    2:1-mux floor at ~11 ns for discrete parts).
    """

    base_size: int
    base_ns: float
    ns_per_doubling: float
    ns_per_way_doubling: float

    def cycle_ns(self, size: int, associativity: int = 1) -> float:
        if size <= 0 or associativity < 1:
            raise ValueError("size must be positive and associativity >= 1")
        doublings = math.log2(size / self.base_size)
        way_doublings = math.log2(associativity)
        return (
            self.base_ns
            + self.ns_per_doubling * doublings
            + self.ns_per_way_doubling * way_doublings
        )


@dataclass
class CandidateEvaluation:
    """One evaluated configuration."""

    config: SystemConfig
    total_cycles: float
    l2_size: Optional[int]
    l2_associativity: Optional[int]
    l2_cycle_cpu_cycles: Optional[float]


@dataclass
class OptimizationResult:
    """Outcome of a hierarchy search."""

    best: CandidateEvaluation
    evaluations: List[CandidateEvaluation]

    @property
    def best_config(self) -> SystemConfig:
        return self.best.config

    def sorted_by_time(self) -> List[CandidateEvaluation]:
        return sorted(self.evaluations, key=lambda e: e.total_cycles)


class HierarchyOptimizer:
    """Searches L2 organisations under a technology model.

    The L1 and the rest of the machine stay fixed (the paper's sweeps do
    the same); candidates are the cross product of sizes and set sizes,
    with each candidate's cycle time dictated by the technology model,
    rounded **up** to whole CPU cycles (a synchronous interface cannot use
    fractional cycles).
    """

    def __init__(
        self,
        base_config: SystemConfig,
        technology: TechnologyModel,
        traces: Sequence[Trace],
        level: int = 2,
    ) -> None:
        if not traces:
            raise ValueError("need at least one trace")
        if not 1 <= level <= base_config.depth:
            raise ValueError("level outside the hierarchy")
        self.base_config = base_config
        self.technology = technology
        self.traces = list(traces)
        self.level = level

    def _candidate_config(
        self, size: int, associativity: int
    ) -> Tuple[SystemConfig, float]:
        """The candidate's configuration and its rounded cycle time."""
        cycle_ns = self.technology.cycle_ns(size, associativity)
        cpu = self.base_config.cpu.cycle_ns
        cycle_cpu = max(1.0, math.ceil(cycle_ns / cpu))
        config = self.base_config.with_level(
            self.level - 1,
            size_bytes=size,
            associativity=associativity,
            cycle_cpu_cycles=cycle_cpu,
        )
        return config, cycle_cpu

    def _evaluate_grid(
        self, candidates: Sequence[Tuple[int, int]]
    ) -> List[CandidateEvaluation]:
        """Evaluate (size, ways) candidates through the sweep executor."""
        prepared = [
            self._candidate_config(size, ways) for size, ways in candidates
        ]
        results = sweep_functional(self.traces, [c for c, _ in prepared])
        evaluations = []
        for (size, ways), (config, cycle_cpu), row in zip(
            candidates, prepared, results
        ):
            total = sum(
                affine_model_for(result, config).total_cycles(cycle_cpu)
                for result in row
            )
            evaluations.append(
                CandidateEvaluation(
                    config=config,
                    total_cycles=total,
                    l2_size=size,
                    l2_associativity=ways,
                    l2_cycle_cpu_cycles=cycle_cpu,
                )
            )
        return evaluations

    def evaluate(self, size: int, associativity: int) -> CandidateEvaluation:
        """Evaluate one candidate using the affine counts method."""
        return self._evaluate_grid([(size, associativity)])[0]

    def optimize(
        self,
        sizes: Sequence[int],
        set_sizes: Sequence[int] = (1, 2, 4, 8),
    ) -> OptimizationResult:
        """Exhaustive search over the candidate grid."""
        if not sizes or not set_sizes:
            raise ValueError("need candidate sizes and set sizes")
        block = self.base_config.levels[self.level - 1].block_bytes
        candidates = [
            (size, ways)
            for size in sizes
            for ways in set_sizes
            if ways * block <= size  # skip degenerate geometries
        ]
        if not candidates:
            raise ValueError("no feasible candidates")
        evaluations = self._evaluate_grid(candidates)
        best = min(evaluations, key=lambda e: e.total_cycles)
        return OptimizationResult(best=best, evaluations=evaluations)


@dataclass
class JointCandidate:
    """One (L1 size, L2 cycle time) point of the joint design space."""

    l1_size: int
    cpu_cycle_ns: float
    l2_cycle_cpu_cycles: float
    total_ns: float


def optimal_l1_sweep(
    base_config: SystemConfig,
    l1_technology: TechnologyModel,
    traces: Sequence[Trace],
    l1_sizes: Sequence[int],
    l2_cycle_ns_values: Sequence[float],
) -> List[List[JointCandidate]]:
    """Joint L1-size / L2-speed design space (the paper's section 6 claim).

    The on-chip L1 sets the CPU clock: a bigger L1 means a slower cycle for
    *every* instruction (``l1_technology`` gives the cycle time).  A slower
    L2 raises the L1 miss penalty, which pushes the optimal L1 larger --
    "as the L2 cycle time gets much above 4 CPU cycles, the optimal L1
    cache size is significantly increased above its minimum".

    Returns one candidate list per L2 speed, each covering every L1 size;
    total time is in nanoseconds because the CPU cycle varies across
    candidates.  Event counts are reused across L2 speeds (they do not
    depend on timing).
    """
    if not traces:
        raise ValueError("need at least one trace")
    if not l1_sizes or not l2_cycle_ns_values:
        raise ValueError("need candidate L1 sizes and L2 speeds")
    # At most one functional run per (L1 size, trace) -- the executor
    # memoises, and the CPU-cycle variation across candidates is timing
    # only, so a repeated L1 size costs nothing.  Models are per L1 size.
    sized_configs = []
    for l1_size in l1_sizes:
        cpu_ns = l1_technology.cycle_ns(l1_size, 1)
        sized_configs.append(
            SystemConfig(
                levels=(
                    base_config.levels[0].with_(size_bytes=l1_size),
                ) + base_config.levels[1:],
                cpu=type(base_config.cpu)(cycle_ns=cpu_ns),
                memory=base_config.memory,
                bus_width_words=base_config.bus_width_words,
                write_buffer_entries=base_config.write_buffer_entries,
                backplane_cycle_ns=base_config.effective_backplane_ns,
            )
        )
    results = sweep_functional(traces, sized_configs)
    models = {}
    for l1_size, config, row in zip(l1_sizes, sized_configs, results):
        base_sum = events_sum = 0.0
        for result in row:
            model = affine_model_for(result, config)
            base_sum += model.base
            events_sum += model.events_per_cycle
        models[l1_size] = (config, base_sum, events_sum, config.cpu.cycle_ns)
    sweeps: List[List[JointCandidate]] = []
    for l2_ns in l2_cycle_ns_values:
        candidates = []
        for l1_size in l1_sizes:
            _config, base_cycles, events, cpu_ns = models[l1_size]
            l2_cycles = max(1.0, math.ceil(l2_ns / cpu_ns))
            total_cycles = base_cycles + events * l2_cycles
            candidates.append(
                JointCandidate(
                    l1_size=l1_size,
                    cpu_cycle_ns=cpu_ns,
                    l2_cycle_cpu_cycles=l2_cycles,
                    total_ns=total_cycles * cpu_ns,
                )
            )
        sweeps.append(candidates)
    return sweeps


def single_level_ceiling(
    base_config: SystemConfig,
    technology: TechnologyModel,
    traces: Sequence[Trace],
    sizes: Sequence[int],
) -> OptimizationResult:
    """Optimise a single-level machine (no L2) under the same technology.

    Uses the timing simulator (the affine method models two-level systems).
    Demonstrates the paper's single-level performance ceiling: execution
    time is convex in size once the technology model charges for growth.
    """
    if not traces:
        raise ValueError("need at least one trace")
    configs = []
    for size in sizes:
        cycle_ns = technology.cycle_ns(size, 1)
        cycle_cpu = max(1.0, math.ceil(cycle_ns / base_config.cpu.cycle_ns))
        level = base_config.levels[0].with_(
            size_bytes=size, cycle_cpu_cycles=cycle_cpu
        )
        configs.append(
            SystemConfig(
                levels=(level,),
                cpu=base_config.cpu,
                memory=base_config.memory,
                bus_width_words=base_config.bus_width_words,
                write_buffer_entries=base_config.write_buffer_entries,
            )
        )
    results = sweep_timing(traces, configs)
    evaluations = [
        CandidateEvaluation(
            config=config,
            total_cycles=sum(timing.total_cycles for timing in row),
            l2_size=None,
            l2_associativity=None,
            l2_cycle_cpu_cycles=None,
        )
        for config, row in zip(configs, results)
    ]
    best = min(evaluations, key=lambda e: e.total_cycles)
    return OptimizationResult(best=best, evaluations=evaluations)
