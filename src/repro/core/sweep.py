"""The shared sweep executor.

Every sweep in the repository evaluates a grid of configurations against a
trace suite.  This module is the single fan-out point for that work:
:func:`sweep_functional` and :func:`sweep_timing` take ``(traces,
configs)`` and return a dense ``results[config][trace]`` grid, and every
sweep site (``core/design_space.py``, ``core/optimizer.py``,
``core/metrics.py``, ``experiments/equations.py``,
``experiments/extensions.py``) routes through them instead of rolling its
own loop.

What the executor layers on top of a plain double loop:

* **Memoisation** (functional sweeps): cells are first deduplicated
  through :mod:`repro.sim.memo`, so timing-only configuration variations
  and repeated sub-sweeps (e.g. the shared direct-mapped baseline of the
  three Figure 5 maps) simulate each distinct functional configuration
  exactly once per trace.
* **Parallelism**: outstanding cells are chunked and fanned out over a
  supervised worker pool (:mod:`repro.resilience.executor`).  Traces ship
  to each worker once (at spawn), not per cell.  Results come back in
  deterministic cell order regardless of worker scheduling.
* **Fault isolation**: a failed, hung or killed worker no longer takes
  the sweep down with it.  Cells are retried with exponential backoff
  (``REPRO_SWEEP_RETRIES``), bounded by per-cell wall-clock timeouts
  (``REPRO_SWEEP_TIMEOUT``), and dead workers are re-created.  Cells
  that exhaust their budget surface as structured
  :class:`~repro.resilience.policy.FailureReport` records -- re-raised
  by default, or returned as a partial grid with
  ``on_failure="partial"`` -- never as silent all-or-nothing loss.
* **Checkpointing**: when a :func:`repro.resilience.journal.journaling`
  context is active, every completed cell is fsynced to an append-only
  journal as it lands, and a resumed sweep restores journaled cells
  instead of re-simulating them (``mlcache run --resume``).
* **Graceful degradation**: one worker (the default on a single-CPU
  host), tiny workloads, or a host where worker processes cannot be
  created at all (e.g. a sandbox that forbids ``fork``) all fall back to
  the same serial path with identical results.

The worker count comes from ``REPRO_SWEEP_WORKERS`` when set (``0``/``1``
force serial; negatives are rejected; values above :data:`MAX_WORKERS`
clamp), otherwise from ``os.cpu_count()``; see ``docs/performance.md``
and ``docs/resilience.md``.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.audit import manifest as run_manifest
from repro.core import clock, envcfg
from repro.audit.invariants import (
    audit_enabled,
    audit_functional_result,
    audit_timing_result,
)
from repro.resilience import executor as resilient_executor
from repro.resilience.executor import Cell, ExecOutcome
from repro.resilience.faults import FaultPlan, cell_signature
from repro.resilience.journal import current_journal
from repro.resilience.policy import FailureReport, RetryPolicy, SweepFailure
from repro.sim import memo
from repro.sim.config import SystemConfig
from repro.sim.fast import run_functional
from repro.sim.functional import FunctionalResult
from repro.sim.stackdist import (
    StackdistGridResult,
    grid_projection,
    run_stackdist_grid,
    stackdist_eligible,
)
from repro.sim.timing import TimingResult, TimingSimulator
from repro.trace.record import Trace

#: Environment knob for the pool size (0 or 1 disables the pool).
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Environment knob gating the stack-distance grid planner (on by
#: default; ``0`` forces one simulation per cell).
STACKDIST_ENV = "REPRO_STACKDIST"

#: Upper bound on the worker count.  Requests beyond it (a fat-fingered
#: ``REPRO_SWEEP_WORKERS=10000``) clamp instead of fork-bombing the host.
MAX_WORKERS = 64

#: Don't spin up a pool for fewer cells than this; worker startup plus
#: trace shipping costs more than the simulation it would parallelise.
MIN_CELLS_FOR_POOL = 4

#: Chunks per worker: small enough to amortise dispatch, large enough to
#: balance uneven cell costs (big caches simulate faster than small ones).
#: A chunk that fails is split back into single cells by the executor, so
#: chunking never weakens fault isolation.
_CHUNKS_PER_WORKER = 4

#: A stack-distance group must cover at least this many outstanding
#: cells; a lone cell is cheaper on the plain fast path than a pass that
#: also derives four associativities nobody asked for.  Exception: a
#: singleton whose *upstream* levels are shared with other planned
#: passes rides solo anyway -- the cached upstream replay
#: (:mod:`repro.sim.stackdist`) makes the pass cheaper than a full
#: per-cell simulation.
_MIN_GROUP_MEMBERS = 2


def stackdist_enabled() -> bool:
    """Whether the grid planner may batch cells through the stack pass."""
    return bool(envcfg.get(STACKDIST_ENV))


def _clamp_workers(value: int, origin: str) -> int:
    """Pin the worker-count domain: negatives are an error (a sweep
    cannot run with less than no workers -- reject rather than guess),
    ``0``/``1`` mean serial, and anything above :data:`MAX_WORKERS`
    clamps."""
    if value < 0:
        raise ValueError(f"{origin} must be non-negative, got {value}")
    return max(1, min(value, MAX_WORKERS))


def sweep_workers(explicit: Optional[int] = None) -> int:
    """Resolve the worker count (explicit arg > env knob > CPU count)."""
    if explicit is not None:
        return _clamp_workers(int(explicit), "workers")
    configured = envcfg.get(WORKERS_ENV)
    if configured is not None:
        return _clamp_workers(configured, WORKERS_ENV)
    return _clamp_workers(os.cpu_count() or 1, "cpu_count")


def _chunked(jobs: List, chunks: int) -> List[List]:
    """Split ``jobs`` into at most ``chunks`` contiguous, balanced runs."""
    chunks = max(1, min(chunks, len(jobs)))
    size, remainder = divmod(len(jobs), chunks)
    out = []
    start = 0
    for i in range(chunks):
        end = start + size + (1 if i < remainder else 0)
        out.append(jobs[start:end])
        start = end
    return out


def _run_functional_cell(traces: Sequence[Trace], cell: Cell) -> FunctionalResult:
    """Memoised functional evaluation of one cell.

    Routed through this module's ``run_functional`` (not the memo
    module's) so tests can poison the simulation entry point; the memo
    bookkeeping here is what makes worker-side hit/miss counters real.
    """
    trace = traces[cell.trace_index]
    key = memo.memo_key(trace, cell.config)
    cached = memo.lookup(key)
    if cached is None:
        cached = run_functional(trace, cell.config)
        memo.store(key, cached)
    if cached.config is not cell.config:
        cached = dataclasses.replace(cached, config=cell.config)
    return cached


def _run_timing_cell(traces: Sequence[Trace], cell: Cell) -> TimingResult:
    return TimingSimulator(cell.config).run(traces[cell.trace_index])


def _run_stackdist_cell(traces: Sequence[Trace], cell: Cell) -> StackdistGridResult:
    """One single-pass grid group: every member associativity at once."""
    return run_stackdist_grid(traces[cell.trace_index], cell.config)


def _plan_stackdist(
    pending: List[Cell],
    pending_keys: List[Tuple],
    enabled: bool,
) -> Tuple[List[Cell], List[List[Tuple]], List[Cell], List[Tuple]]:
    """Partition outstanding cells into stack-distance groups and singles.

    Cells whose configurations are :func:`stackdist_eligible` and share a
    :func:`grid_projection` (same trace, same deepest-level set count and
    policies -- they differ only in deepest associativity) are covered by
    **one** stack pass.  Returns ``(groups, group_member_keys, singles,
    single_keys)``; both cell lists are renumbered from zero because each
    becomes its own executor batch (failure reports carry batch-local
    cell ids).  Group order follows the first member's position and
    singles keep their original relative order, so scheduling stays
    deterministic.
    """
    if not enabled:
        return [], [], list(pending), list(pending_keys)
    buckets: dict = {}
    for index, cell in enumerate(pending):
        if stackdist_eligible(cell.config):
            bucket = (cell.trace_index, grid_projection(cell.config))
            buckets.setdefault(bucket, []).append(index)
    # How many eligible cells share each (trace, upstream-levels) front:
    # projection[1] is the upstream slice (empty at depth 1), so a
    # count >= 2 means a solo pass reuses a replay paid for anyway.
    front_share: dict = {}
    for (trace_index, projection), members in buckets.items():
        if projection[1]:
            front = (trace_index, projection[0], projection[1])
            front_share[front] = front_share.get(front, 0) + len(members)
    groups: List[Cell] = []
    group_member_keys: List[List[Tuple]] = []
    grouped = set()
    for (trace_index, projection), members in buckets.items():
        shared_front = bool(projection[1]) and (
            front_share[(trace_index, projection[0], projection[1])] >= 2
        )
        if len(members) < _MIN_GROUP_MEMBERS and not shared_front:
            continue
        grouped.update(members)
        groups.append(
            Cell(
                len(groups),
                trace_index,
                pending[members[0]].config,
                cell_signature("stackdist", trace_index, projection),
            )
        )
        group_member_keys.append([pending_keys[m] for m in members])
    singles: List[Cell] = []
    single_keys: List[Tuple] = []
    for index, cell in enumerate(pending):
        if index in grouped:
            continue
        singles.append(
            Cell(len(singles), cell.trace_index, cell.config, cell.signature)
        )
        single_keys.append(pending_keys[index])
    return groups, group_member_keys, singles, single_keys


def _make_validate(kind: str, traces: Sequence[Trace], faults) -> Optional[Callable]:
    """Re-audit results at sweep intake when fault injection is active.

    The simulators audit themselves *inside* each run; an injected
    ``corrupt_result`` happens after that, so the intake check is what
    catches it (and turns it into a retry instead of a poisoned grid).
    """
    if faults is None or not audit_enabled():
        return None
    if kind == "stackdist":
        def validate(cell: Cell, result) -> None:
            for _, member in result.results:
                audit_functional_result(
                    traces[cell.trace_index], member, source="sweep-intake"
                )
        return validate
    checker = audit_functional_result if kind == "functional" else audit_timing_result
    def validate(cell: Cell, result) -> None:
        checker(traces[cell.trace_index], result, source="sweep-intake")
    return validate


def _pool_map(
    kind: str,
    compute: Callable,
    cells: List[Cell],
    traces: List[Trace],
    workers: int,
    policy: RetryPolicy,
    faults,
    validate,
    on_result,
) -> Optional[ExecOutcome]:
    """Fan ``cells`` out over the supervised pool; ``None`` if no worker
    process could be created (the caller falls back to the serial path).

    Only worker *creation* is allowed to fail softly.  A failure inside
    a worker -- a simulation error, a hang, a death -- is retried and,
    if permanent, reported; silently re-running a failing grid serially
    would mask the error (and could "succeed" with different results).
    """
    chunks = _chunked(cells, workers * _CHUNKS_PER_WORKER)
    return resilient_executor.run_pooled(
        kind, compute, chunks, traces, workers, policy,
        faults=faults, validate=validate, on_result=on_result,
    )


def _run_cells(
    kind: str,
    compute: Callable,
    cells: List[Cell],
    traces: List[Trace],
    workers: Optional[int],
    faults,
    on_result,
) -> Tuple[ExecOutcome, int, bool]:
    """Evaluate ``cells`` (deterministic order) in parallel when it pays.

    Returns ``(outcome, workers_resolved, pooled)`` so callers can report
    how the work was actually executed.
    """
    policy = RetryPolicy.from_env()
    validate = _make_validate(kind, traces, faults)
    count = sweep_workers(workers)
    if count > 1 and len(cells) >= MIN_CELLS_FOR_POOL:
        outcome = _pool_map(
            kind, compute, cells, traces, count, policy, faults, validate, on_result
        )
        if outcome is not None:
            return outcome, count, True
    outcome = resilient_executor.run_serial(
        kind, compute, cells, traces, policy,
        faults=faults, validate=validate, on_result=on_result,
    )
    return outcome, count, False


def _settle_failures(
    outcome: ExecOutcome,
    on_failure: str,
    failures: Optional[List[FailureReport]],
) -> None:
    """Surface permanent failures: report them, then raise or degrade."""
    if failures is not None:
        failures.extend(outcome.failures)
    if not outcome.failures:
        return
    run_manifest.note_failures(outcome.failures)
    if on_failure == "partial":
        return
    for report in outcome.failures:
        if report.exception is not None:
            raise report.exception
    raise SweepFailure(outcome.failures)


def sweep_functional(
    traces: Sequence[Trace],
    configs: Sequence[SystemConfig],
    workers: Optional[int] = None,
    on_failure: str = "raise",
    failures: Optional[List[FailureReport]] = None,
) -> List[List[Optional[FunctionalResult]]]:
    """Functional-simulate every (config, trace) cell of the grid.

    Returns ``results`` with ``results[i][j]`` the
    :class:`~repro.sim.functional.FunctionalResult` of ``configs[i]`` on
    ``traces[j]``.  Cells sharing a memoisation key (timing-only config
    differences, or results already cached by an earlier sweep) are
    simulated once; the rest are fanned out over the worker pool.

    ``on_failure`` controls what happens when a cell fails permanently
    (after retries): ``"raise"`` (default) re-raises the first failure's
    exception, ``"partial"`` leaves failed cells as ``None`` in the grid.
    Either way the reports are appended to ``failures`` (when given) and
    to any active run manifest, and completed cells are already in the
    memo cache and the active checkpoint journal.
    """
    traces = list(traces)
    configs = list(configs)
    if not traces or not configs:
        raise ValueError("need at least one trace and one configuration")
    with telemetry.span(
        "sweep.functional", configs=len(configs), traces=len(traces)
    ):
        return _sweep_functional_grid(
            traces, configs, workers, on_failure, failures
        )


def _sweep_functional_grid(
    traces: List[Trace],
    configs: List[SystemConfig],
    workers: Optional[int],
    on_failure: str,
    failures: Optional[List[FailureReport]],
) -> List[List[Optional[FunctionalResult]]]:
    watch = clock.Stopwatch()
    journal = current_journal()
    faults = FaultPlan.from_env()
    with telemetry.span("sweep.plan"):
        keys = [
            [memo.memo_key(trace, config) for trace in traces]
            for config in configs
        ]
        # One representative cell per distinct un-cached key, in
        # first-seen (config-major) order so results are reproducible
        # cell by cell.
        pending: List[Cell] = []
        pending_keys: List[Tuple] = []
        seen = set()
        resumed = 0
        for i, config in enumerate(configs):
            for j in range(len(traces)):
                key = keys[i][j]
                if key in seen or memo.peek(key) is not None:
                    continue
                if journal is not None:
                    restored = journal.restore("functional", key, config)
                    if restored is not None:
                        memo.store(key, restored)
                        resumed += 1
                        continue
                seen.add(key)
                pending.append(
                    Cell(
                        len(pending), j, config,
                        cell_signature("functional", j, key[1]),
                    )
                )
                pending_keys.append(key)

        # Plan: cells that differ only in deepest-level associativity
        # share one stack-distance pass; everything else simulates per
        # cell.
        groups, group_member_keys, singles, single_keys = _plan_stackdist(
            pending, pending_keys, stackdist_enabled()
        )

    def on_group_result(cell: Cell, result: StackdistGridResult) -> None:
        # Fan every derived member into the memo cache: the members this
        # sweep asked for materialise below, and extras turn later
        # per-cell runs into hits.  Only the *requested* members are
        # journaled (one fsync per pass) -- persisting the speculative
        # extras would grow the journal ~5x on direct-mapped sweeps.
        trace = traces[cell.trace_index]
        requested = set(group_member_keys[cell.cell_id])
        batch = []
        for _, member in result.results:
            key = memo.memo_key(trace, member.config)
            memo.store(key, member)
            if key in requested:
                batch.append((key, member))
        if journal is not None:
            journal.record_cells("functional", batch)

    def on_result(cell: Cell, result: FunctionalResult) -> None:
        key = single_keys[cell.cell_id]
        memo.store(key, result)
        if journal is not None:
            journal.record_cell("functional", key, result)

    group_outcome, outcome = ExecOutcome(), ExecOutcome()
    used_workers, pooled = sweep_workers(workers), False
    # The workers' only global mutation is the process-local memo/front
    # caches: each spawn worker fills its own copy, and the stats are
    # folded back through memo.fold_worker_stats -- sanctioned state.
    if groups:
        group_outcome, used_workers, pooled = _run_cells(
            "stackdist", _run_stackdist_cell, groups, traces, workers,  # repro: noqa RPR009
            faults, on_group_result,
        )
    if singles:
        outcome, used_workers, singles_pooled = _run_cells(
            "functional", _run_functional_cell, singles, traces, workers,  # repro: noqa RPR009
            faults, on_result,
        )
        pooled = pooled or singles_pooled
    failed_keys = {
        single_keys[report.cell_id]
        for report in outcome.failures
        if report.cell_id >= 0
    }
    for report in group_outcome.failures:
        if report.cell_id >= 0:
            failed_keys.update(group_member_keys[report.cell_id])
    run_manifest.note_sweep(
        kind="functional",
        configs=len(configs),
        traces=len(traces),
        simulated=len(singles),
        workers=used_workers,
        pooled=pooled,
        seconds=watch.elapsed_s(),
        resumed=resumed,
        retries=group_outcome.retries + outcome.retries,
        timeouts=group_outcome.timeouts + outcome.timeouts,
        pool_restarts=group_outcome.pool_restarts + outcome.pool_restarts,
        failed=len(group_outcome.failures) + len(outcome.failures),
        stackdist_groups=len(groups),
        cells_derived=len(pending) - len(singles),
    )
    _settle_failures(group_outcome, on_failure, failures)
    _settle_failures(outcome, on_failure, failures)
    return [
        [
            None if keys[i][j] in failed_keys
            else memo.run_functional_memo(traces[j], configs[i])
            for j in range(len(traces))
        ]
        for i in range(len(configs))
    ]


def sweep_timing(
    traces: Sequence[Trace],
    configs: Sequence[SystemConfig],
    workers: Optional[int] = None,
    on_failure: str = "raise",
    failures: Optional[List[FailureReport]] = None,
) -> List[List[Optional[TimingResult]]]:
    """Timing-simulate every (config, trace) cell of the grid.

    Returns ``results[i][j]`` for ``configs[i]`` on ``traces[j]``.  Timing
    results depend on every configuration field, so there is no
    memoisation -- just the shared fan-out, checkpointing (keyed by
    :func:`repro.sim.memo.timing_key`) and fault isolation.  ``on_failure``
    behaves as in :func:`sweep_functional`.
    """
    traces = list(traces)
    configs = list(configs)
    if not traces or not configs:
        raise ValueError("need at least one trace and one configuration")
    with telemetry.span(
        "sweep.timing", configs=len(configs), traces=len(traces)
    ):
        return _sweep_timing_grid(traces, configs, workers, on_failure, failures)


def _sweep_timing_grid(
    traces: List[Trace],
    configs: List[SystemConfig],
    workers: Optional[int],
    on_failure: str,
    failures: Optional[List[FailureReport]],
) -> List[List[Optional[TimingResult]]]:
    watch = clock.Stopwatch()
    journal = current_journal()
    faults = FaultPlan.from_env()
    width = len(traces)
    flat: List[Optional[TimingResult]] = [None] * (len(configs) * width)
    pending: List[Cell] = []
    pending_keys: List[Tuple] = []
    pending_slots: List[int] = []
    resumed = 0
    with telemetry.span("sweep.plan"):
        for i, config in enumerate(configs):
            projection = memo.timing_projection(config)
            for j, trace in enumerate(traces):
                key = (memo.trace_fingerprint(trace), projection)
                if journal is not None:
                    restored = journal.restore("timing", key, config)
                    if restored is not None:
                        flat[i * width + j] = restored
                        resumed += 1
                        continue
                pending.append(
                    Cell(
                        len(pending), j, config,
                        cell_signature("timing", j, projection),
                    )
                )
                pending_keys.append(key)
                pending_slots.append(i * width + j)

    def on_result(cell: Cell, result: TimingResult) -> None:
        flat[pending_slots[cell.cell_id]] = result
        if journal is not None:
            journal.record_cell("timing", pending_keys[cell.cell_id], result)

    outcome = ExecOutcome()
    used_workers, pooled = sweep_workers(workers), False
    if pending:
        outcome, used_workers, pooled = _run_cells(
            "timing", _run_timing_cell, pending, traces, workers,
            faults, on_result,
        )
    run_manifest.note_sweep(
        kind="timing",
        configs=len(configs),
        traces=len(traces),
        simulated=len(pending),
        workers=used_workers,
        pooled=pooled,
        seconds=watch.elapsed_s(),
        resumed=resumed,
        retries=outcome.retries,
        timeouts=outcome.timeouts,
        pool_restarts=outcome.pool_restarts,
        failed=len(outcome.failures),
    )
    _settle_failures(outcome, on_failure, failures)
    return [flat[i * width:(i + 1) * width] for i in range(len(configs))]
