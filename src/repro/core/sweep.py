"""The shared sweep executor.

Every sweep in the repository evaluates a grid of configurations against a
trace suite.  This module is the single fan-out point for that work:
:func:`sweep_functional` and :func:`sweep_timing` take ``(traces,
configs)`` and return a dense ``results[config][trace]`` grid, and every
sweep site (``core/design_space.py``, ``core/optimizer.py``,
``core/metrics.py``, ``experiments/equations.py``,
``experiments/extensions.py``) routes through them instead of rolling its
own loop.

What the executor layers on top of a plain double loop:

* **Memoisation** (functional sweeps): cells are first deduplicated
  through :mod:`repro.sim.memo`, so timing-only configuration variations
  and repeated sub-sweeps (e.g. the shared direct-mapped baseline of the
  three Figure 5 maps) simulate each distinct functional configuration
  exactly once per trace.
* **Parallelism**: outstanding cells are chunked and fanned out over a
  process pool.  Traces ship to each worker once (pool initialiser), not
  per cell.  Results come back in deterministic cell order regardless of
  worker scheduling.
* **Graceful degradation**: one worker (the default on a single-CPU
  host), tiny workloads, or a pool that cannot be created at all (e.g. a
  sandbox that forbids ``fork``) all fall back to the same serial path
  with identical results.

The worker count comes from ``REPRO_SWEEP_WORKERS`` when set (``0``/``1``
force serial), otherwise from ``os.cpu_count()``; see
``docs/performance.md``.
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.audit import manifest as run_manifest
from repro.sim import memo
from repro.sim.config import SystemConfig
from repro.sim.fast import run_functional
from repro.sim.functional import FunctionalResult
from repro.sim.timing import TimingResult, TimingSimulator
from repro.trace.record import Trace

#: Environment knob for the pool size (0 or 1 disables the pool).
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Don't spin up a pool for fewer cells than this; pool startup plus
#: trace pickling costs more than the simulation it would parallelise.
MIN_CELLS_FOR_POOL = 4

#: Chunks per worker: small enough to amortise dispatch, large enough to
#: balance uneven cell costs (big caches simulate faster than small ones).
_CHUNKS_PER_WORKER = 4

#: Worker-process globals, installed by the pool initialiser so traces
#: are pickled once per worker instead of once per cell.
_worker_traces: Optional[List[Trace]] = None


def sweep_workers(explicit: Optional[int] = None) -> int:
    """Resolve the worker count (explicit arg > env knob > CPU count)."""
    if explicit is not None:
        return max(1, int(explicit))
    env = os.environ.get(WORKERS_ENV)
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {env!r}"
            ) from None
    return max(1, os.cpu_count() or 1)


def _init_worker(traces: List[Trace]) -> None:
    global _worker_traces
    _worker_traces = traces


def _run_functional_chunk(
    chunk: List[Tuple[int, SystemConfig]]
) -> List[FunctionalResult]:
    assert _worker_traces is not None
    return [
        run_functional(_worker_traces[trace_index], config)
        for trace_index, config in chunk
    ]


def _run_timing_chunk(
    chunk: List[Tuple[int, SystemConfig]]
) -> List[TimingResult]:
    assert _worker_traces is not None
    return [
        TimingSimulator(config).run(_worker_traces[trace_index])
        for trace_index, config in chunk
    ]


def _chunked(jobs: List, chunks: int) -> List[List]:
    """Split ``jobs`` into at most ``chunks`` contiguous, balanced runs."""
    chunks = max(1, min(chunks, len(jobs)))
    size, remainder = divmod(len(jobs), chunks)
    out = []
    start = 0
    for i in range(chunks):
        end = start + size + (1 if i < remainder else 0)
        out.append(jobs[start:end])
        start = end
    return out


def _pool_map(
    runner: Callable[[List], List],
    jobs: List[Tuple[int, SystemConfig]],
    traces: List[Trace],
    workers: int,
) -> Optional[List]:
    """Fan ``jobs`` out over a process pool; ``None`` if no pool could be
    created (the caller falls back to the serial path).

    Only pool *creation* is allowed to fail softly: a sandbox that forbids
    ``fork`` degrades to the serial path with identical results.  An
    exception raised by a *worker* -- a simulation error -- propagates to
    the caller unchanged; silently re-running a failing grid serially
    would mask the error (and could "succeed" with different results).
    """
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        context = multiprocessing.get_context()
    chunks = _chunked(jobs, workers * _CHUNKS_PER_WORKER)
    try:
        pool = context.Pool(
            processes=min(workers, len(chunks)),
            initializer=_init_worker,
            initargs=(traces,),
        )
    except (OSError, ValueError, ImportError, PermissionError):
        return None
    with pool:
        chunk_results = pool.map(runner, chunks)
    return [result for chunk in chunk_results for result in chunk]


def _run_jobs(
    runner: Callable[[List], List],
    jobs: List[Tuple[int, SystemConfig]],
    traces: List[Trace],
    workers: Optional[int],
) -> Tuple[List, int, bool]:
    """Evaluate ``jobs`` (deterministic order) in parallel when it pays.

    Returns ``(results, workers_resolved, pooled)`` so callers can report
    how the work was actually executed.
    """
    count = sweep_workers(workers)
    if count > 1 and len(jobs) >= MIN_CELLS_FOR_POOL:
        results = _pool_map(runner, jobs, traces, count)
        if results is not None:
            return results, count, True
    _init_worker(traces)
    return runner(jobs), count, False


def sweep_functional(
    traces: Sequence[Trace],
    configs: Sequence[SystemConfig],
    workers: Optional[int] = None,
) -> List[List[FunctionalResult]]:
    """Functional-simulate every (config, trace) cell of the grid.

    Returns ``results`` with ``results[i][j]`` the
    :class:`~repro.sim.functional.FunctionalResult` of ``configs[i]`` on
    ``traces[j]``.  Cells sharing a memoisation key (timing-only config
    differences, or results already cached by an earlier sweep) are
    simulated once; the rest are fanned out over the worker pool.
    """
    started = time.perf_counter()
    traces = list(traces)
    configs = list(configs)
    if not traces or not configs:
        raise ValueError("need at least one trace and one configuration")
    keys = [
        [memo.memo_key(trace, config) for trace in traces]
        for config in configs
    ]
    # One representative job per distinct un-cached key, in first-seen
    # (config-major) order so results are reproducible cell by cell.
    pending: List[Tuple[int, SystemConfig]] = []
    pending_keys: List[Tuple] = []
    seen = set()
    for i, config in enumerate(configs):
        for j in range(len(traces)):
            key = keys[i][j]
            if key in seen or memo.lookup(key) is not None:
                continue
            seen.add(key)
            pending.append((j, config))
            pending_keys.append(key)
    used_workers, pooled = sweep_workers(workers), False
    if pending:
        fresh, used_workers, pooled = _run_jobs(
            _run_functional_chunk, pending, traces, workers
        )
        for key, result in zip(pending_keys, fresh):
            memo.store(key, result)
    grid = [
        [memo.run_functional_memo(trace, config) for trace in traces]
        for config in configs
    ]
    run_manifest.note_sweep(
        kind="functional",
        configs=len(configs),
        traces=len(traces),
        simulated=len(pending),
        workers=used_workers,
        pooled=pooled,
        seconds=time.perf_counter() - started,
    )
    return grid


def sweep_timing(
    traces: Sequence[Trace],
    configs: Sequence[SystemConfig],
    workers: Optional[int] = None,
) -> List[List[TimingResult]]:
    """Timing-simulate every (config, trace) cell of the grid.

    Returns ``results[i][j]`` for ``configs[i]`` on ``traces[j]``.  Timing
    results depend on every configuration field, so there is no
    memoisation -- just the shared fan-out.
    """
    started = time.perf_counter()
    traces = list(traces)
    configs = list(configs)
    if not traces or not configs:
        raise ValueError("need at least one trace and one configuration")
    jobs = [
        (j, config) for config in configs for j in range(len(traces))
    ]
    flat, used_workers, pooled = _run_jobs(
        _run_timing_chunk, jobs, traces, workers
    )
    width = len(traces)
    run_manifest.note_sweep(
        kind="timing",
        configs=len(configs),
        traces=len(traces),
        simulated=len(jobs),
        workers=used_workers,
        pooled=pooled,
        seconds=time.perf_counter() - started,
    )
    return [flat[i * width:(i + 1) * width] for i in range(len(configs))]
