"""Set-associativity break-even implementation-time maps (section 5).

For each point of the (L2 size, L2 cycle time) design plane, the break-even
implementation time of set size ``k`` is the cycle-time increase over the
direct-mapped cache that exactly cancels the miss-ratio benefit: if the
implementation of associativity costs more than this, it loses.

With the affine time models ``T_1(c) = a_1 + b_1 c`` (direct-mapped) and
``T_k(c) = a_k + b_k c`` (k-way), the cumulative break-even time at base
cycle time ``c`` solves ``T_k(c + dt) = T_1(c)``::

    dt = (a_1 - a_k + (b_1 - b_k) * c) / b_k

which reduces to Equation 3 when only the memory-fetch counts differ.
Incremental times (k versus k/2) use the same formula against the k/2
models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.design_space import execution_time_grid, SpeedSizeGrid
from repro.core.sweep import sweep_functional
from repro.sim.config import SystemConfig
from repro.trace.record import Trace


@dataclass
class BreakevenMap:
    """Break-even implementation times over the design plane.

    ``nanoseconds[i, j]`` is the cumulative break-even time (ns) for
    ``set_size``-way associativity at L2 size ``sizes[i]`` and base
    direct-mapped cycle time ``cycle_times[j]`` (CPU cycles).
    """

    set_size: int
    baseline_set_size: int
    sizes: List[int]
    cycle_times: List[float]
    nanoseconds: np.ndarray

    def at(self, size: int, cycle_time: float) -> float:
        return float(
            self.nanoseconds[
                self.sizes.index(size), self.cycle_times.index(cycle_time)
            ]
        )

    def region_at_least(self, budget_ns: float) -> np.ndarray:
        """Boolean mask of the design plane where at least ``budget_ns`` is
        available for the implementation of associativity (the paper's
        shaded contour regions)."""
        return self.nanoseconds >= budget_ns


def _grid_for_set_size(
    traces: Sequence[Trace],
    config: SystemConfig,
    sizes: Sequence[int],
    cycle_times: Sequence[float],
    set_size: int,
    level: int,
) -> SpeedSizeGrid:
    associative = config.with_level(level - 1, associativity=set_size)
    return execution_time_grid(traces, associative, sizes, cycle_times, level)


def breakeven_map(
    traces: Sequence[Trace],
    config: SystemConfig,
    sizes: Sequence[int],
    cycle_times: Sequence[float],
    set_size: int,
    baseline_set_size: int = 1,
    level: int = 2,
) -> BreakevenMap:
    """Compute the break-even map of ``set_size`` against
    ``baseline_set_size`` over the design plane.

    ``cycle_times`` are the *baseline* cache's cycle times in CPU cycles;
    results are reported in nanoseconds like the paper's Figures 5-1..5-3.
    """
    if set_size <= baseline_set_size:
        raise ValueError("set_size must exceed the baseline")
    # Warm the full (size x {baseline, set_size}) grid in one batched
    # sweep before the per-associativity grids: presented together, the
    # diagonal cells that share a deepest-level set count (size s at
    # ``set_size`` ways indexes like size s/set_size direct-mapped) ride
    # one stack-distance pass, and the two grids below resolve from the
    # memo cache.
    sweep_functional(
        traces,
        [
            config.with_level(level - 1, associativity=ways, size_bytes=size)
            for ways in (baseline_set_size, set_size)
            for size in sizes
        ],
    )
    base_grid = _grid_for_set_size(
        traces, config, sizes, cycle_times, baseline_set_size, level
    )
    assoc_grid = _grid_for_set_size(
        traces, config, sizes, cycle_times, set_size, level
    )
    cpu_cycle_ns = config.cpu.cycle_ns
    out = np.zeros((len(sizes), len(cycle_times)))
    for i in range(len(sizes)):
        base_model = base_grid.models[i]
        assoc_model = assoc_grid.models[i]
        for j, cycle in enumerate(cycle_times):
            target = base_model.total_cycles(cycle)
            equivalent = assoc_model.cycle_for_total(target)
            out[i, j] = (equivalent - cycle) * cpu_cycle_ns
    return BreakevenMap(
        set_size=set_size,
        baseline_set_size=baseline_set_size,
        sizes=list(sizes),
        cycle_times=list(cycle_times),
        nanoseconds=out,
    )
