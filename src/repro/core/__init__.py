"""The paper's primary contribution: multi-level design-space analysis.

This package turns the substrates (traces, caches, simulators, analytical
models) into the analyses the paper is built around:

* :mod:`repro.core.metrics` -- the local/global/solo miss-ratio triad of
  section 3 and the layer-independence analysis.
* :mod:`repro.core.design_space` -- speed-size sweeps over (L2 size, L2
  cycle time) grids; execution time via the counts-plus-affine method
  validated against the timing simulator.
* :mod:`repro.core.constant_performance` -- lines of constant performance,
  their slopes, slope-region classification and shift measurement
  (section 4, Figures 4-1 .. 4-4).
* :mod:`repro.core.breakeven` -- set-associativity break-even
  implementation-time maps (section 5, Figures 5-1 .. 5-3).
* :mod:`repro.core.optimizer` -- searches for the performance-optimal
  hierarchy under an implementation-technology model (section 6's design
  guidance, made executable).
"""

from repro.core.metrics import MissRatioTriad, measure_triad, sweep_triads
from repro.core.design_space import (
    AffineTimeModel,
    SpeedSizeGrid,
    affine_model_for,
    execution_time_grid,
)
from repro.core.constant_performance import (
    ConstantPerformanceLines,
    lines_of_constant_performance,
    slope_field,
    slope_region_boundary,
)
from repro.core.breakeven import BreakevenMap, breakeven_map
from repro.core.optimizer import (
    HierarchyOptimizer,
    JointCandidate,
    OptimizationResult,
    TechnologyModel,
    optimal_l1_sweep,
    single_level_ceiling,
)

__all__ = [
    "MissRatioTriad",
    "measure_triad",
    "sweep_triads",
    "AffineTimeModel",
    "affine_model_for",
    "SpeedSizeGrid",
    "execution_time_grid",
    "ConstantPerformanceLines",
    "lines_of_constant_performance",
    "slope_field",
    "slope_region_boundary",
    "BreakevenMap",
    "breakeven_map",
    "HierarchyOptimizer",
    "OptimizationResult",
    "TechnologyModel",
    "JointCandidate",
    "optimal_l1_sweep",
    "single_level_ceiling",
]
