"""The one sanctioned monotonic clock.

Every wall-time measurement in this repository -- telemetry spans
(:mod:`repro.telemetry`), sweep phase timing, benchmark legs -- reads
*this* module, not ``time`` directly.  Centralising the read matters for
two reasons:

* **Determinism discipline.**  The static-analysis rules treat ambient
  clock reads as contamination: RPR001 bans them textually from
  simulation code, and RPR008 propagates ``reads-clock`` through the
  call graph into every memo-path function.  This module (and the
  telemetry layer built on it) is the explicitly sanctioned exception --
  an effect *barrier* in the interprocedural analysis
  (:data:`repro.lint.project.analysis.SANCTIONED_RELPATHS`) rather than
  a scatter of per-line ``noqa`` waivers -- because its readings are
  only ever *observed* (timings, spans, manifests), never fed back into
  simulation results.

* **Cross-process comparability.**  ``time.monotonic_ns`` is
  ``CLOCK_MONOTONIC`` on Linux, a *system-wide* clock: timestamps taken
  inside fork or spawn worker processes are directly comparable with the
  supervisor's, which is what lets worker span buffers be re-parented
  under the supervisor's sweep span without any epoch translation.

The values are nanoseconds from an arbitrary epoch: differences are
meaningful, absolute values are not.  :func:`wall_unix` is the one
wall-clock reader (sink metadata only, so exported traces can be pinned
to calendar time).
"""

from __future__ import annotations

import time

__all__ = ["monotonic_ns", "elapsed_s", "wall_unix", "Stopwatch"]


def monotonic_ns() -> int:
    """Nanoseconds on the system-wide monotonic clock."""
    return time.monotonic_ns()


def elapsed_s(since_ns: int) -> float:
    """Seconds elapsed since a :func:`monotonic_ns` reading."""
    return (monotonic_ns() - since_ns) / 1e9


def wall_unix() -> float:
    """Seconds since the Unix epoch (telemetry sink metadata only)."""
    return time.time()


class Stopwatch:
    """A restartable elapsed-seconds reading on the monotonic clock.

    The benchmark idiom::

        watch = Stopwatch()
        ...leg under test...
        wall_s = watch.elapsed_s()

    replaces paired ``time.perf_counter()`` reads; the single shared
    clock keeps benchmark walls, telemetry spans and manifest phase
    times on one comparable timebase.
    """

    __slots__ = ("_started_ns",)

    def __init__(self) -> None:
        self._started_ns = monotonic_ns()

    def restart(self) -> None:
        """Reset the epoch to now."""
        self._started_ns = monotonic_ns()

    def elapsed_ns(self) -> int:
        """Nanoseconds since construction (or the last restart)."""
        return monotonic_ns() - self._started_ns

    def elapsed_s(self) -> float:
        """Seconds since construction (or the last restart)."""
        return self.elapsed_ns() / 1e9
