"""Lines of constant performance and their slopes (section 4).

Horizontal slices through the execution-time surface expose classes of
machines with the same performance; mapped onto the (log2 L2 size, L2 cycle
time) plane they form the paper's lines of constant performance
(Figures 4-2, 4-3, 4-4).  Their *slope* -- CPU cycles of allowable cycle-time
degradation per size doubling -- is the design currency: steep slopes mean
size is cheap relative to speed.

Because execution time is affine in the cycle time (see
:mod:`repro.core.design_space`), each line is computed exactly by inverting
the per-size affine model rather than by contouring a sampled grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import math

import numpy as np

from repro.core.design_space import SpeedSizeGrid


@dataclass
class ConstantPerformanceLines:
    """A family of iso-performance lines over the design plane.

    ``cycle_at[k, i]`` is the L2 cycle time (CPU cycles) at which size
    ``sizes[i]`` delivers relative execution time ``levels[k]``; ``nan``
    where the level is unreachable at that size within physical (positive)
    cycle times.
    """

    sizes: List[int]
    levels: List[float]
    cycle_at: np.ndarray
    #: The grid's best (minimum) total cycles, the normalisation reference.
    reference_cycles: float

    def line(self, level: float) -> np.ndarray:
        return self.cycle_at[self.levels.index(level)]

    def slopes(self, level: float) -> np.ndarray:
        """Per-doubling slopes along one line: entry ``i`` is the cycle-time
        change from ``sizes[i]`` to ``sizes[i+1]`` divided by the number of
        doublings between them."""
        cycles = self.line(level)
        doublings = np.diff(np.log2(np.asarray(self.sizes, dtype=float)))
        return np.diff(cycles) / doublings


def lines_of_constant_performance(
    grid: SpeedSizeGrid,
    levels: Sequence[float],
    reference_cycles: Optional[float] = None,
) -> ConstantPerformanceLines:
    """Compute iso-performance lines from a speed-size grid.

    ``levels`` are relative execution times (1.1, 1.2, ... in the paper);
    ``reference_cycles`` defaults to the grid's minimum, matching the
    paper's normalisation to the best machine in the design space.
    """
    if not levels:
        raise ValueError("need at least one performance level")
    reference = grid.total_cycles.min() if reference_cycles is None else reference_cycles
    if reference <= 0:
        raise ValueError("reference cycle count must be positive")
    cycle_at = np.full((len(levels), len(grid.sizes)), np.nan)
    for k, level in enumerate(levels):
        if level <= 0:
            raise ValueError("performance levels must be positive")
        target = level * reference
        for i, model in enumerate(grid.models):
            cycle = model.cycle_for_total(target)
            if cycle > 0:
                cycle_at[k, i] = cycle
    return ConstantPerformanceLines(
        sizes=list(grid.sizes),
        levels=list(levels),
        cycle_at=cycle_at,
        reference_cycles=float(reference),
    )


def slope_field(grid: SpeedSizeGrid) -> np.ndarray:
    """Iso-performance slope at each size step, independent of the level.

    With affine models ``T_i(c) = a_i + b_i c``, the iso-line through
    ``(s_i, c)`` meets size ``s_{i+1}`` at ``c' = (a_i + b_i c - a_{i+1}) /
    b_{i+1}``; the slope ``(c' - c)`` varies (weakly) with ``c``, so the
    field is evaluated at each grid cycle time: entry ``[i, j]`` is the
    slope (CPU cycles per doubling) from ``sizes[i]`` to ``sizes[i+1]`` at
    ``cycle_times[j]``.
    """
    sizes = np.asarray(grid.sizes, dtype=float)
    doublings = np.diff(np.log2(sizes))
    field = np.zeros((len(grid.sizes) - 1, len(grid.cycle_times)))
    for i in range(len(grid.sizes) - 1)   :
        here, there = grid.models[i], grid.models[i + 1]
        for j, cycle in enumerate(grid.cycle_times):
            total = here.total_cycles(cycle)
            equivalent = there.cycle_for_total(total)
            field[i, j] = (equivalent - cycle) / doublings[i]
    return field


def slope_region_boundary(
    grid: SpeedSizeGrid,
    threshold: float,
    cycle_time: float,
) -> Optional[float]:
    """The L2 size at which the iso-performance slope falls below
    ``threshold`` CPU cycles per doubling, at the given base cycle time.

    This locates the boundaries of the paper's shaded tradeoff regions
    (0.75 / 1.5 / 3 cycles per doubling); log-interpolated between grid
    sizes.  Returns ``None`` when the slope never falls below the
    threshold inside the grid (the region extends beyond it), or the
    smallest size when it is already below at the left edge.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    field = slope_field(grid)
    j = grid.cycle_times.index(cycle_time)
    slopes = field[:, j]
    sizes = np.asarray(grid.sizes, dtype=float)
    midpoints = np.sqrt(sizes[:-1] * sizes[1:])  # geometric mid of each step
    if slopes[0] < threshold:
        return float(sizes[0])
    for i in range(1, len(slopes)):
        if slopes[i] < threshold:
            # Interpolate in (log size, slope) between midpoints i-1 and i.
            x0, x1 = math.log2(midpoints[i - 1]), math.log2(midpoints[i])
            y0, y1 = slopes[i - 1], slopes[i]
            x = x0 + (threshold - y0) * (x1 - x0) / (y1 - y0)
            return float(2**x)
    return None


def iso_line_shift(
    lines_a: ConstantPerformanceLines,
    lines_b: ConstantPerformanceLines,
) -> Optional[float]:
    """Mean horizontal displacement between matching iso-performance lines.

    For every performance level present in both families and every point of
    the reference family's lines, find the size at which the other family's
    line reaches the *same cycle time* (interpolating in log2 size) and
    average the log-size displacement.  This is how the paper compares
    Figures 4-2 and 4-3: each family is normalised to its own best machine,
    and the 32 KB-L1 lines sit ~1.74x to the right of the 4 KB-L1 lines.

    Returns the geometric-mean size ratio (b relative to a), or ``None``
    when the families never overlap in cycle time.
    """
    shared = [level for level in lines_a.levels if level in lines_b.levels]
    shifts: List[float] = []
    log_sizes_a = np.log2(np.asarray(lines_a.sizes, dtype=float))
    log_sizes_b = np.log2(np.asarray(lines_b.sizes, dtype=float))
    for level in shared:
        line_a = lines_a.line(level)
        line_b = lines_b.line(level)
        valid_b = np.isfinite(line_b)
        if valid_b.sum() < 2:
            continue
        cycles_b = line_b[valid_b]
        logs_b = log_sizes_b[valid_b]
        # Lines rise with size, so cycle -> log2 size is monotone.
        order = np.argsort(cycles_b)
        cycles_b, logs_b = cycles_b[order], logs_b[order]
        for i, cycle in enumerate(line_a):
            if not np.isfinite(cycle):
                continue
            if not cycles_b[0] <= cycle <= cycles_b[-1]:
                continue
            log_b = float(np.interp(cycle, cycles_b, logs_b))
            shifts.append(log_b - float(log_sizes_a[i]))
    if not shifts:
        return None
    return float(2.0 ** np.mean(shifts))


def horizontal_shift(
    grid_a: SpeedSizeGrid,
    grid_b: SpeedSizeGrid,
    threshold: float,
    cycle_time: float,
) -> Optional[float]:
    """Size ratio by which a slope-region boundary moved between two design
    spaces (e.g. 4 KB vs 32 KB L1, or fast vs slow memory).

    Returns ``boundary_b / boundary_a`` or ``None`` if either boundary is
    outside its grid.
    """
    a = slope_region_boundary(grid_a, threshold, cycle_time)
    b = slope_region_boundary(grid_b, threshold, cycle_time)
    if a is None or b is None:
        return None
    return b / a
