"""Shared fixtures for the audit-layer tests.

The property grid crosses every structural axis the conservation laws
cover: split/unified L1, write-back/write-through, one to three levels,
prefetching on and off.  Traces are session-scoped; regenerating the
synthetic workloads per test would dominate the suite's runtime.
"""

import pytest

from repro.cache.policy import PrefetchKind, WritePolicy
from repro.sim.config import LevelConfig, SystemConfig
from repro.trace.workload import SyntheticWorkload
from repro.units import KB


def grid_configs():
    """(name, config) pairs crossing the audit laws' structural axes."""
    l2 = LevelConfig(size_bytes=32 * KB, block_bytes=32, cycle_cpu_cycles=3)
    l3 = LevelConfig(size_bytes=128 * KB, block_bytes=32, cycle_cpu_cycles=6)
    combos = []
    for split in (False, True):
        for policy in (WritePolicy.WRITE_BACK, WritePolicy.WRITE_THROUGH):
            for depth in (1, 2, 3):
                for prefetch in (PrefetchKind.NONE, PrefetchKind.ON_MISS):
                    l1 = LevelConfig(
                        size_bytes=2 * KB,
                        block_bytes=16,
                        split=split,
                        cycle_cpu_cycles=1,
                        write_hit_cycles=2,
                        write_policy=policy,
                        write_allocate=policy is WritePolicy.WRITE_BACK,
                        prefetch=prefetch,
                    )
                    levels = (l1, l2, l3)[:depth]
                    name = (
                        f"{'split' if split else 'unified'}-"
                        f"{policy.value}-{depth}L-{prefetch.value}"
                    )
                    combos.append((name, SystemConfig(levels=levels)))
    return combos


GRID = grid_configs()


@pytest.fixture(scope="session")
def audit_trace():
    """One synthetic trace with a warmup region."""
    return SyntheticWorkload(seed=23).trace(12_000, name="audit", warmup=2_400)


@pytest.fixture(scope="session")
def audit_traces(audit_trace):
    """Two traces with distinct seeds (for sweep-level checks)."""
    return [
        audit_trace,
        SyntheticWorkload(seed=29).trace(12_000, name="audit-b", warmup=2_400),
    ]
