"""Differential parity checks between the redundant engines."""

import copy

import pytest

from repro.audit.parity import (
    ParityError,
    assert_counts_equal,
    check_fast_vs_reference,
    check_memo_vs_direct,
    check_serial_vs_parallel,
)
from repro.sim import memo
from repro.sim.fast import fast_eligible
from repro.sim.functional import FunctionalSimulator

from tests.audit.conftest import GRID


@pytest.fixture(autouse=True)
def fresh_memo():
    memo.clear_memo_cache()
    yield
    memo.clear_memo_cache()


class TestChecksPass:
    @pytest.mark.parametrize(
        "config",
        [c for _, c in GRID if fast_eligible(c)][:4],
        ids=[n for n, c in GRID if fast_eligible(c)][:4],
    )
    def test_fast_vs_reference(self, audit_trace, config):
        check_fast_vs_reference(audit_trace, config)

    def test_fast_vs_reference_is_noop_when_ineligible(self, audit_trace):
        ineligible = next(c for _, c in GRID if not fast_eligible(c))
        check_fast_vs_reference(audit_trace, ineligible)

    def test_memo_vs_direct(self, audit_trace):
        config = next(c for n, c in GRID if n == "split-write-back-2L-none")
        check_memo_vs_direct(audit_trace, config)

    def test_serial_vs_parallel(self, audit_traces):
        configs = [c for _, c in GRID if fast_eligible(c)][:3]
        check_serial_vs_parallel(audit_traces, configs, workers=2)


class TestDivergenceIsReported:
    def test_first_diverging_counter_is_named(self, audit_trace):
        config = next(c for n, c in GRID if n == "split-write-back-2L-none")
        a = FunctionalSimulator(config).run(audit_trace)
        b = copy.deepcopy(a)
        b.level_stats[1].writebacks += 3
        with pytest.raises(ParityError, match=r"L2\.writebacks"):
            assert_counts_equal(a, b, context="unit")

    def test_depth_mismatch_is_named(self, audit_trace):
        config = next(c for n, c in GRID if n == "split-write-back-2L-none")
        a = FunctionalSimulator(config).run(audit_trace)
        b = copy.deepcopy(a)
        b.level_stats.pop()
        with pytest.raises(ParityError, match="depth"):
            assert_counts_equal(a, b)

    def test_parity_error_is_an_audit_error(self):
        from repro.audit import AuditError

        assert issubclass(ParityError, AuditError)
