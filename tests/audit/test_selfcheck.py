"""The ``repro.audit.selfcheck`` CLI, end to end (scaled down)."""

import json

from repro.audit import selfcheck
from repro.sim import memo


def test_selfcheck_passes_and_writes_manifest(tmp_path, capsys):
    memo.clear_memo_cache()
    path = tmp_path / "selfcheck.manifest.json"
    status = selfcheck.main(
        [
            "--records", "3000",
            "--timing-records", "1000",
            "--traces", "1",
            "-o", str(path),
        ]
    )
    out = capsys.readouterr().out
    assert status == 0
    assert "FAIL" not in out
    assert "checks passed" in out
    data = json.loads(path.read_text())
    assert data["name"] == "selfcheck"
    assert data["extra"]["results"]
    assert all(v == "ok" for v in data["extra"]["results"].values())
    # The parity phase drives the sweep executor, so the manifest carries
    # sweep notes and a memoisation record.
    assert data["sweep_totals"]["sweeps"] >= 2
    memo.clear_memo_cache()
