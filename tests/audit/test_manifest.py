"""Run manifests: recording, executor instrumentation, JSON rendering."""

import json

import pytest

from repro.audit import manifest
from repro.core.sweep import sweep_functional, sweep_timing
from repro.sim import memo

from tests.audit.conftest import GRID


@pytest.fixture(autouse=True)
def fresh_memo():
    memo.clear_memo_cache()
    yield
    memo.clear_memo_cache()


def _configs(count=3):
    return [c for _, c in GRID][:count]


class TestRecording:
    def test_no_recorder_is_active_by_default(self):
        assert manifest.current() is None
        # note_sweep outside a recording is a silent no-op.
        manifest.note_sweep(
            kind="functional", configs=1, traces=1, simulated=1,
            workers=1, pooled=False, seconds=0.0,
        )

    def test_sweeps_are_recorded(self, audit_traces):
        with manifest.recording("unit") as recorder:
            sweep_functional(audit_traces, _configs(), workers=1)
            sweep_timing(audit_traces[:1], _configs(1), workers=1)
        assert manifest.current() is None
        kinds = [note.kind for note in recorder.sweeps]
        assert kinds == ["functional", "timing"]
        functional = recorder.sweeps[0]
        assert functional.cells == len(_configs()) * len(audit_traces)
        assert functional.simulated <= functional.cells
        assert functional.workers == 1
        assert not functional.pooled
        assert functional.seconds > 0

    def test_memoisation_shows_up_in_the_delta(self, audit_traces):
        with manifest.recording("unit") as recorder:
            sweep_functional(audit_traces, _configs(2), workers=1)
            sweep_functional(audit_traces, _configs(2), workers=1)
        data = recorder.as_dict()
        assert data["memo"]["hits"] >= len(audit_traces) * 2
        assert 0.0 < data["memo"]["hit_ratio"] <= 1.0
        # The second sweep was fully memoised.
        assert data["sweeps"][1]["simulated"] == 0
        assert data["sweeps"][1]["memoised"] == (
            data["sweeps"][1]["cells"]
        )

    def test_nested_recorders_both_see_sweeps(self, audit_traces):
        with manifest.recording("outer") as outer:
            with manifest.recording("inner") as inner:
                sweep_functional(audit_traces, _configs(1), workers=1)
            assert manifest.current() is outer
        assert len(outer.sweeps) == len(inner.sweeps) == 1

    def test_traces_are_fingerprinted(self, audit_traces):
        with manifest.recording("unit") as recorder:
            recorder.add_traces(audit_traces)
        entries = recorder.as_dict()["traces"]
        assert [e["name"] for e in entries] == [t.name for t in audit_traces]
        assert all(e["fingerprint"] for e in entries)
        assert entries[0]["fingerprint"] != entries[1]["fingerprint"]
        assert entries[0]["records"] == len(audit_traces[0])
        assert entries[0]["warmup"] == audit_traces[0].warmup

    def test_phases_and_annotations(self):
        with manifest.recording("unit") as recorder:
            with recorder.phase("setup"):
                pass
            recorder.annotate(grid="F5", scale=4)
        data = recorder.as_dict()
        assert data["phases"][0]["name"] == "setup"
        assert data["phases"][0]["seconds"] >= 0
        assert data["extra"] == {"grid": "F5", "scale": 4}


class TestJson:
    def test_written_manifest_round_trips(self, tmp_path, audit_traces):
        with manifest.recording("unit") as recorder:
            recorder.add_traces(audit_traces[:1])
            sweep_functional(audit_traces[:1], _configs(2), workers=1)
        path = recorder.write(tmp_path / "nested" / "run.manifest.json")
        data = json.loads(path.read_text())
        assert data["schema"] == manifest.SCHEMA
        assert data["name"] == "unit"
        assert data["audit_enabled"] is True  # running under pytest
        assert data["wall_seconds"] > 0
        assert data["sweep_totals"]["sweeps"] == 1
        assert data["sweep_totals"]["cells"] == 2
        # Everything in the manifest must be JSON-native already.
        json.dumps(data)

    def test_workers_env_is_recorded(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        with manifest.recording("unit") as recorder:
            pass
        assert recorder.as_dict()["workers_env"] == "2"
