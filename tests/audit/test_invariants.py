"""Conservation-law audits: they hold on correct engines, and they fire.

Two halves.  The property half runs every engine over the structural
grid (split/unified x write policy x depth x prefetch) and asserts the
laws pass -- under pytest the audits also run *inside* the simulators,
so a silent violation would already have failed the run.  The mutation
half proves the laws are not vacuous: corrupt one counter, or break one
engine invariant, and the matching law must name the problem.
"""

import copy

import pytest

from repro.audit import AuditError, audit_enabled
from repro.audit.invariants import (
    ENV_KNOB,
    audit_functional_result,
    audit_timing_result,
)
from repro.sim.fast import fast_eligible, run_functional
from repro.sim.functional import FunctionalSimulator
from repro.sim.hierarchy import CacheHierarchy
from repro.sim import timing as timing_module
from repro.sim.timing import TimingSimulator

from tests.audit.conftest import GRID


class TestEnvironmentKnob:
    def test_defaults_on_under_pytest(self, monkeypatch):
        monkeypatch.delenv(ENV_KNOB, raising=False)
        assert audit_enabled()

    def test_defaults_off_outside_pytest(self, monkeypatch):
        monkeypatch.delenv(ENV_KNOB, raising=False)
        monkeypatch.delenv("PYTEST_CURRENT_TEST", raising=False)
        assert not audit_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", ""])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(ENV_KNOB, value)
        assert not audit_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes"])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(ENV_KNOB, value)
        monkeypatch.delenv("PYTEST_CURRENT_TEST", raising=False)
        assert audit_enabled()


class TestLawsHoldAcrossTheGrid:
    @pytest.mark.parametrize(
        "config", [c for _, c in GRID], ids=[n for n, _ in GRID]
    )
    def test_reference_functional(self, audit_trace, config):
        result = FunctionalSimulator(config).run(audit_trace)
        audit_functional_result(audit_trace, result, source="reference")

    @pytest.mark.parametrize(
        "config",
        [c for _, c in GRID if fast_eligible(c)],
        ids=[n for n, c in GRID if fast_eligible(c)],
    )
    def test_fast_functional(self, audit_trace, config):
        result = run_functional(audit_trace, config)
        audit_functional_result(audit_trace, result, source="fast-path")

    @pytest.mark.parametrize(
        "config", [c for _, c in GRID], ids=[n for n, _ in GRID]
    )
    def test_timing(self, audit_trace, config):
        short = audit_trace[:4_000]
        result = TimingSimulator(config).run(short)
        audit_timing_result(short, result)

    def test_inclusion_gated_configs_still_audit(self, audit_trace):
        import dataclasses

        two_level = next(
            c for n, c in GRID if "2L" in n and "write-back" in n
        )
        inclusive = dataclasses.replace(two_level, enforce_inclusion=True)
        result = FunctionalSimulator(inclusive).run(audit_trace)
        audit_functional_result(audit_trace, result)


def _functional_result(trace, config):
    return FunctionalSimulator(config).run(trace)


class TestMutationsAreCaught:
    """Tamper with one counter; the matching law must fire."""

    @pytest.fixture()
    def two_level(self):
        return next(
            c for n, c in GRID
            if n == "split-write-back-2L-none"
        )

    @pytest.fixture()
    def result(self, audit_trace, two_level):
        return copy.deepcopy(_functional_result(audit_trace, two_level))

    def test_clean_result_passes(self, audit_trace, result):
        audit_functional_result(audit_trace, result)

    def test_cpu_reads_tamper(self, audit_trace, result):
        result.cpu_reads += 1
        with pytest.raises(AuditError, match="cpu-boundary"):
            audit_functional_result(audit_trace, result)

    def test_ifetch_tamper(self, audit_trace, result):
        result.cpu_ifetches -= 1
        with pytest.raises(AuditError, match="cpu-boundary"):
            audit_functional_result(audit_trace, result)

    def test_l1_read_undercount(self, audit_trace, result):
        result.level_stats[0].reads -= 1
        with pytest.raises(AuditError, match="cpu-boundary"):
            audit_functional_result(audit_trace, result)

    def test_fill_law(self, audit_trace, result):
        result.level_stats[0].blocks_fetched += 1
        with pytest.raises(AuditError, match="fill-law"):
            audit_functional_result(audit_trace, result)

    def test_boundary_flow(self, audit_trace, result):
        result.level_stats[1].reads += 1
        with pytest.raises(AuditError, match="boundary-flow"):
            audit_functional_result(audit_trace, result)

    def test_memory_flow(self, audit_trace, result):
        result.memory_reads += 1
        with pytest.raises(AuditError, match="memory-flow"):
            audit_functional_result(audit_trace, result)

    def test_bucket_sanity_misses_exceed_accesses(self, audit_trace, result):
        result.level_stats[1].read_misses = result.level_stats[1].reads + 1
        with pytest.raises(AuditError, match="bucket-sanity"):
            audit_functional_result(audit_trace, result)

    def test_bucket_sanity_negative_counter(self, audit_trace, result):
        result.level_stats[1].writebacks = -1
        with pytest.raises(AuditError, match="bucket-sanity"):
            audit_functional_result(audit_trace, result)

    def test_time_decomposition(self, audit_trace, two_level):
        short = audit_trace[:2_000]
        result = copy.deepcopy(TimingSimulator(two_level).run(short))
        result.write_stall_ns += 5.0
        with pytest.raises(AuditError, match="time-decomposition"):
            audit_timing_result(short, result)

    def test_error_message_names_the_trace_and_laws(
        self, audit_trace, result
    ):
        result.cpu_writes += 2
        result.memory_writes += 1
        with pytest.raises(AuditError) as excinfo:
            audit_functional_result(audit_trace, result)
        message = str(excinfo.value)
        assert "'audit'" in message
        assert "2 conservation law(s)" in message


class TestEngineMutationsAreCaught:
    """Break an engine invariant; the in-engine audit must fire."""

    def test_warmup_leak_is_detected(self, audit_trace, monkeypatch):
        # A broken warmup (statistics collected during the cold-start
        # region) inflates the L1 counters past the measured reference
        # counts -- exactly the silent corruption the audit layer exists
        # to catch.
        monkeypatch.setattr(
            CacheHierarchy, "set_counting", lambda self, enabled: None
        )
        config = next(c for n, c in GRID if n == "split-write-back-2L-none")
        with pytest.raises(AuditError, match="cpu-boundary"):
            FunctionalSimulator(config).run(audit_trace)

    def test_dropped_stall_accounting_is_detected(self, audit_trace):
        # An engine that advances the clock on a miss without booking the
        # read stall breaks Equation 1's decomposition.
        class LossyEngine(timing_module._TimingEngine):
            def _do_read(self, address):
                self._wait_for_dcache()
                outcome = self.hierarchy.dcache.read(address)
                if outcome.hit:
                    self.now += self.data_hit_cost
                    self.base += self.data_hit_cost
                    if outcome.prefetched:
                        self._apply_prefetches(0, outcome)
                else:
                    done = self._service_miss(
                        outcome, self.now, for_write=False
                    )
                    self.now = done  # stall time vanishes

        short = audit_trace[:4_000]
        with pytest.raises(AuditError, match="time-decomposition"):
            LossyEngine(next(c for n, c in GRID if "2L" in n)).run(short)
