"""Tests for the paper workload suite."""

import numpy as np
import pytest

from repro.experiments.workloads import build_trace, paper_trace_suite
from repro.trace.stats import TraceStatistics


class TestBuildTrace:
    def test_record_count(self):
        trace = build_trace("t", index=0, records=20_000, kernel=False)
        assert len(trace) == 20_000

    def test_warmup_marked(self):
        trace = build_trace("t", index=0, records=60_000, kernel=False)
        assert 0 < trace.warmup <= len(trace) // 2

    def test_kernel_traces_touch_kernel_space(self):
        trace = build_trace("vms", index=0, records=60_000, kernel=True)
        spaces = set((trace.addresses >> np.uint64(44)).tolist())
        assert 0xF in spaces

    def test_interleaved_traces_have_no_kernel(self):
        trace = build_trace("mix", index=1, records=60_000, kernel=False)
        spaces = set((trace.addresses >> np.uint64(44)).tolist())
        assert 0xF not in spaces

    def test_cpu_mix_matches_section_two(self):
        trace = build_trace("t", index=2, records=80_000, kernel=False)
        stats = TraceStatistics.measure(trace)
        assert stats.data_ref_per_ifetch == pytest.approx(0.5, abs=0.05)
        assert stats.data_read_fraction == pytest.approx(0.65, abs=0.05)

    def test_deterministic_by_index(self):
        a = build_trace("t", index=3, records=10_000, kernel=False)
        b = build_trace("t", index=3, records=10_000, kernel=False)
        assert np.array_equal(a.addresses, b.addresses)

    def test_different_indices_differ(self):
        a = build_trace("t", index=3, records=10_000, kernel=False)
        b = build_trace("t", index=4, records=10_000, kernel=False)
        assert not np.array_equal(a.addresses, b.addresses)


class TestSuite:
    def test_suite_size_and_names(self):
        suite = paper_trace_suite(records=5_000, count=4)
        assert len(suite) == 4
        assert suite[0].name.startswith("vms")
        assert suite[1].name.startswith("mix")

    def test_suite_memoised(self):
        a = paper_trace_suite(records=5_000, count=2)
        b = paper_trace_suite(records=5_000, count=2)
        assert a is b

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECORDS", "6000")
        monkeypatch.setenv("REPRO_TRACES", "2")
        suite = paper_trace_suite()
        assert len(suite) == 2
        assert len(suite[0]) == 6000

    def test_trace_count_clamped_to_eight(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACES", "99")
        monkeypatch.setenv("REPRO_RECORDS", "2000")
        assert len(paper_trace_suite()) == 8

    def test_disk_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        first = paper_trace_suite(records=4_000, count=1)
        assert len(list(tmp_path.glob("trace-*.mlt"))) == 1
        # Clear the memory cache and reload from disk.
        from repro.experiments import workloads

        workloads._memory_cache.clear()
        second = paper_trace_suite(records=4_000, count=1)
        assert np.array_equal(first[0].addresses, second[0].addresses)
        assert second[0].warmup == first[0].warmup

    def test_disk_cached_suite_is_memmap_backed(self, tmp_path, monkeypatch):
        from repro.experiments import workloads

        workloads._memory_cache.clear()
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        suite = paper_trace_suite(records=4_000, count=1)
        assert isinstance(suite[0].addresses, np.memmap)

    def test_legacy_npz_cache_is_migrated(self, tmp_path, monkeypatch):
        from repro.experiments import workloads

        workloads._memory_cache.clear()
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        built = paper_trace_suite(records=4_000, count=1)
        (store_path,) = tmp_path.glob("trace-*.mlt")
        # Rewrite the cache entry as the pre-store .npz format.
        legacy = store_path.with_suffix(".npz")
        from repro.trace.store import TraceStore

        TraceStore.open(store_path).as_trace().save(legacy)
        store_path.unlink()
        workloads._memory_cache.clear()
        migrated = paper_trace_suite(records=4_000, count=1)
        assert store_path.exists()  # re-saved in the store format
        assert np.array_equal(migrated[0].addresses, built[0].addresses)
        assert migrated[0].warmup == built[0].warmup


class TestCacheResilience:
    """Damage to the disk cache is a *miss* -- quarantined, rebuilt,
    logged -- never a crash and never silently read."""

    RECORDS = 4_100  # distinct cache key from the other suite tests

    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        from repro.experiments import workloads

        workloads._memory_cache.clear()
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        self.cache = tmp_path
        yield
        workloads._memory_cache.clear()

    def _clear_memory(self):
        from repro.experiments import workloads

        workloads._memory_cache.clear()

    def _build(self):
        return paper_trace_suite(records=self.RECORDS, count=1)

    def test_bitrotted_entry_is_quarantined_and_rebuilt(self, caplog):
        import logging

        (built,) = self._build()
        # Copy out of the memmap before damaging its backing inode.
        expected = np.array(built.addresses)
        (store_path,) = self.cache.glob("trace-*.mlt")
        blob = bytearray(store_path.read_bytes())
        blob[-5] ^= 0x01  # rot inside the addresses segment
        store_path.write_bytes(bytes(blob))
        self._clear_memory()

        with caplog.at_level(logging.WARNING, "repro.experiments.workloads"):
            (rebuilt,) = self._build()
        assert "trace-cache-corrupt" in caplog.text
        assert "quarantine-and-rebuild" in caplog.text
        # The poisoned bytes were preserved as evidence, never re-read...
        jailed = [
            p for p in (self.cache / "quarantine").iterdir()
            if not p.name.endswith(".reason.json")
        ]
        assert len(jailed) == 1
        # ...and the rebuilt store is the same deterministic trace.
        assert store_path.exists()
        assert np.array_equal(rebuilt.addresses, expected)

    def test_torn_entry_is_quarantined_and_rebuilt(self):
        (built,) = self._build()
        expected = np.array(built.addresses)
        (store_path,) = self.cache.glob("trace-*.mlt")
        store_path.write_bytes(store_path.read_bytes()[:20])
        self._clear_memory()
        (rebuilt,) = self._build()
        assert np.array_equal(rebuilt.addresses, expected)
        assert (self.cache / "quarantine").exists()

    def test_failed_save_degrades_to_heap(self, caplog, monkeypatch):
        import logging

        monkeypatch.setenv("REPRO_FAULTS", "rename_fail:1.0")
        with caplog.at_level(logging.WARNING, "repro.experiments.workloads"):
            (trace,) = self._build()
        assert "trace-cache-save-failed" in caplog.text
        assert "degrade-to-heap" in caplog.text
        # The sweep proceeds on the heap trace; no torn store was
        # published (the damage sits on an orphaned tmp for doctor).
        assert not isinstance(trace.addresses, np.memmap)
        assert not list(self.cache.glob("trace-*.mlt"))
        assert len(trace) == self.RECORDS

    def test_corrupted_save_is_caught_by_the_reopen(self, caplog, monkeypatch):
        """An injected bitflip lands *during* the write; the post-save
        verify catches it because the header digests were hashed from
        the in-memory arrays before the bytes hit disk."""
        import logging

        monkeypatch.setenv("REPRO_FAULTS", "bitflip:1.0")
        with caplog.at_level(logging.WARNING, "repro.experiments.workloads"):
            (trace,) = self._build()
        assert "trace-cache-publish-corrupt" in caplog.text
        assert not isinstance(trace.addresses, np.memmap)  # known-good heap
        jailed = list((self.cache / "quarantine").iterdir())
        assert jailed  # the poisoned store, preserved
        assert not list(self.cache.glob("trace-*.mlt"))

    def test_deleted_store_re_derives_instead_of_aborting(self, caplog):
        import logging

        (built,) = self._build()
        (store_path,) = self.cache.glob("trace-*.mlt")
        store_path.unlink()  # e.g. cache dir pruned between run and resume
        with caplog.at_level(logging.WARNING, "repro.experiments.workloads"):
            (rederived,) = self._build()
        assert "trace-suite-store-missing" in caplog.text
        assert "re-derive" in caplog.text
        assert store_path.exists()  # rebuilt from the generator
        assert np.array_equal(rederived.addresses, built.addresses)
        assert rederived.warmup == built.warmup
