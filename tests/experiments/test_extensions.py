"""Structural tests for the extension and ablation experiments."""

import pytest

from repro.experiments.extensions import (
    BlockSizeAblation,
    InclusionAblation,
    PrefetchAblation,
    ThreeLevelHierarchy,
    WritePolicyAblation,
    three_level_machine,
)
from repro.experiments.workloads import paper_trace_suite


@pytest.fixture(scope="module")
def tiny_suite():
    return paper_trace_suite(records=60_000, count=2)


class TestThreeLevelMachine:
    def test_depth_and_ordering(self):
        config = three_level_machine()
        assert config.depth == 3
        assert config.levels[1].size_bytes < config.levels[2].size_bytes
        assert (
            config.levels[1].cycle_cpu_cycles < config.levels[2].cycle_cpu_cycles
        )

    def test_experiment_reports_triads(self, tiny_suite):
        report = ThreeLevelHierarchy().run(tiny_suite)
        assert any("L3 triad" in row[0] for row in report.rows)
        assert report.checks[
            "upstream levels filter references at L3 too (local >> global)"
        ]


class TestPrefetchAblation:
    def test_rows_cover_all_schemes(self, tiny_suite):
        report = PrefetchAblation().run(tiny_suite)
        schemes = [row[0] for row in report.rows]
        assert schemes == ["none", "on-miss", "tagged", "always"]
        assert report.checks[
            "every prefetch scheme lowers the L2 demand miss ratio"
        ]

    def test_baseline_issues_no_prefetches(self, tiny_suite):
        report = PrefetchAblation().run(tiny_suite)
        assert report.rows[0][2] == "0"  # issued column for "none"


class TestInclusionAblation:
    def test_cost_column_present_and_nonnegative(self, tiny_suite):
        report = InclusionAblation().run(tiny_suite)
        assert report.checks["inclusion never lowers the L1 miss ratio"]
        assert len(report.rows) == len(InclusionAblation.L2_SIZES_KB)


class TestBlockSizeAblation:
    def test_miss_ratio_falls_with_block_size(self, tiny_suite):
        report = BlockSizeAblation().run(tiny_suite)
        ratios = [float(row[1]) for row in report.rows]
        assert ratios == sorted(ratios, reverse=True)
        assert report.checks[
            "larger blocks lower the L2 miss ratio (sequential code)"
        ]


class TestWritePolicyAblation:
    def test_write_through_ships_every_store(self, tiny_suite):
        report = WritePolicyAblation().run(tiny_suite)
        by_policy = {row[0]: row for row in report.rows}
        assert float(by_policy["write-through"][3]) == pytest.approx(1.0, abs=0.01)
        assert float(by_policy["write-back"][3]) < 0.9
        assert report.all_checks_pass
