"""Tests for the experiment framework: rendering, registry, baseline."""

import pytest

from repro.experiments.base import ExperimentReport
from repro.experiments.baseline import (
    L2_CYCLE_TIMES,
    L2_SIZES,
    base_machine,
    l2_sweep_sizes,
    solo_l2_machine,
)
from repro.experiments.registry import experiment_ids, make_experiment
from repro.experiments.render import format_ns, format_ratio, format_size, render_table
from repro.units import KB, MB


class TestRender:
    @pytest.mark.parametrize(
        "size,expected",
        [(4 * KB, "4KB"), (512 * KB, "512KB"), (4 * MB, "4MB"), (64, "64B")],
    )
    def test_format_size(self, size, expected):
        assert format_size(size) == expected

    def test_format_ratio_and_ns(self):
        assert format_ratio(0.12344) == "0.1234"
        assert format_ns(12.34) == "12.3"

    def test_render_table_alignment(self):
        table = render_table(["a", "bb"], [["1", "2"], ["10", "200"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="columns"):
            render_table(["a"], [["1", "2"]])

    def test_render_empty_table(self):
        table = render_table(["x"], [])
        assert "x" in table


class TestExperimentReport:
    def test_render_includes_checks_and_notes(self):
        report = ExperimentReport(
            experiment_id="T-1",
            title="test",
            headers=["h"],
            rows=[["v"]],
            checks={"something holds": True, "something fails": False},
            notes=["a note"],
        )
        text = report.render()
        assert "T-1" in text
        assert "[ok] something holds" in text
        assert "[FAIL] something fails" in text
        assert "note: a note" in text
        assert not report.all_checks_pass

    def test_all_checks_pass_when_empty(self):
        report = ExperimentReport("T", "t", ["h"], [])
        assert report.all_checks_pass


class TestBaseline:
    def test_base_machine_matches_paper_section_two(self):
        config = base_machine()
        assert config.cpu.cycle_ns == 10.0
        l1, l2 = config.levels
        assert l1.size_bytes == 4 * KB and l1.split and l1.block_bytes == 16
        assert l1.write_hit_cycles == 2
        assert l2.size_bytes == 512 * KB and l2.block_bytes == 32
        assert l2.cycle_cpu_cycles == 3.0
        assert config.memory.read_ns == 180.0
        assert config.write_buffer_entries == 4
        assert config.effective_backplane_ns == 30.0

    def test_memory_scale(self):
        slow = base_machine(memory_scale=2.0)
        assert slow.memory.read_ns == 360.0

    def test_solo_machine_is_single_level(self):
        solo = solo_l2_machine(l2_size=64 * KB)
        assert solo.depth == 1
        assert solo.levels[0].size_bytes == 64 * KB

    def test_l2_sizes_span_paper_range(self):
        assert L2_SIZES[0] == 4 * KB
        assert L2_SIZES[-1] == 4 * MB
        assert len(L2_CYCLE_TIMES) == 10

    def test_sweep_sizes_respect_minimum(self):
        sizes = l2_sweep_sizes(minimum=32 * KB)
        assert min(sizes) == 32 * KB

    def test_sweep_sizes_full_range_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert max(l2_sweep_sizes()) == 4 * MB
        monkeypatch.delenv("REPRO_FULL")
        assert max(l2_sweep_sizes()) == 512 * KB


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        ids = experiment_ids()
        for figure in ("F3-1", "F3-2", "F4-1", "F4-2", "F4-3", "F4-4",
                       "F5-1", "F5-2", "F5-3"):
            assert figure in ids
        for claim in ("E-EQ1", "E-EQ2", "E-EQ3", "E-R5", "E-CONC", "E-3L"):
            assert claim in ids

    def test_make_experiment_case_insensitive(self):
        assert make_experiment("f3-1").experiment_id == "F3-1"

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            make_experiment("F9-9")

    def test_every_id_instantiates(self):
        for experiment_id in experiment_ids():
            experiment = make_experiment(experiment_id)
            assert experiment.experiment_id == experiment_id


class TestShadedPlane:
    def test_shading_by_thresholds(self):
        from repro.experiments.render import render_shaded_plane

        text = render_shaded_plane(
            col_labels=["a", "b"],
            row_labels=["r1", "r2"],
            values=[[0.0, 15.0], [25.0, 45.0]],
            thresholds=[10.0, 20.0, 40.0],
        )
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert lines[1].endswith("..")     # 0 -> ' ', 15 -> '.'
        assert "::" in lines[2] and "**" in lines[2]  # 25 -> ':', 45 -> '*'
        assert "legend" in lines[-1]

    def test_title_included(self):
        from repro.experiments.render import render_shaded_plane

        text = render_shaded_plane(["x"], ["y"], [[1.0]], [0.5], title="map:")
        assert text.splitlines()[0] == "map:"

    def test_too_many_thresholds_rejected(self):
        import pytest as _pytest

        from repro.experiments.render import render_shaded_plane

        with _pytest.raises(ValueError):
            render_shaded_plane(["x"], ["y"], [[1.0]], list(range(10)))


class TestExpectations:
    def test_every_registered_experiment_has_an_expectation(self):
        from repro.experiments.expectations import EXPECTATIONS

        for experiment_id in experiment_ids():
            assert experiment_id in EXPECTATIONS, experiment_id

    def test_no_orphan_expectations(self):
        from repro.experiments.expectations import EXPECTATIONS

        registered = set(experiment_ids())
        assert set(EXPECTATIONS) <= registered

    def test_report_command_assembles_markdown(self, tmp_path, capsys):
        from repro.experiments.cli import main

        results = tmp_path / "results"
        results.mkdir()
        (results / "F3-1.txt").write_text("== F3-1: demo ==\n")
        output = tmp_path / "EXPERIMENTS.md"
        assert main(
            ["report", "--results", str(results), "-o", str(output)]
        ) == 0
        text = output.read_text()
        assert "## F3-1" in text
        assert "== F3-1: demo ==" in text
        assert "no saved report" in text  # the other experiments


class TestTraceCommand:
    """``mlcache trace save`` / ``mlcache trace info``."""

    def make_npz(self, tmp_path):
        from repro.trace.record import IFETCH, READ, WRITE, Trace

        trace = Trace.from_records(
            [(IFETCH, 0x100), (READ, 0x200), (WRITE, 0x300)],
            name="converted", warmup=1,
        )
        trace.metadata["origin"] = "test"
        path = tmp_path / "t.npz"
        trace.save(path)
        return path

    def test_save_converts_npz_to_store(self, tmp_path, capsys):
        from repro.experiments.cli import main
        from repro.trace.store import TraceStore

        npz = self.make_npz(tmp_path)
        out = tmp_path / "t.mlt"
        assert main(["trace", "save", str(npz), str(out)]) == 0
        assert "3 records" in capsys.readouterr().out
        store = TraceStore.open(out)
        assert store.name == "converted"
        assert store.warmup == 1
        assert store.metadata == {"origin": "test"}

    def test_save_converts_dinero(self, tmp_path, capsys):
        from repro.experiments.cli import main
        from repro.trace.store import TraceStore

        din = tmp_path / "t.din"
        din.write_text("2 100\n0 200\n1 300\n")
        out = tmp_path / "t.mlt"
        assert main(["trace", "save", str(din), str(out)]) == 0
        assert TraceStore.open(out).records == 3

    def test_info_prints_header_fields(self, tmp_path, capsys):
        from repro.experiments.cli import main
        from repro.trace.store import TraceStore

        npz = self.make_npz(tmp_path)
        out = tmp_path / "t.mlt"
        assert main(["trace", "save", str(npz), str(out)]) == 0
        digest = TraceStore.open(out).digest
        capsys.readouterr()
        assert main(["trace", "info", str(out)]) == 0
        text = capsys.readouterr().out
        assert "converted" in text
        assert "records   3" in text
        assert digest in text
        assert '"origin": "test"' in text
