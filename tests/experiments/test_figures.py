"""End-to-end tests of the figure experiments at reduced scale.

These run each experiment class on a small shared trace suite and verify
the report structure and the paper-shape checks that are robust at this
scale (structural checks, not the fine quantitative ones -- those are
exercised at benchmark scale).
"""

import pytest

from repro.experiments.equations import (
    EquationOneValidation,
    MissRatePowerLaw,
)
from repro.experiments.extensions import (
    GeneratorAblation,
    WriteBufferAblation,
)
from repro.experiments.fig3 import fig3_1
from repro.experiments.fig4 import build_grid, fig4_1
from repro.experiments.fig5 import BreakevenFigure
from repro.experiments.workloads import paper_trace_suite


@pytest.fixture(scope="module")
def tiny_suite():
    return paper_trace_suite(records=80_000, count=2)


class TestFig3:
    def test_report_structure_and_core_claims(self, tiny_suite):
        report = fig3_1().run(tiny_suite)
        assert report.experiment_id == "F3-1"
        assert report.headers[0] == "L2 size"
        assert len(report.rows) == len(fig3_1().sizes())
        assert report.checks[
            "local miss ratio exceeds global at every size (L1 filters "
            "references, not misses)"
        ]
        assert report.checks["miss ratios fall monotonically with L2 size"]


class TestFig4:
    def test_curves_report(self, tiny_suite):
        report = fig4_1().run(tiny_suite)
        assert report.experiment_id == "F4-1"
        # One row per size, one column per cycle time plus the label.
        assert len(report.rows[0]) == 11
        assert report.checks[
            "execution time rises with L2 cycle time at every size"
        ]

    def test_grid_builder_respects_l1_minimum(self, tiny_suite):
        from repro.units import KB

        grid = build_grid(tiny_suite, l1_size=32 * KB)
        assert min(grid.sizes) == 32 * KB


class TestFig5:
    def test_breakeven_report(self, tiny_suite):
        report = BreakevenFigure("F5-T", set_size=2).run(tiny_suite)
        assert report.checks["associativity buys time somewhere in the plane"]
        assert any("TTL reference" in note for note in report.notes)


class TestEquationExperiments:
    def test_eq1_report(self, tiny_suite):
        report = EquationOneValidation().run(tiny_suite)
        assert len(report.rows) == len(tiny_suite)
        assert report.checks["Equation 1 within 10% of simulation on every trace"]

    def test_powerlaw_report(self, tiny_suite):
        report = MissRatePowerLaw().run(tiny_suite)
        assert any("fitted doubling factor" in note for note in report.notes)
        assert report.checks[
            "power-law fit is tight in the pre-plateau region (R^2 > 0.95)"
        ]


class TestAblations:
    def test_write_buffer_ablation(self, tiny_suite):
        report = WriteBufferAblation().run(tiny_suite)
        assert len(report.rows) == 4
        assert report.all_checks_pass

    def test_generator_ablation_needs_no_traces(self):
        report = GeneratorAblation().run([])
        assert len(report.rows) == 2
        assert report.checks[
            "both generators produce decreasing miss curves"
        ]


class TestCli:
    def test_list_command(self, capsys):
        from repro.experiments.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "F3-1" in out and "E-CONC" in out

    def test_run_command_saves_report(self, tmp_path, capsys):
        from repro.experiments.cli import main

        code = main(
            ["run", "A-GEN", "--records", "5000", "--traces", "1",
             "-o", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "A-GEN.txt").exists()
        assert "A-GEN" in capsys.readouterr().out


class TestSimulateCommand:
    def test_simulate_prints_per_level_table(self, tmp_path, capsys):
        from repro.experiments.cli import main

        cfg = tmp_path / "machine.cfg"
        cfg.write_text(
            "cpu cycle_ns=10\n"
            "l1 size=4KB block=16 split=true\n"
            "l2 size=64KB block=32 cycle=3\n"
        )
        assert main(
            ["simulate", str(cfg), "--records", "8000", "--traces", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "L1" in out and "L2" in out
        assert "memory traffic" in out

    def test_simulate_with_timing(self, tmp_path, capsys):
        from repro.experiments.cli import main

        cfg = tmp_path / "machine.cfg"
        cfg.write_text("l1 size=4KB block=16\n")
        assert main(
            ["simulate", str(cfg), "--records", "6000", "--traces", "1",
             "--timing"]
        ) == 0
        assert "cycles per instruction" in capsys.readouterr().out


class TestEquationExperimentsStructure:
    def test_conclusion_shifts_rows(self, tiny_suite):
        from repro.experiments.equations import ConclusionShifts

        report = ConclusionShifts().run(tiny_suite)
        quantities = [row[0] for row in report.rows]
        assert "single-level -> two-level shift" in quantities
        assert report.checks["L1 global miss ratio near the paper's 10%"]

    def test_l1opt_reports_one_row_per_l2_speed(self, tiny_suite):
        from repro.experiments.equations import OptimalL1VersusL2Speed

        report = OptimalL1VersusL2Speed().run(tiny_suite)
        assert len(report.rows) == len(OptimalL1VersusL2Speed.L2_SPEEDS_NS)
        assert report.checks["optimal L1 never shrinks as the L2 slows"]

    def test_eq3_reports_eq3_prediction(self, tiny_suite):
        from repro.experiments.equations import BreakevenL1Scaling

        report = BreakevenL1Scaling().run(tiny_suite)
        assert any("Equation 3 predicts" in note for note in report.notes)
        assert report.checks["budgets grow with every L1 doubling"]


class TestFig5Structure:
    def test_contour_map_embedded(self, tiny_suite):
        from repro.experiments.fig5 import fig5_2

        report = fig5_2().run(tiny_suite)
        assert any("legend" in note for note in report.notes)
        # One row per cycle time on the Y axis.
        from repro.experiments.fig5 import BREAKEVEN_CYCLE_TIMES

        assert len(report.rows) == len(BREAKEVEN_CYCLE_TIMES)
