"""Tests for the zero-copy trace store and worker handoff."""

import json

import numpy as np
import pytest

from repro.sim import memo
from repro.trace.record import IFETCH, READ, WRITE, Trace
from repro.trace.store import (
    CONTENT_DIGEST_SLOT,
    StoreCorruptError,
    STORE_PATH_SLOT,
    STORE_SUFFIX,
    TraceHandle,
    TraceStore,
    content_digest,
    export_traces,
    resolve_traces,
    trace_content_digest,
)
from repro.trace.workload import SyntheticWorkload


@pytest.fixture(autouse=True)
def fresh_memo():
    memo.clear_memo_cache()
    yield
    memo.clear_memo_cache()


def sample_trace(records=1000, warmup=100, seed=5, name="stored"):
    trace = SyntheticWorkload(seed=seed).trace(records, warmup=warmup)
    trace.name = name
    trace.metadata["origin"] = "synthetic"
    return trace


class TestStoreFormat:
    def test_save_open_roundtrip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / ("t" + STORE_SUFFIX)
        saved = TraceStore.save(trace, path)
        opened = TraceStore.open(path)
        assert opened == saved
        loaded = opened.as_trace()
        assert loaded.name == "stored"
        assert loaded.warmup == 100
        assert np.array_equal(loaded.kinds, trace.kinds)
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert loaded.metadata["origin"] == "synthetic"

    def test_open_returns_memmap_views(self, tmp_path):
        trace = sample_trace()
        TraceStore.save(trace, tmp_path / "t.mlt")
        loaded = TraceStore.open(tmp_path / "t.mlt").as_trace()
        assert isinstance(loaded.kinds, np.memmap)
        assert isinstance(loaded.addresses, np.memmap)

    def test_opened_arrays_are_read_only(self, tmp_path):
        trace = sample_trace()
        TraceStore.save(trace, tmp_path / "t.mlt")
        loaded = TraceStore.open(tmp_path / "t.mlt").as_trace()
        with pytest.raises(ValueError):
            loaded.kinds[0] = WRITE

    def test_save_drops_derived_metadata_but_records_digest(self, tmp_path):
        trace = sample_trace()
        trace.metadata["_stale"] = "derived"
        digest = trace_content_digest(trace)
        saved = TraceStore.save(trace, tmp_path / "t.mlt")
        assert saved.digest == digest
        assert "_stale" not in saved.metadata
        assert saved.metadata == {"origin": "synthetic"}

    def test_empty_trace_roundtrip(self, tmp_path):
        trace = Trace.from_records([], name="empty")
        TraceStore.save(trace, tmp_path / "t.mlt")
        loaded = TraceStore.open(tmp_path / "t.mlt").as_trace()
        assert len(loaded) == 0
        assert loaded.name == "empty"

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "t.mlt"
        path.write_bytes(b"NOTATRCE" + b"\0" * 64)
        with pytest.raises(ValueError, match="bad magic"):
            TraceStore.open(path)

    def test_truncated_file_rejected(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.mlt"
        TraceStore.save(trace, path)
        path.write_bytes(path.read_bytes()[:-100])
        with pytest.raises(ValueError, match="truncated"):
            TraceStore.open(path)

    def test_unsupported_version_rejected(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.mlt"
        TraceStore.save(trace, path)
        raw = path.read_bytes()
        mutated = raw.replace(b'"version": 1', b'"version": 9', 1)
        assert mutated != raw
        path.write_bytes(mutated)
        with pytest.raises(ValueError, match="unsupported store version"):
            TraceStore.open(path)


class TestDigestTrust:
    def test_digest_matches_whole_array_hash(self):
        import hashlib

        trace = sample_trace(records=3000)
        expected = hashlib.sha256(
            trace.kinds.tobytes() + trace.addresses.tobytes()
        ).hexdigest()
        assert content_digest(trace.kinds, trace.addresses) == expected

    def test_open_seeds_the_digest_slot(self, tmp_path):
        trace = sample_trace()
        TraceStore.save(trace, tmp_path / "t.mlt")
        loaded = TraceStore.open(tmp_path / "t.mlt").as_trace()
        assert loaded.metadata[CONTENT_DIGEST_SLOT] == trace_content_digest(trace)

    def test_fingerprint_identical_across_heap_and_store(self, tmp_path):
        trace = sample_trace()
        TraceStore.save(trace, tmp_path / "t.mlt")
        loaded = TraceStore.open(tmp_path / "t.mlt").as_trace()
        assert memo.trace_fingerprint(loaded) == memo.trace_fingerprint(trace)

    def test_slicing_a_store_trace_drops_store_slots(self, tmp_path):
        trace = sample_trace()
        TraceStore.save(trace, tmp_path / "t.mlt")
        loaded = TraceStore.open(tmp_path / "t.mlt").as_trace()
        assert STORE_PATH_SLOT in loaded.metadata
        half = loaded[: len(loaded) // 2]
        assert STORE_PATH_SLOT not in half.metadata
        assert CONTENT_DIGEST_SLOT not in half.metadata
        assert memo.trace_fingerprint(half) != memo.trace_fingerprint(loaded)


class TestWorkerHandoff:
    def test_store_backed_traces_export_as_paths(self, tmp_path):
        trace = sample_trace()
        TraceStore.save(trace, tmp_path / "t.mlt")
        loaded = TraceStore.open(tmp_path / "t.mlt").as_trace()
        handles, lease = export_traces([loaded])
        try:
            assert handles[0].kind == "store"
            assert lease.segments == []
            (resolved,) = resolve_traces(handles)
            assert np.array_equal(resolved.addresses, trace.addresses)
            assert resolved.warmup == trace.warmup
        finally:
            lease.release()

    def test_heap_traces_export_via_shared_memory(self):
        trace = sample_trace()
        fingerprint = memo.trace_fingerprint(trace)
        handles, lease = export_traces([trace])
        try:
            assert handles[0].kind == "shm"
            (resolved,) = resolve_traces(handles)
            assert np.array_equal(resolved.kinds, trace.kinds)
            assert np.array_equal(resolved.addresses, trace.addresses)
            assert resolved.name == trace.name
            assert resolved.warmup == trace.warmup
            assert resolved.metadata["origin"] == "synthetic"
            # Digest and fingerprint ride along so workers skip re-hashing.
            assert resolved.metadata[CONTENT_DIGEST_SLOT] == trace_content_digest(trace)
            assert memo.trace_fingerprint(resolved) == fingerprint
        finally:
            lease.release()

    def test_empty_traces_export_inline(self):
        handles, lease = export_traces([Trace.from_records([])])
        try:
            assert handles[0].kind == "inline"
            (resolved,) = resolve_traces(handles)
            assert len(resolved) == 0
        finally:
            lease.release()

    def test_lease_release_is_idempotent(self):
        handles, lease = export_traces([sample_trace(records=64, warmup=0)])
        assert handles[0].kind == "shm"
        lease.release()
        lease.release()
        assert lease.segments == []

    def test_unknown_handle_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace handle kind"):
            resolve_traces([TraceHandle("carrier-pigeon", ())])

    def test_mixed_kind_records_survive_handoff(self):
        trace = Trace.from_records(
            [(IFETCH, 0x10), (READ, 0x20), (WRITE, 0x30)], warmup=1
        )
        handles, lease = export_traces([trace])
        try:
            (resolved,) = resolve_traces(handles)
            assert list(resolved.records()) == list(trace.records())
        finally:
            lease.release()


class TestIntegrityVerify:
    def _saved(self, tmp_path):
        path = tmp_path / ("t" + STORE_SUFFIX)
        return TraceStore.save(sample_trace(), path), path

    def _flip(self, path, offset):
        blob = bytearray(path.read_bytes())
        blob[offset] ^= 0x01
        path.write_bytes(bytes(blob))

    def _strip_segment_digests(self, path):
        """Rewrite the header as a pre-per-segment-digest writer would
        have: same reserved length (space-padded), no segment digests."""
        raw = bytearray(path.read_bytes())
        length = int.from_bytes(raw[8:16], "little")
        header = json.loads(bytes(raw[16 : 16 + length]))
        del header["kinds_digest"]
        del header["addresses_digest"]
        blob = json.dumps(header).encode()
        raw[16 : 16 + length] = blob + b" " * (length - len(blob))
        path.write_bytes(bytes(raw))

    def test_save_records_per_segment_digests(self, tmp_path):
        saved, path = self._saved(tmp_path)
        opened = TraceStore.open(path)
        assert opened.kinds_digest == saved.kinds_digest
        assert opened.addresses_digest == saved.addresses_digest
        assert len(saved.kinds_digest) == 64
        assert saved.kinds_digest != saved.addresses_digest

    def test_verify_passes_on_a_clean_store(self, tmp_path):
        _, path = self._saved(tmp_path)
        TraceStore.open(path, verify=True)
        TraceStore.open(path).verify()

    def test_verify_names_the_rotted_segment(self, tmp_path):
        _, path = self._saved(tmp_path)
        self._flip(path, path.stat().st_size - 5)  # inside addresses
        with pytest.raises(StoreCorruptError, match="addresses segment"):
            TraceStore.open(path, verify=True)

        _, path = self._saved(tmp_path)
        self._flip(path, TraceStore.open(path).kinds_offset)
        with pytest.raises(StoreCorruptError, match="kinds segment"):
            TraceStore.open(path, verify=True)

    def test_open_without_verify_skips_the_hash(self, tmp_path):
        """Segment verification is opt-in: a bare open stays O(header)
        and will not notice bit rot inside the data pages."""
        _, path = self._saved(tmp_path)
        self._flip(path, path.stat().st_size - 5)
        TraceStore.open(path)  # no error: the header is intact

    def test_legacy_store_verifies_against_the_combined_digest(self, tmp_path):
        _, path = self._saved(tmp_path)
        self._strip_segment_digests(path)
        opened = TraceStore.open(path)
        assert opened.kinds_digest is None
        opened.verify()  # clean legacy store: combined digest matches

        self._flip(path, path.stat().st_size - 5)
        with pytest.raises(StoreCorruptError, match="legacy store"):
            TraceStore.open(path, verify=True)

    def test_corruption_errors_are_typed(self, tmp_path):
        # Not a store at all.
        garbage = tmp_path / "g.mlt"
        garbage.write_bytes(b"NOTATRCE" + b"\0" * 64)
        with pytest.raises(StoreCorruptError):
            TraceStore.open(garbage)

        # Header torn mid-length-field (a crash during a legacy
        # non-atomic write, or severe truncation).
        torn = tmp_path / "torn.mlt"
        torn.write_bytes(b"MLCTRACE" + b"\x07")
        with pytest.raises(StoreCorruptError, match="truncated store header"):
            TraceStore.open(torn)

        # Length field that would allocate garbage.
        bloated = tmp_path / "b.mlt"
        bloated.write_bytes(b"MLCTRACE" + (1 << 40).to_bytes(8, "little"))
        with pytest.raises(StoreCorruptError, match="implausible header length"):
            TraceStore.open(bloated)

        # Header bytes that are not JSON.
        unjson = tmp_path / "u.mlt"
        unjson.write_bytes(b"MLCTRACE" + (4).to_bytes(8, "little") + b"\xff\xfe{[")
        with pytest.raises(StoreCorruptError, match="unparseable"):
            TraceStore.open(unjson)

    def test_version_and_absence_are_not_corruption(self, tmp_path):
        _, path = self._saved(tmp_path)
        raw = path.read_bytes().replace(b'"version": 1', b'"version": 9', 1)
        path.write_bytes(raw)
        with pytest.raises(ValueError) as info:
            TraceStore.open(path)
        assert not isinstance(info.value, StoreCorruptError)

        with pytest.raises(FileNotFoundError):
            TraceStore.open(tmp_path / "absent.mlt")
