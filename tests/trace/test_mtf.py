"""Unit and property tests for the indexable move-to-front list."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.mtf import IndexableMTFList


class TestBasics:
    def test_push_and_len(self):
        mtf = IndexableMTFList(chunk_size=4)
        for i in range(10):
            mtf.push_front(i)
        assert len(mtf) == 10
        assert mtf.to_list() == list(reversed(range(10)))

    def test_pop_at_front(self):
        mtf = IndexableMTFList(chunk_size=4)
        for i in range(5):
            mtf.push_front(i)
        assert mtf.pop_at(0) == 4
        assert len(mtf) == 4

    def test_pop_at_deep(self):
        mtf = IndexableMTFList(chunk_size=2)
        for i in range(20):
            mtf.push_front(i)
        assert mtf.pop_at(19) == 0
        assert mtf.pop_at(18) == 1

    def test_touch_moves_to_front(self):
        mtf = IndexableMTFList(chunk_size=4)
        for i in range(6):
            mtf.push_front(i)
        assert mtf.touch(5) == 0
        assert mtf.to_list() == [0, 5, 4, 3, 2, 1]

    def test_peek_does_not_modify(self):
        mtf = IndexableMTFList(chunk_size=4)
        for i in range(6):
            mtf.push_front(i)
        before = mtf.to_list()
        assert mtf.peek_at(3) == before[3]
        assert mtf.to_list() == before

    def test_out_of_range_raises(self):
        mtf = IndexableMTFList()
        mtf.push_front(1)
        with pytest.raises(IndexError):
            mtf.pop_at(1)
        with pytest.raises(IndexError):
            mtf.peek_at(-1)

    def test_small_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            IndexableMTFList(chunk_size=1)

    def test_iteration_matches_to_list(self):
        mtf = IndexableMTFList(chunk_size=3)
        for i in range(11):
            mtf.push_front(i)
        assert list(mtf) == mtf.to_list()


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("push"), st.integers(0, 1000)),
            st.tuples(st.just("pop"), st.floats(0, 1)),
            st.tuples(st.just("touch"), st.floats(0, 1)),
        ),
        max_size=200,
    ),
    chunk_size=st.integers(2, 8),
)
def test_matches_reference_list_model(ops, chunk_size):
    """The chunked structure must behave exactly like a plain list."""
    mtf = IndexableMTFList(chunk_size=chunk_size)
    model = []
    for op, value in ops:
        if op == "push":
            mtf.push_front(value)
            model.insert(0, value)
        elif model:
            depth = int(value * (len(model) - 1))
            if op == "pop":
                assert mtf.pop_at(depth) == model.pop(depth)
            else:
                item = model.pop(depth)
                model.insert(0, item)
                assert mtf.touch(depth) == item
        assert len(mtf) == len(model)
    assert mtf.to_list() == model
