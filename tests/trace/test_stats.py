"""Tests for trace statistics and the stack-distance profiler."""

import numpy as np
import pytest

from repro.trace.record import IFETCH, READ, WRITE, Trace
from repro.trace.stats import TraceStatistics, stack_distance_profile


def trace_of(records):
    return Trace.from_records(records)


class TestTraceStatistics:
    def test_counts(self):
        trace = trace_of(
            [(IFETCH, 0), (IFETCH, 16), (READ, 256), (WRITE, 256), (READ, 512)]
        )
        stats = TraceStatistics.measure(trace, block_bytes=16)
        assert stats.records == 5
        assert stats.ifetches == 2
        assert stats.loads == 2
        assert stats.stores == 1
        assert stats.reads == 4

    def test_unique_blocks_uses_block_granularity(self):
        trace = trace_of([(READ, 0), (READ, 8), (READ, 16), (READ, 48)])
        stats = TraceStatistics.measure(trace, block_bytes=16)
        assert stats.unique_blocks == 3  # blocks 0, 1, 3
        assert stats.footprint_bytes == 48

    def test_fractions(self):
        trace = trace_of([(IFETCH, 0), (READ, 16), (IFETCH, 4), (WRITE, 32)])
        stats = TraceStatistics.measure(trace)
        assert stats.data_ref_per_ifetch == pytest.approx(1.0)
        assert stats.data_read_fraction == pytest.approx(0.5)

    def test_empty_trace(self):
        stats = TraceStatistics.measure(trace_of([]))
        assert stats.data_read_fraction == 0.0
        assert stats.data_ref_per_ifetch == 0.0

    def test_invalid_block_bytes(self):
        with pytest.raises(ValueError):
            TraceStatistics.measure(trace_of([(READ, 0)]), block_bytes=0)


def brute_force_distances(blocks):
    """Reference LRU stack-distance computation."""
    stack = []
    distances = []
    cold = 0
    for block in blocks:
        if block in stack:
            depth = stack.index(block)
            distances.append(depth + 1)
            stack.remove(block)
        else:
            cold += 1
        stack.insert(0, block)
    return distances, cold


class TestStackDistanceProfile:
    def test_matches_brute_force_on_small_trace(self):
        blocks = [1, 2, 3, 1, 2, 4, 1, 1, 3, 5, 2]
        trace = trace_of([(READ, b * 16) for b in blocks])
        profile = stack_distance_profile(trace, block_bytes=16)
        expected, cold = brute_force_distances(blocks)
        assert sorted(profile.distances.tolist()) == sorted(expected)
        assert profile.cold_references == cold

    def test_matches_brute_force_on_random_trace(self):
        rng = np.random.default_rng(3)
        blocks = rng.integers(0, 40, size=400).tolist()
        trace = trace_of([(READ, b * 16) for b in blocks])
        profile = stack_distance_profile(trace, block_bytes=16)
        expected, cold = brute_force_distances(blocks)
        assert sorted(profile.distances.tolist()) == sorted(expected)
        assert profile.cold_references == cold

    def test_immediate_reuse_has_distance_one(self):
        trace = trace_of([(READ, 0), (READ, 0)])
        profile = stack_distance_profile(trace)
        assert profile.distances.tolist() == [1]

    def test_miss_ratio_at_counts_cold_misses(self):
        # Two cold references + one reuse at distance 2.
        trace = trace_of([(READ, 0), (READ, 16), (READ, 0)])
        profile = stack_distance_profile(trace)
        assert profile.miss_ratio_at(1) == pytest.approx(1.0)
        assert profile.miss_ratio_at(2) == pytest.approx(2 / 3)

    def test_survival_monotone_nonincreasing(self):
        rng = np.random.default_rng(5)
        blocks = rng.integers(0, 100, size=1000).tolist()
        trace = trace_of([(READ, b * 16) for b in blocks])
        profile = stack_distance_profile(trace)
        depths = np.array([1, 2, 4, 8, 16, 32, 64])
        surv = profile.survival(depths)
        assert np.all(np.diff(surv) <= 1e-12)

    def test_max_references_truncates(self):
        trace = trace_of([(READ, i * 16) for i in range(100)])
        profile = stack_distance_profile(trace, max_references=10)
        assert profile.total_references == 10

    def test_block_granularity_merges_addresses(self):
        # Two addresses in the same 64-byte block are the same block.
        trace = trace_of([(READ, 0), (READ, 32)])
        profile = stack_distance_profile(trace, block_bytes=64)
        assert profile.cold_references == 1
        assert profile.distances.tolist() == [1]
