"""Tests for trace transformations."""

import numpy as np
import pytest

from repro.trace.record import IFETCH, READ, WRITE, Trace
from repro.trace.transforms import (
    concatenate_measured,
    data_references,
    filter_kinds,
    instruction_fetches,
    interleave_round_robin,
    remap_compact,
    split_by_process,
    to_block_granularity,
)


def mixed_trace(warmup=0):
    return Trace.from_records(
        [
            (IFETCH, 0x1000),
            (READ, 0x2000),
            (WRITE, 0x3000),
            (IFETCH, 0x1004),
            (READ, 0x2010),
        ],
        name="mix",
        warmup=warmup,
    )


class TestFilterKinds:
    def test_data_references(self):
        data = data_references(mixed_trace())
        assert list(data.kinds) == [READ, WRITE, READ]

    def test_instruction_fetches(self):
        instr = instruction_fetches(mixed_trace())
        assert list(instr.kinds) == [IFETCH, IFETCH]
        assert instr.name.endswith("-ifetch")

    def test_warmup_remapped(self):
        # Warmup covers the first 3 records: 2 data refs among them.
        data = data_references(mixed_trace(warmup=3))
        assert data.warmup == 2

    def test_empty_kinds_rejected(self):
        with pytest.raises(ValueError):
            filter_kinds(mixed_trace(), [])


class TestSplitByProcess:
    def test_splits_address_spaces(self):
        records = [
            (READ, (1 << 44) | 0x10),
            (READ, (2 << 44) | 0x20),
            (WRITE, (1 << 44) | 0x30),
        ]
        parts = split_by_process(Trace.from_records(records))
        assert set(parts) == {1, 2}
        assert len(parts[1]) == 2
        assert len(parts[2]) == 1

    def test_per_process_warmup(self):
        records = [
            (READ, (1 << 44) | 0x10),
            (READ, (2 << 44) | 0x20),
            (READ, (1 << 44) | 0x30),
        ]
        parts = split_by_process(Trace.from_records(records, warmup=2))
        assert parts[1].warmup == 1
        assert parts[2].warmup == 1

    def test_roundtrip_with_interleave(self):
        a = Trace.from_records([(READ, i * 16) for i in range(6)], name="a")
        b = Trace.from_records([(WRITE, i * 16) for i in range(4)], name="b")
        merged = interleave_round_robin([a, b], quantum=2)
        parts = split_by_process(merged)
        assert len(parts[1]) == 6
        assert len(parts[2]) == 4
        # Relative order within each process is preserved.
        assert list(parts[2].kinds) == [WRITE] * 4

    def test_invalid_shift(self):
        with pytest.raises(ValueError):
            split_by_process(mixed_trace(), pid_shift=64)


class TestBlockGranularity:
    def test_aligns_addresses(self):
        trace = Trace.from_records([(READ, 0x1234), (WRITE, 0x1010)])
        aligned = to_block_granularity(trace, 16)
        assert list(aligned.addresses) == [0x1230, 0x1010]

    def test_preserves_warmup_and_kinds(self):
        aligned = to_block_granularity(mixed_trace(warmup=2), 64)
        assert aligned.warmup == 2
        assert np.array_equal(aligned.kinds, mixed_trace().kinds)

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            to_block_granularity(mixed_trace(), 24)


class TestRemapCompact:
    def test_first_appearance_numbering(self):
        trace = Trace.from_records(
            [(READ, 0x9990), (READ, 0x10), (READ, 0x9990), (READ, 0x5000)]
        )
        remapped, unique = remap_compact(trace, block_bytes=16)
        assert unique == 3
        assert list(remapped.addresses) == [0, 16, 0, 32]

    def test_miss_pattern_preserved_for_fully_associative(self):
        """Compaction preserves reuse structure (stack distances)."""
        from repro.trace.stats import stack_distance_profile

        rng = np.random.default_rng(2)
        addrs = rng.integers(0, 1 << 40, size=300, dtype=np.uint64) & ~np.uint64(15)
        trace = Trace(np.full(300, READ, dtype=np.uint8), addrs)
        remapped, _ = remap_compact(trace, block_bytes=16)
        original = stack_distance_profile(trace, block_bytes=16)
        compacted = stack_distance_profile(remapped, block_bytes=16)
        assert sorted(original.distances.tolist()) == sorted(
            compacted.distances.tolist()
        )


class TestInterleave:
    def test_quantum_structure(self):
        a = Trace.from_records([(READ, i) for i in range(4)])
        b = Trace.from_records([(WRITE, i) for i in range(4)])
        merged = interleave_round_robin([a, b], quantum=2)
        assert list(merged.kinds) == [READ, READ, WRITE, WRITE] * 2

    def test_exhausted_traces_drop_out(self):
        a = Trace.from_records([(READ, i) for i in range(5)])
        b = Trace.from_records([(WRITE, i) for i in range(1)])
        merged = interleave_round_robin([a, b], quantum=2)
        assert len(merged) == 6
        assert list(merged.kinds).count(WRITE) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            interleave_round_robin([], quantum=2)
        with pytest.raises(ValueError):
            interleave_round_robin([mixed_trace()], quantum=0)


class TestConcatenateMeasured:
    def test_repeats_measured_region_only(self):
        trace = Trace.from_records(
            [(READ, 1), (READ, 2), (READ, 3)], warmup=1
        )
        longer = concatenate_measured(trace, repeats=3)
        assert len(longer) == 1 + 2 * 3
        assert longer.warmup == 1
        assert list(longer.addresses) == [1, 2, 3, 2, 3, 2, 3]

    def test_single_repeat_is_identity(self):
        trace = mixed_trace(warmup=2)
        same = concatenate_measured(trace, repeats=1)
        assert np.array_equal(same.addresses, trace.addresses)

    def test_validation(self):
        with pytest.raises(ValueError):
            concatenate_measured(mixed_trace(), repeats=0)
