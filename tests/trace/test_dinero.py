"""Tests for Dinero trace I/O."""

import numpy as np
import pytest

from repro.trace import IFETCH, READ, WRITE, Trace, read_dinero, write_dinero


class TestRoundtrip:
    def test_roundtrip_preserves_records(self, tmp_path):
        trace = Trace.from_records(
            [(IFETCH, 0x1000), (READ, 0xFF), (WRITE, 0xDEADBEEF)], name="rt"
        )
        path = tmp_path / "rt.din"
        write_dinero(trace, path)
        loaded = read_dinero(path)
        assert list(loaded.records()) == list(trace.records())

    def test_name_defaults_to_stem(self, tmp_path):
        trace = Trace.from_records([(READ, 1)])
        path = tmp_path / "mytrace.din"
        write_dinero(trace, path)
        assert read_dinero(path).name == "mytrace"

    def test_explicit_name_overrides(self, tmp_path):
        trace = Trace.from_records([(READ, 1)])
        path = tmp_path / "t.din"
        write_dinero(trace, path)
        assert read_dinero(path, name="other").name == "other"


class TestFormat:
    def test_labels_follow_dinero_convention(self, tmp_path):
        trace = Trace.from_records([(READ, 0x10), (WRITE, 0x20), (IFETCH, 0x30)])
        path = tmp_path / "labels.din"
        write_dinero(trace, path)
        lines = path.read_text().splitlines()
        assert lines == ["0 10", "1 20", "2 30"]

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "blank.din"
        path.write_text("0 10\n\n2 20\n")
        trace = read_dinero(path)
        assert list(trace.records()) == [(READ, 0x10), (IFETCH, 0x20)]

    def test_malformed_line_reports_lineno(self, tmp_path):
        path = tmp_path / "bad.din"
        path.write_text("0 10\nnot a record\n")
        with pytest.raises(ValueError, match=":2"):
            read_dinero(path)

    def test_unknown_label_rejected(self, tmp_path):
        path = tmp_path / "lbl.din"
        path.write_text("9 10\n")
        with pytest.raises(ValueError, match="unknown Dinero label"):
            read_dinero(path)

    def test_unparseable_address_rejected(self, tmp_path):
        path = tmp_path / "addr.din"
        path.write_text("0 zz!!\n")
        with pytest.raises(ValueError, match="unparseable"):
            read_dinero(path)

    def test_large_trace_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        kinds = rng.integers(0, 3, size=5000).astype(np.uint8)
        addrs = rng.integers(0, 1 << 40, size=5000).astype(np.uint64)
        trace = Trace(kinds, addrs)
        path = tmp_path / "big.din"
        write_dinero(trace, path)
        loaded = read_dinero(path)
        assert np.array_equal(loaded.kinds, trace.kinds)
        assert np.array_equal(loaded.addresses, trace.addresses)
