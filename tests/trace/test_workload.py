"""Tests for per-process workload composition."""

import numpy as np
import pytest

from repro.trace.record import IFETCH
from repro.trace.stats import TraceStatistics
from repro.trace.workload import SyntheticWorkload


class TestRecordProduction:
    def test_exact_count(self):
        workload = SyntheticWorkload(seed=0)
        for count in (1, 7, 1000, 99_991):
            kinds, addrs = workload.records(count)
            assert len(kinds) == count
            assert len(addrs) == count

    def test_zero_and_negative_counts(self):
        workload = SyntheticWorkload(seed=0)
        assert len(workload.records(0)[0]) == 0
        assert len(workload.records(-5)[0]) == 0

    def test_trace_helper_sets_name_and_warmup(self):
        workload = SyntheticWorkload(seed=1)
        trace = workload.trace(5000, name="proc", warmup=100)
        assert trace.name == "proc"
        assert trace.warmup == 100
        assert len(trace) == 5000


class TestStreamStructure:
    def test_starts_with_ifetch(self):
        kinds, _ = SyntheticWorkload(seed=2).records(1000)
        assert kinds[0] == IFETCH

    def test_no_two_consecutive_data_records(self):
        """At most one data access per instruction fetch."""
        kinds, _ = SyntheticWorkload(seed=3).records(20_000)
        is_data = kinds != IFETCH
        assert not np.any(is_data[1:] & is_data[:-1])

    def test_data_reference_fraction_near_configured(self):
        workload = SyntheticWorkload(seed=4, data_ref_fraction=0.5)
        trace = workload.trace(60_000)
        stats = TraceStatistics.measure(trace)
        assert stats.data_ref_per_ifetch == pytest.approx(0.5, abs=0.03)

    def test_data_read_fraction_near_configured(self):
        workload = SyntheticWorkload(seed=5, data_read_fraction=0.65)
        trace = workload.trace(60_000)
        stats = TraceStatistics.measure(trace)
        assert stats.data_read_fraction == pytest.approx(0.65, abs=0.03)

    def test_data_ref_fraction_zero_gives_pure_ifetch_stream(self):
        kinds, _ = SyntheticWorkload(seed=6, data_ref_fraction=0.0).records(5000)
        assert np.all(kinds == IFETCH)

    def test_code_and_data_regions_disjoint(self):
        workload = SyntheticWorkload(seed=7)
        kinds, addrs = workload.records(30_000)
        code = addrs[kinds == IFETCH]
        data = addrs[kinds != IFETCH]
        assert code.max() < data.min()


class TestParameterValidation:
    @pytest.mark.parametrize("fraction", [-0.1, 1.5])
    def test_invalid_data_ref_fraction(self, fraction):
        with pytest.raises(ValueError):
            SyntheticWorkload(data_ref_fraction=fraction)

    @pytest.mark.parametrize("fraction", [-0.1, 1.5])
    def test_invalid_data_read_fraction(self, fraction):
        with pytest.raises(ValueError):
            SyntheticWorkload(data_read_fraction=fraction)
