"""Tests for the multiprogramming scheduler."""

import numpy as np
import pytest

from repro.trace.multiprogram import MultiprogramScheduler, ProcessSpec
from repro.trace.workload import SyntheticWorkload


def make_process(index, seed_offset=0):
    base = index << 44
    return ProcessSpec(
        name=f"p{index}",
        workload=SyntheticWorkload(seed=100 * index + seed_offset, address_base=base),
    )


class TestScheduling:
    def test_exact_record_count(self):
        sched = MultiprogramScheduler(
            [make_process(1), make_process(2)], switch_interval=500, seed=0
        )
        trace = sched.trace(10_000)
        assert len(trace) == 10_000

    def test_all_processes_appear(self):
        processes = [make_process(i) for i in range(1, 5)]
        sched = MultiprogramScheduler(processes, switch_interval=200, seed=1)
        trace = sched.trace(20_000)
        spaces = set((trace.addresses >> np.uint64(44)).tolist())
        assert spaces == {1, 2, 3, 4}

    def test_address_spaces_disjoint_by_construction(self):
        processes = [make_process(i) for i in range(1, 4)]
        sched = MultiprogramScheduler(processes, switch_interval=300, seed=2)
        trace = sched.trace(9_000)
        # Every address maps back to exactly one process id in the top bits.
        spaces = trace.addresses >> np.uint64(44)
        assert np.all((spaces >= 1) & (spaces <= 3))

    def test_context_switches_alternate_processes(self):
        """With two processes the stream must alternate address spaces."""
        processes = [make_process(1), make_process(2)]
        sched = MultiprogramScheduler(processes, switch_interval=100, seed=3)
        trace = sched.trace(5_000)
        spaces = (trace.addresses >> np.uint64(44)).astype(np.int64)
        switches = np.count_nonzero(np.diff(spaces) != 0)
        # Mean quantum 100 over 5000 records: expect on the order of 50
        # switches; demand at least a handful and no degenerate single run.
        assert switches >= 10

    def test_switch_interval_controls_switch_rate(self):
        def processes():
            return [make_process(1), make_process(2)]

        fine = MultiprogramScheduler(processes(), switch_interval=50, seed=4)
        coarse = MultiprogramScheduler(processes(), switch_interval=2000, seed=4)

        def count_switches(t):
            return int(
                np.count_nonzero(
                    np.diff((t.addresses >> np.uint64(44)).astype(np.int64))
                )
            )
        assert count_switches(fine.trace(20_000)) > 4 * count_switches(
            coarse.trace(20_000)
        )

    def test_kernel_bursts_injected(self):
        kernel = SyntheticWorkload(seed=9, address_base=15 << 44)
        sched = MultiprogramScheduler(
            [make_process(1), make_process(2)],
            switch_interval=500,
            kernel=kernel,
            kernel_burst=50,
            seed=5,
        )
        trace = sched.trace(20_000)
        spaces = set((trace.addresses >> np.uint64(44)).tolist())
        assert 15 in spaces

    def test_warmup_marker_applied(self):
        sched = MultiprogramScheduler([make_process(1)], seed=6)
        trace = sched.trace(4_000, warmup=1_000)
        assert trace.warmup == 1_000

    def test_deterministic_given_seed(self):
        def build():
            return MultiprogramScheduler(
                [make_process(1), make_process(2)], switch_interval=300, seed=7
            )
        a = build().trace(8_000)
        b = build().trace(8_000)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.kinds, b.kinds)


class TestValidation:
    def test_empty_process_list_rejected(self):
        with pytest.raises(ValueError):
            MultiprogramScheduler([])

    def test_nonpositive_count_rejected(self):
        sched = MultiprogramScheduler([make_process(1)])
        with pytest.raises(ValueError):
            sched.trace(0)

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            ProcessSpec(name="x", workload=SyntheticWorkload(), weight=0.0)

    def test_invalid_switch_interval_rejected(self):
        with pytest.raises(ValueError):
            MultiprogramScheduler([make_process(1)], switch_interval=0)
