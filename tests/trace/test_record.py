"""Unit tests for the trace representation."""

import numpy as np
import pytest

from repro.trace import IFETCH, READ, WRITE, Trace, concat_traces


def make_trace(records, **kwargs):
    return Trace.from_records(records, **kwargs)


class TestTraceConstruction:
    def test_from_records_roundtrip(self):
        records = [(IFETCH, 0x1000), (READ, 0x2000), (WRITE, 0x3000)]
        trace = make_trace(records)
        assert list(trace.records()) == records

    def test_empty_trace(self):
        trace = make_trace([])
        assert len(trace) == 0
        assert trace.read_count == 0
        assert trace.write_count == 0

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            Trace(np.zeros(3, dtype=np.uint8), np.zeros(4, dtype=np.uint64))

    def test_multidimensional_arrays_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            Trace(np.zeros((2, 2), dtype=np.uint8), np.zeros((2, 2), dtype=np.uint64))

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="invalid record kinds"):
            Trace(np.array([7], dtype=np.uint8), np.array([0], dtype=np.uint64))

    def test_warmup_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="warmup"):
            make_trace([(READ, 0)], warmup=2)

    def test_dtypes_coerced(self):
        trace = Trace([IFETCH, WRITE], [1, 2])
        assert trace.kinds.dtype == np.uint8
        assert trace.addresses.dtype == np.uint64


class TestTraceCounts:
    def test_reads_include_ifetches(self):
        trace = make_trace(
            [(IFETCH, 0), (IFETCH, 4), (READ, 8), (WRITE, 12), (WRITE, 16)]
        )
        assert trace.read_count == 3
        assert trace.write_count == 2
        assert trace.ifetch_count == 2
        assert trace.load_count == 1

    def test_len_matches_record_count(self):
        trace = make_trace([(READ, i) for i in range(17)])
        assert len(trace) == 17


class TestTraceSlicing:
    def test_getitem_single(self):
        trace = make_trace([(IFETCH, 0x10), (WRITE, 0x20)])
        assert trace[1] == (WRITE, 0x20)

    def test_slice_preserves_residual_warmup(self):
        trace = make_trace([(READ, i) for i in range(10)], warmup=6)
        tail = trace[4:]
        assert len(tail) == 6
        assert tail.warmup == 2

    def test_slice_past_warmup_has_zero_warmup(self):
        trace = make_trace([(READ, i) for i in range(10)], warmup=3)
        assert trace[5:].warmup == 0


class TestSliceWarmupAccounting:
    """Regression tests: residual-warmup arithmetic in ``__getitem__``.

    Two bugs lived here.  A start below ``-len(trace)`` was used raw, so
    ``trace[-200:]`` on a 100-record trace *inflated* the residual warmup
    past the boundary itself.  And the slice step was ignored outright:
    ``trace[::2]`` kept the full warmup count even though only every
    other warm record survives into the slice.
    """

    def test_negative_start_past_beginning_is_clamped(self):
        trace = make_trace([(READ, i) for i in range(100)], warmup=10)
        # Pre-fix this came out as 10 - (-200) = 210, clamped to len = 100.
        assert trace[-200:].warmup == 10

    def test_negative_start_within_range(self):
        trace = make_trace([(READ, i) for i in range(100)], warmup=10)
        assert trace[-95:].warmup == 5

    def test_step_counts_only_selected_warm_records(self):
        trace = make_trace([(READ, i) for i in range(10)], warmup=6)
        # Selected original indices: 0, 3, 6, 9; warm ones (< 6): 0, 3.
        assert trace[0:10:3].warmup == 2

    def test_step_with_offset_start(self):
        trace = make_trace([(READ, i) for i in range(10)], warmup=5)
        # Selected original indices: 1, 3, 5, 7, 9; warm ones: 1, 3.
        assert trace[1::2].warmup == 2

    def test_step_slice_entirely_past_warmup(self):
        trace = make_trace([(READ, i) for i in range(10)], warmup=3)
        assert trace[4::2].warmup == 0

    def test_negative_step_rejected(self):
        trace = make_trace([(READ, i) for i in range(10)])
        with pytest.raises(ValueError, match="positive step"):
            trace[::-1]


class TestChunks:
    def test_chunks_cover_the_trace_in_order(self):
        trace = make_trace([(READ, 16 * i) for i in range(10)])
        chunks = list(trace.chunks(3))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        rejoined = [record for chunk in chunks for record in chunk.records()]
        assert rejoined == list(trace.records())

    def test_chunks_carry_residual_warmup(self):
        trace = make_trace([(READ, i) for i in range(10)], warmup=4)
        assert [c.warmup for c in trace.chunks(3)] == [3, 1, 0, 0]

    def test_chunks_are_zero_copy_views(self):
        trace = make_trace([(READ, i) for i in range(10)])
        chunk = next(trace.chunks(4))
        assert np.shares_memory(chunk.kinds, trace.kinds)
        assert np.shares_memory(chunk.addresses, trace.addresses)

    def test_chunk_size_must_be_positive(self):
        trace = make_trace([(READ, 0)])
        with pytest.raises(ValueError, match="positive"):
            next(trace.chunks(0))

    def test_empty_trace_yields_no_chunks(self):
        assert list(make_trace([]).chunks(4)) == []


class TestTracePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = make_trace(
            [(IFETCH, 0xDEAD), (WRITE, 0xBEEF)], name="x", warmup=1
        )
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert list(loaded.records()) == list(trace.records())
        assert loaded.name == "x"
        assert loaded.warmup == 1

    def test_save_load_preserves_metadata(self, tmp_path):
        """Regression: ``save`` silently dropped ``trace.metadata``, so a
        workload's provenance (generator, seed, ...) vanished on the way
        through the disk cache."""
        trace = make_trace([(READ, 0)], name="x")
        trace.metadata.update({"origin": "synthetic", "seed": 7})
        path = tmp_path / "trace.npz"
        trace.save(path)
        assert Trace.load(path).metadata == {"origin": "synthetic", "seed": 7}

    def test_save_drops_derived_metadata(self, tmp_path):
        trace = make_trace([(READ, 0)])
        trace.metadata.update({"origin": "synthetic", "_derived": "stale"})
        path = tmp_path / "trace.npz"
        trace.save(path)
        assert Trace.load(path).metadata == {"origin": "synthetic"}


class TestConcat:
    def test_concat_appends_records(self):
        a = make_trace([(READ, 1)], warmup=1)
        b = make_trace([(WRITE, 2)])
        joined = concat_traces([a, b])
        assert list(joined.records()) == [(READ, 1), (WRITE, 2)]
        assert joined.warmup == 1

    def test_concat_empty_list_rejected(self):
        with pytest.raises(ValueError):
            concat_traces([])


class TestDerivedMetadata:
    """Structural operations must drop content-derived metadata.

    Regression: slicing used to copy the parent's metadata wholesale,
    including the memoisation layer's cached content fingerprint -- so a
    sliced trace aliased its parent's memoised simulation results.
    """

    def setup_method(self):
        from repro.sim import memo

        memo.clear_memo_cache()

    def teardown_method(self):
        from repro.sim import memo

        memo.clear_memo_cache()

    def test_slice_gets_a_fresh_fingerprint(self):
        from repro.sim import memo

        trace = make_trace([(READ, 64 * i) for i in range(100)])
        parent_fingerprint = memo.trace_fingerprint(trace)
        assert memo._FINGERPRINT_SLOT in trace.metadata
        half = trace[:50]
        assert memo._FINGERPRINT_SLOT not in half.metadata
        assert memo.trace_fingerprint(half) != parent_fingerprint

    def test_slice_keeps_plain_metadata(self):
        trace = make_trace([(READ, 0), (WRITE, 64)])
        trace.metadata.update({"origin": "synthetic", "_derived": "stale"})
        assert trace[:1].metadata == {"origin": "synthetic"}

    def test_concat_strips_derived_and_keeps_plain_metadata(self):
        from repro.sim import memo

        a = make_trace([(READ, 64 * i) for i in range(50)])
        a.metadata["origin"] = "synthetic"
        b = make_trace([(WRITE, 64 * i) for i in range(50)])
        memo.trace_fingerprint(a)
        joined = concat_traces([a, b])
        assert memo._FINGERPRINT_SLOT not in joined.metadata
        assert joined.metadata == {"origin": "synthetic"}

    def test_sliced_trace_memoises_its_own_results(self):
        from repro.sim import memo
        from repro.sim.config import LevelConfig, SystemConfig

        config = SystemConfig(
            levels=(LevelConfig(size_bytes=1024, block_bytes=16),)
        )
        trace = make_trace([(READ, 64 * i) for i in range(100)])
        full = memo.run_functional_memo(trace, config)
        assert full.cpu_reads == 100
        # Pre-fix, the slice carried the parent's cached fingerprint and
        # this lookup returned the 100-read result.
        half = memo.run_functional_memo(trace[:50], config)
        assert half.cpu_reads == 50
