"""Tests for the instruction-fetch stream model."""

import numpy as np
import pytest

from repro.trace.instr import InstructionStreamGenerator
from repro.units import WORD_BYTES


class TestInstructionStream:
    def test_exact_record_count(self):
        gen = InstructionStreamGenerator(seed=0)
        assert len(gen.addresses(12_345)) == 12_345

    def test_zero_count(self):
        gen = InstructionStreamGenerator(seed=0)
        assert len(gen.addresses(0)) == 0

    def test_addresses_word_aligned(self):
        gen = InstructionStreamGenerator(address_base=0x40000, seed=1)
        addrs = gen.addresses(5_000)
        assert np.all(addrs % WORD_BYTES == 0)

    def test_addresses_within_code_segment(self):
        gen = InstructionStreamGenerator(
            function_count=32, function_words=16, address_base=0x1000, seed=2
        )
        addrs = gen.addresses(10_000)
        assert addrs.min() >= 0x1000
        assert addrs.max() < 0x1000 + gen.footprint_bytes

    def test_footprint_bytes(self):
        gen = InstructionStreamGenerator(function_count=10, function_words=8)
        assert gen.footprint_bytes == 10 * 8 * WORD_BYTES

    def test_mostly_sequential(self):
        """The stream should be dominated by +4 byte steps (sequential runs)."""
        gen = InstructionStreamGenerator(mean_run_length=12.0, seed=3)
        addrs = gen.addresses(20_000).astype(np.int64)
        sequential = np.mean(np.diff(addrs) == WORD_BYTES)
        assert sequential > 0.75

    def test_mean_run_length_controls_sequentiality(self):
        short = InstructionStreamGenerator(mean_run_length=2.0, seed=4)
        long = InstructionStreamGenerator(mean_run_length=30.0, seed=4)
        def frac(g):
            return np.mean(np.diff(g.addresses(20_000).astype(np.int64)) == 4)

        assert frac(long) > frac(short)

    def test_hot_functions_dominate(self):
        gen = InstructionStreamGenerator(
            function_count=256, function_words=32, zipf_alpha=1.4, seed=5
        )
        addrs = gen.addresses(30_000)
        funcs = addrs // (32 * WORD_BYTES)
        _, counts = np.unique(funcs, return_counts=True)
        top_share = np.sort(counts)[::-1][:8].sum() / counts.sum()
        assert top_share > 0.3

    def test_deterministic_given_seed(self):
        a = InstructionStreamGenerator(seed=6).addresses(4000)
        b = InstructionStreamGenerator(seed=6).addresses(4000)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"function_count": 0},
            {"function_words": 0},
            {"mean_run_length": 0.5},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            InstructionStreamGenerator(**kwargs)
