"""Tests for the synthetic data-reference generators.

The critical property is the paper calibration: the LRU miss ratio of the
generated stream must fall by roughly the configured factor per cache-size
doubling (0.69 in the paper; section 4).
"""

import math

import numpy as np
import pytest

from repro.trace.record import Trace, READ
from repro.trace.stats import stack_distance_profile
from repro.trace.synthetic import (
    PAPER_DOUBLING_FACTOR,
    ParetoStackDistanceModel,
    StackDistanceGenerator,
    ZipfGenerator,
    theta_for_doubling_factor,
)


class TestThetaCalibration:
    def test_paper_factor_maps_to_documented_theta(self):
        theta = theta_for_doubling_factor(PAPER_DOUBLING_FACTOR)
        assert theta == pytest.approx(-math.log2(0.69))

    def test_doubling_factor_recovered_from_ccdf(self):
        model = ParetoStackDistanceModel()
        for size in (64, 256, 1024):
            ratio = model.ccdf(2 * size) / model.ccdf(size)
            assert ratio == pytest.approx(PAPER_DOUBLING_FACTOR, rel=1e-9)

    @pytest.mark.parametrize("factor", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_factor_rejected(self, factor):
        with pytest.raises(ValueError):
            theta_for_doubling_factor(factor)


class TestParetoSampling:
    def test_samples_at_least_one(self):
        model = ParetoStackDistanceModel()
        rng = np.random.default_rng(0)
        samples = model.sample(rng, 10_000)
        assert samples.min() >= 1

    def test_empirical_survival_matches_model(self):
        model = ParetoStackDistanceModel()
        rng = np.random.default_rng(1)
        samples = model.sample(rng, 200_000)
        for depth in (1, 4, 32, 256):
            empirical = np.mean(samples > depth)
            assert empirical == pytest.approx(model.survival(depth), rel=0.05)

    def test_invalid_theta_rejected(self):
        with pytest.raises(ValueError):
            ParetoStackDistanceModel(theta=0.0)


class TestStackDistanceGenerator:
    def test_deterministic_given_seed(self):
        a = StackDistanceGenerator(seed=7).addresses(1000)
        b = StackDistanceGenerator(seed=7).addresses(1000)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = StackDistanceGenerator(seed=1).addresses(1000)
        b = StackDistanceGenerator(seed=2).addresses(1000)
        assert not np.array_equal(a, b)

    def test_addresses_are_block_aligned_with_base(self):
        gen = StackDistanceGenerator(block_bytes=32, address_base=1 << 40, seed=0)
        addrs = gen.addresses(500)
        assert np.all(addrs >= 1 << 40)
        assert np.all((addrs - (1 << 40)) % 32 == 0)

    def test_stream_continues_across_calls(self):
        gen = StackDistanceGenerator(seed=5)
        first = gen.addresses(500)
        second = gen.addresses(500)
        joined = np.concatenate([first, second])
        replay = StackDistanceGenerator(seed=5).addresses(1000)
        # Not necessarily identical record-for-record (batched RNG draws),
        # but the footprint must keep growing rather than reset.
        assert len(np.unique(joined)) > len(np.unique(first))
        assert replay.shape == joined.shape

    def test_miss_curve_matches_paper_doubling_factor(self):
        """Fully-associative LRU miss ratio should fall ~0.69 per doubling."""
        gen = StackDistanceGenerator(seed=11)
        addrs = gen.addresses(120_000)
        trace = Trace(np.full(len(addrs), READ, dtype=np.uint8), addrs)
        profile = stack_distance_profile(trace, block_bytes=16)
        # Use reuse-only survival to exclude the compulsory-miss floor, and
        # stay well below the footprint: sampled distances beyond the stack
        # allocate fresh blocks, which truncates the measured tail near the
        # footprint (the plateau the paper sees for very large caches).
        sizes = [16, 32, 64, 128, 256]
        survivals = profile.survival(np.array(sizes))
        factors = [survivals[i + 1] / survivals[i] for i in range(len(sizes) - 1)]
        mean_factor = float(np.mean(factors))
        assert 0.60 <= mean_factor <= 0.76

    def test_new_block_fraction_grows_footprint(self):
        slow = StackDistanceGenerator(seed=3)
        fast = StackDistanceGenerator(seed=3, new_block_fraction=0.05)
        slow.addresses(20_000)
        fast.addresses(20_000)
        assert fast.footprint_blocks > slow.footprint_blocks

    def test_sequential_fraction_produces_adjacent_blocks(self):
        gen = StackDistanceGenerator(seed=9, sequential_fraction=0.5)
        blocks = gen.blocks(5_000)
        adjacent = np.mean(np.diff(blocks) == 1)
        assert adjacent > 0.2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"block_bytes": 0},
            {"sequential_fraction": 1.0},
            {"new_block_fraction": -0.1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            StackDistanceGenerator(**kwargs)


class TestZipfGenerator:
    def test_deterministic_given_seed(self):
        a = ZipfGenerator(seed=4).addresses(2000)
        b = ZipfGenerator(seed=4).addresses(2000)
        assert np.array_equal(a, b)

    def test_blocks_within_population(self):
        gen = ZipfGenerator(population_blocks=1024, seed=0)
        blocks = gen.blocks(10_000)
        assert blocks.min() >= 0
        assert blocks.max() < 1024

    def test_popularity_is_skewed(self):
        gen = ZipfGenerator(population_blocks=4096, alpha=1.3, seed=2)
        blocks = gen.blocks(50_000)
        _, counts = np.unique(blocks, return_counts=True)
        top_share = np.sort(counts)[::-1][:41].sum() / counts.sum()
        # Top 1% of observed blocks should absorb a large share of accesses.
        assert top_share > 0.25

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ZipfGenerator(population_blocks=1)
        with pytest.raises(ValueError):
            ZipfGenerator(alpha=0.0)
