"""Tests for cold-start handling."""

import pytest

from repro.trace.record import READ, Trace
from repro.trace.warmup import mark_warmup, skip_warmup, warmup_boundary


def trace_of(n, warmup=0):
    return Trace.from_records([(READ, i * 16) for i in range(n)], warmup=warmup)


class TestWarmupBoundary:
    def test_scales_with_cache_size(self):
        trace = trace_of(1_000_000)
        small = warmup_boundary(trace, 4 * 1024)
        large = warmup_boundary(trace, 64 * 1024)
        assert large == 16 * small

    def test_capped_at_half_the_trace(self):
        trace = trace_of(100)
        assert warmup_boundary(trace, 1 << 30) == 50

    def test_fill_factor(self):
        trace = trace_of(1_000_000)
        base = warmup_boundary(trace, 16 * 1024, fill_factor=1.0)
        assert warmup_boundary(trace, 16 * 1024, fill_factor=4.0) == 4 * base

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"largest_cache_bytes": 0},
            {"largest_cache_bytes": 1024, "block_bytes": 0},
            {"largest_cache_bytes": 1024, "fill_factor": 0.0},
        ],
    )
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(ValueError):
            warmup_boundary(trace_of(10), **kwargs)


class TestMarkAndSkip:
    def test_mark_warmup_sets_marker(self):
        trace = trace_of(100)
        assert mark_warmup(trace, 30).warmup == 30

    def test_mark_warmup_clamps(self):
        trace = trace_of(10)
        assert mark_warmup(trace, 50).warmup == 10
        assert mark_warmup(trace, -5).warmup == 0

    def test_skip_warmup_returns_suffix(self):
        trace = trace_of(10, warmup=4)
        tail = skip_warmup(trace)
        assert len(tail) == 6
        assert tail[0] == (READ, 4 * 16)
        assert tail.warmup == 0

    def test_skip_warmup_noop_without_marker(self):
        trace = trace_of(5)
        assert len(skip_warmup(trace)) == 5
