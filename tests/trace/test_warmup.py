"""Tests for cold-start handling."""

import pytest

from repro.trace.record import READ, Trace, concat_traces
from repro.trace.warmup import mark_warmup, skip_warmup, warmup_boundary


def trace_of(n, warmup=0):
    return Trace.from_records([(READ, i * 16) for i in range(n)], warmup=warmup)


class TestWarmupBoundary:
    def test_scales_with_cache_size(self):
        trace = trace_of(1_000_000)
        small = warmup_boundary(trace, 4 * 1024)
        large = warmup_boundary(trace, 64 * 1024)
        assert large == 16 * small

    def test_capped_at_half_the_trace(self):
        trace = trace_of(100)
        assert warmup_boundary(trace, 1 << 30) == 50

    def test_fill_factor(self):
        trace = trace_of(1_000_000)
        base = warmup_boundary(trace, 16 * 1024, fill_factor=1.0)
        assert warmup_boundary(trace, 16 * 1024, fill_factor=4.0) == 4 * base

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"largest_cache_bytes": 0},
            {"largest_cache_bytes": 1024, "block_bytes": 0},
            {"largest_cache_bytes": 1024, "fill_factor": 0.0},
        ],
    )
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(ValueError):
            warmup_boundary(trace_of(10), **kwargs)


class TestMarkAndSkip:
    def test_mark_warmup_sets_marker(self):
        trace = trace_of(100)
        assert mark_warmup(trace, 30).warmup == 30

    def test_mark_warmup_clamps(self):
        trace = trace_of(10)
        assert mark_warmup(trace, 50).warmup == 10
        assert mark_warmup(trace, -5).warmup == 0

    def test_skip_warmup_returns_suffix(self):
        trace = trace_of(10, warmup=4)
        tail = skip_warmup(trace)
        assert len(tail) == 6
        assert tail[0] == (READ, 4 * 16)
        assert tail.warmup == 0

    def test_skip_warmup_noop_without_marker(self):
        trace = trace_of(5)
        assert len(skip_warmup(trace)) == 5


class TestMarkWarmupMetadata:
    """Regression: ``mark_warmup`` mutates the boundary in place but used
    to leave content-derived metadata behind -- a re-marked trace kept its
    old cached fingerprint and aliased the memo entries of the previous
    warmup boundary."""

    def test_mark_warmup_strips_cached_fingerprint(self):
        from repro.sim import memo

        trace = trace_of(100)
        before = memo.trace_fingerprint(trace)
        mark_warmup(trace, 30)
        assert memo._FINGERPRINT_SLOT not in trace.metadata
        assert memo.trace_fingerprint(trace) != before

    def test_noop_mark_keeps_fingerprint(self):
        from repro.sim import memo

        trace = trace_of(100, warmup=30)
        fingerprint = memo.trace_fingerprint(trace)
        mark_warmup(trace, 30)
        assert trace.metadata.get(memo._FINGERPRINT_SLOT) == fingerprint

    def test_mark_warmup_keeps_plain_metadata(self):
        trace = trace_of(10)
        trace.metadata.update({"origin": "synthetic", "_stale": 1})
        mark_warmup(trace, 5)
        assert trace.metadata == {"origin": "synthetic"}

    def test_mark_warmup_mutates_in_place(self):
        trace = trace_of(10)
        held = trace.metadata
        assert mark_warmup(trace, 5) is trace
        # Callers holding the dict must see the stripped version, not a
        # rebound copy.
        assert held is trace.metadata


class TestSkipConcatInteractions:
    """``skip_warmup`` and ``concat_traces`` compose: both are used to
    build long already-warm runs, and both must agree on warmup and
    derived-metadata handling."""

    def test_skip_then_concat_has_no_warmup(self):
        joined = concat_traces([skip_warmup(trace_of(10, warmup=4)), trace_of(6)])
        assert len(joined) == 12
        assert joined.warmup == 0

    def test_concat_keeps_first_warmup_then_skip_drops_it(self):
        joined = concat_traces([trace_of(10, warmup=4), trace_of(6, warmup=3)])
        assert joined.warmup == 4  # later traces' markers are ignored
        tail = skip_warmup(joined)
        assert len(tail) == 12
        assert tail.warmup == 0
        assert tail[0] == (READ, 4 * 16)

    def test_skip_warmup_strips_derived_metadata(self):
        from repro.sim import memo

        trace = trace_of(10, warmup=4)
        memo.trace_fingerprint(trace)
        tail = skip_warmup(trace)
        assert memo._FINGERPRINT_SLOT not in tail.metadata

    def test_concat_of_marked_trace_strips_fingerprint(self):
        from repro.sim import memo

        a = trace_of(10)
        mark_warmup(a, 4)
        memo.trace_fingerprint(a)
        joined = concat_traces([a, trace_of(5)])
        assert memo._FINGERPRINT_SLOT not in joined.metadata

    def test_mark_skip_mark_roundtrip(self):
        trace = trace_of(20)
        mark_warmup(trace, 8)
        tail = skip_warmup(trace)
        mark_warmup(tail, 5)
        assert len(tail) == 12
        assert tail.warmup == 5
