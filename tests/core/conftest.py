"""Shared fixtures for the core-analysis tests.

Traces are session-scoped: the core layer's tests all consume the same
synthetic multiprogramming workloads, and regenerating them per test would
dominate the suite's runtime.
"""

import pytest

from repro.sim.config import LevelConfig, SystemConfig
from repro.trace.multiprogram import MultiprogramScheduler, ProcessSpec
from repro.trace.workload import SyntheticWorkload
from repro.units import KB


@pytest.fixture(scope="session")
def small_traces():
    """Two small multiprogramming traces with distinct seeds."""
    traces = []
    for t in range(2):
        processes = [
            ProcessSpec(
                name=f"p{i}",
                workload=SyntheticWorkload(
                    seed=1000 * t + 37 * i, address_base=i << 44
                ),
            )
            for i in range(1, 4)
        ]
        scheduler = MultiprogramScheduler(processes, switch_interval=4000, seed=t)
        traces.append(scheduler.trace(40_000, name=f"mix{t}", warmup=8_000))
    return traces


@pytest.fixture(scope="session")
def base_config():
    """A scaled-down base machine (small L2 keeps tests responsive)."""
    return SystemConfig(
        levels=(
            LevelConfig(size_bytes=4 * KB, block_bytes=16, split=True,
                        cycle_cpu_cycles=1, write_hit_cycles=2),
            LevelConfig(size_bytes=64 * KB, block_bytes=32,
                        cycle_cpu_cycles=3, write_hit_cycles=2),
        )
    )
