"""Tests for the local/global/solo miss-ratio triad (section 3)."""

import pytest

from repro.core.metrics import MissRatioTriad, measure_triad, sweep_triads
from repro.units import KB


class TestTriadDataclass:
    def test_filtering_complements_traffic(self):
        triad = MissRatioTriad(level=2, local=0.3, global_=0.03, solo=0.028, traffic=0.1)
        assert triad.filtering == pytest.approx(0.9)

    def test_global_solo_gap(self):
        triad = MissRatioTriad(level=2, local=0.3, global_=0.033, solo=0.03, traffic=0.1)
        assert triad.global_solo_gap == pytest.approx(0.1)

    def test_gap_with_zero_solo(self):
        triad = MissRatioTriad(level=2, local=0.0, global_=0.0, solo=0.0, traffic=0.1)
        assert triad.global_solo_gap == 0.0


class TestMeasureTriad:
    def test_local_exceeds_global_under_filtering(self, small_traces, base_config):
        triad = measure_triad(small_traces, base_config, level=2)
        assert triad.local > triad.global_
        assert 0.0 < triad.traffic < 1.0

    def test_traffic_equals_l1_global_miss(self, small_traces, base_config):
        """The L2 input stream is the L1 read-miss stream, so the traffic
        ratio at level 2 equals the L1 global read miss ratio."""
        l2 = measure_triad(small_traces, base_config, level=2)
        l1 = measure_triad(small_traces, base_config, level=1)
        assert l2.traffic == pytest.approx(l1.global_, rel=1e-9)

    def test_level_one_solo_equals_global(self, small_traces, base_config):
        triad = measure_triad(small_traces, base_config, level=1)
        assert triad.solo == pytest.approx(triad.global_)

    def test_layer_independence_for_large_l2(self, small_traces, base_config):
        """Section 3: with L2 >> L1, the global miss ratio approaches the
        solo miss ratio (the paper's independence result)."""
        big = base_config.with_level(1, size_bytes=128 * KB)
        triad = measure_triad(small_traces, big, level=2)
        assert triad.global_solo_gap < 0.25

    def test_small_l2_perturbed_by_l1(self, small_traces, base_config):
        """When L2 is close to L1 in size, the upstream cache disturbs the
        global/solo agreement far more than for a large L2."""
        small = base_config.with_level(1, size_bytes=8 * KB)
        large = base_config.with_level(1, size_bytes=256 * KB)
        gap_small = measure_triad(small_traces, small, level=2).global_solo_gap
        gap_large = measure_triad(small_traces, large, level=2).global_solo_gap
        assert gap_large < gap_small

    def test_validation(self, small_traces, base_config):
        with pytest.raises(ValueError):
            measure_triad([], base_config, level=2)
        with pytest.raises(ValueError):
            measure_triad(small_traces, base_config, level=3)


class TestSweepTriads:
    def test_one_triad_per_size(self, small_traces, base_config):
        sizes = [16 * KB, 64 * KB]
        triads = sweep_triads(small_traces, base_config, sizes)
        assert len(triads) == 2

    def test_ratios_fall_with_size(self, small_traces, base_config):
        sizes = [8 * KB, 32 * KB, 128 * KB]
        triads = sweep_triads(small_traces, base_config, sizes)
        globals_ = [t.global_ for t in triads]
        solos = [t.solo for t in triads]
        assert globals_[0] > globals_[-1]
        assert solos[0] > solos[-1]

    def test_traffic_independent_of_l2_size(self, small_traces, base_config):
        """L1 filtering does not depend on what sits below it."""
        triads = sweep_triads(small_traces, base_config, [8 * KB, 128 * KB])
        assert triads[0].traffic == pytest.approx(triads[1].traffic, rel=1e-9)
