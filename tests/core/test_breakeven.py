"""Tests for the associativity break-even maps (section 5)."""

import numpy as np
import pytest

from repro.analytical.associativity import incremental_breakeven_ns
from repro.audit import manifest
from repro.core.breakeven import breakeven_map
from repro.core.metrics import measure_triad
from repro.sim import memo
from repro.sim.functional import FunctionalSimulator
from repro.units import KB


SIZES = [8 * KB, 32 * KB]
CYCLES = [3.0]


class TestBreakevenMap:
    def test_shape_and_indexing(self, small_traces, base_config):
        result = breakeven_map(
            small_traces, base_config, SIZES, CYCLES, set_size=2
        )
        assert result.nanoseconds.shape == (2, 1)
        assert result.at(8 * KB, 3.0) == result.nanoseconds[0, 0]

    def test_associativity_buys_time_when_it_removes_misses(
        self, small_traces, base_config
    ):
        """Where 2-way removes conflict misses the budget is positive."""
        result = breakeven_map(
            small_traces, base_config, SIZES, CYCLES, set_size=2
        )
        assert result.nanoseconds.max() > 0

    def test_deeper_associativity_buys_cumulatively_more(
        self, small_traces, base_config
    ):
        two = breakeven_map(small_traces, base_config, SIZES, CYCLES, set_size=2)
        eight = breakeven_map(small_traces, base_config, SIZES, CYCLES, set_size=8)
        # Cumulative budgets: 8-way >= 2-way wherever both help.
        assert np.all(eight.nanoseconds >= two.nanoseconds - 1e-9)

    def test_smaller_l1_means_smaller_budget(self, small_traces, base_config):
        """Equation 3's 1/M_L1: a larger (better) L1 multiplies the L2
        break-even budget."""
        small_l1 = base_config.with_level(0, size_bytes=2 * KB)
        large_l1 = base_config.with_level(0, size_bytes=16 * KB)
        budget_small = breakeven_map(
            small_traces, small_l1, SIZES, CYCLES, set_size=8
        ).nanoseconds.mean()
        budget_large = breakeven_map(
            small_traces, large_l1, SIZES, CYCLES, set_size=8
        ).nanoseconds.mean()
        assert budget_large > budget_small

    def test_consistency_with_equation_three(self, small_traces, base_config):
        """The map's budget should approximate Delta-M_global * t_MM / M_L1
        (Equation 3 ignores second-order terms the map includes)."""
        size = 8 * KB
        config_dm = base_config.with_level(1, size_bytes=size, associativity=1)
        config_8w = base_config.with_level(1, size_bytes=size, associativity=8)
        l1_miss = measure_triad(small_traces, config_dm, level=1).global_

        def global_l2(config):
            runs = [FunctionalSimulator(config).run(t) for t in small_traces]
            misses = sum(r.level_stats[1].read_misses for r in runs)
            reads = sum(r.cpu_reads for r in runs)
            return misses / reads

        delta = global_l2(config_dm) - global_l2(config_8w)
        expected = incremental_breakeven_ns(delta, 270.0, l1_miss)
        measured = breakeven_map(
            small_traces, base_config, [size], CYCLES, set_size=8
        ).at(size, 3.0)
        # Equation 3 charges the L2 cycle only to L1 read misses; the full
        # accounting also pays it on store-induced L2 traffic, so the map's
        # budget sits below Equation 3's simplified value but tracks it.
        assert 0.2 * expected <= measured <= 1.2 * expected

    def test_region_mask(self, small_traces, base_config):
        result = breakeven_map(small_traces, base_config, SIZES, CYCLES, set_size=8)
        mask = result.region_at_least(0.0)
        assert mask.shape == result.nanoseconds.shape

    def test_validation(self, small_traces, base_config):
        with pytest.raises(ValueError):
            breakeven_map(small_traces, base_config, SIZES, CYCLES, set_size=1)

    def test_batched_warm_sweep_shares_stack_passes(
        self, small_traces, base_config, monkeypatch
    ):
        """The warm-up sweep presents both associativities at once, so
        the diagonal pair (32 KB 4-way, 8 KB direct-mapped) shares one
        stack-distance pass and the per-associativity grids that follow
        are pure memo hits.
        """
        monkeypatch.setenv("REPRO_STACKDIST", "1")
        memo.clear_memo_cache()
        with manifest.recording("breakeven-warm") as run:
            breakeven_map(small_traces, base_config, SIZES, CYCLES, set_size=4)
        warm = run.sweeps[0]
        assert warm.simulated == 0
        # Four requested cells per trace over three set counts: the
        # diagonal pair rides one pass, the leftovers ride solo passes.
        assert warm.stackdist_groups == 3 * len(small_traces)
        assert warm.cells_derived == 4 * len(small_traces)
        # The per-associativity grids after the warm-up re-simulate
        # nothing.
        assert all(note.simulated == 0 for note in run.sweeps[1:])
        assert all(note.stackdist_groups == 0 for note in run.sweeps[1:])
